#!/usr/bin/env python
"""Documentation checker: snippets must run, intra-repo links must resolve.

Two checks over the repo's markdown documentation:

1. every fenced ``python`` code block is executed in a subprocess (with
   ``PYTHONPATH=src``) and must exit cleanly -- docs that drift from the
   API fail CI instead of lying to readers;
2. every relative markdown link ``[text](target)`` must point at an
   existing file or directory (anchors and external URLs are skipped).

Usage::

    python scripts/check_docs.py                 # README.md + docs/*.md
    python scripts/check_docs.py README.md docs/ARCHITECTURE.md

Exit status is the number of failed checks (0 = everything holds).
"""

from __future__ import annotations

import glob
import os
import re
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: ```python ... ``` fenced blocks (the tag must be exactly "python";
#: bash/text/untagged blocks are documentation, not test cases).
FENCE_RE = re.compile(r"^```python\s*$(.*?)^```\s*$", re.M | re.S)
#: [text](target) markdown links, excluding images' inner brackets.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_EXTERNAL = ("http://", "https://", "mailto:")


def python_snippets(text):
    """All ``python``-tagged fenced code blocks in one markdown text."""
    return [match.group(1) for match in FENCE_RE.finditer(text)]


def relative_links(text):
    """All link targets that should resolve inside the repository."""
    targets = []
    for target in LINK_RE.findall(text):
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        targets.append(target.split("#", 1)[0])
    return [t for t in targets if t]


def check_snippets(path, text) -> list:
    failures = []
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    for index, code in enumerate(python_snippets(text), start=1):
        label = f"{path} snippet #{index}"
        try:
            proc = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, env=env, cwd=REPO_ROOT,
                timeout=300,
            )
        except subprocess.TimeoutExpired:
            failures.append(f"{label}: timed out after 300s")
            continue
        if proc.returncode != 0:
            failures.append(
                f"{label}: exited {proc.returncode}\n"
                f"{proc.stderr.strip() or proc.stdout.strip()}"
            )
        else:
            print(f"ok: {label}")
    return failures


def check_links(path, text) -> list:
    failures = []
    base = os.path.dirname(os.path.abspath(path))
    for target in relative_links(text):
        resolved = os.path.normpath(os.path.join(base, target))
        if not os.path.exists(resolved):
            failures.append(f"{path}: broken link -> {target}")
        else:
            print(f"ok: {path} link {target}")
    return failures


def main(argv=None) -> int:
    files = list(sys.argv[1:] if argv is None else argv)
    if not files:
        files = [os.path.join(REPO_ROOT, "README.md")]
        files += sorted(glob.glob(os.path.join(REPO_ROOT, "docs", "*.md")))
    failures = []
    for path in files:
        with open(path) as handle:
            text = handle.read()
        failures += check_links(path, text)
        failures += check_snippets(path, text)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    total = len(failures)
    print(f"{len(files)} file(s) checked, {total} failure(s)")
    return min(total, 99)


if __name__ == "__main__":
    raise SystemExit(main())
