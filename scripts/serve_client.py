#!/usr/bin/env python
"""Concurrent client for ``repro serve --listen`` (CI smoke + manual load).

Opens N threads, each with its own TCP connection, fires M request lines
per thread with correlation ids, and verifies that *every* request got a
response -- the front-end's contract is zero dropped responses, with
overload expressed as structured rejections.  Finishes with a ``metrics``
request and prints its counters.

Exit status: 0 when every request was answered (rejections included,
unless ``--require-ok``), 1 otherwise.

    python scripts/serve_client.py --port 7654 --threads 16 --requests 3 \\
        --line "adult epsilon=0.05 fixed_iterations=60"
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
import threading
import time


def run_thread(host, port, line, count, worker, responses, errors):
    try:
        sock = socket.create_connection((host, port), timeout=30)
        handle = sock.makefile("rw", encoding="utf-8", newline="\n")
        try:
            for i in range(count):
                # %W/%I expand to the thread and request index, so one
                # --line template can submit a distinct job per request
                # (e.g. job_id=smoke-%W-%I with verb=enqueue).
                rendered = line.replace("%W", str(worker)).replace(
                    "%I", str(i))
                handle.write(f"{rendered} id={worker}-{i}\n")
                handle.flush()
                raw = handle.readline()
                if not raw:
                    raise OSError("connection closed before response")
                responses.append(json.loads(raw))
        finally:
            sock.close()
    except Exception as exc:  # noqa: BLE001 - reported via exit status
        errors.append(f"thread {worker}: {type(exc).__name__}: {exc}")


def fetch_metrics(host, port):
    sock = socket.create_connection((host, port), timeout=30)
    handle = sock.makefile("rw", encoding="utf-8", newline="\n")
    try:
        handle.write("metrics\n")
        handle.flush()
        return json.loads(handle.readline())
    finally:
        sock.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--threads", type=int, default=16)
    parser.add_argument("--requests", type=int, default=3,
                        help="requests per thread (default 3)")
    parser.add_argument("--line",
                        default="adult epsilon=0.05 fixed_iterations=60",
                        help="request line to send (id= is appended; "
                             "%%W/%%I expand to thread/request index)")
    parser.add_argument("--require-ok", action="store_true",
                        help="fail on any non-ok response (by default "
                             "structured rejections count as answered)")
    args = parser.parse_args(argv)

    responses, errors = [], []
    start = time.perf_counter()
    threads = [
        threading.Thread(
            target=run_thread,
            args=(args.host, args.port, args.line, args.requests,
                  worker, responses, errors),
        )
        for worker in range(args.threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    elapsed = time.perf_counter() - start

    expected = args.threads * args.requests
    ok = sum(1 for r in responses if r.get("ok"))
    rejected = {}
    for response in responses:
        if not response.get("ok"):
            kind = response.get("error", "unknown")
            rejected[kind] = rejected.get(kind, 0) + 1
    rate = len(responses) / elapsed if elapsed > 0 else float("inf")
    print(f"{len(responses)}/{expected} responses in {elapsed:.2f}s "
          f"({rate:.1f} req/s): {ok} ok"
          + (f", rejected {rejected}" if rejected else ""))
    for error in errors:
        print(f"error: {error}", file=sys.stderr)

    try:
        metrics = fetch_metrics(args.host, args.port)
        counters = metrics.get("metrics", {}).get("counters", {})
        print("metrics:", json.dumps(counters, sort_keys=True))
        if not metrics.get("ok") or "frontend.requests" not in counters:
            print("error: metrics reply is not sane", file=sys.stderr)
            return 1
    except OSError as exc:
        print(f"error: metrics request failed: {exc}", file=sys.stderr)
        return 1

    if errors or len(responses) != expected:
        return 1
    if args.require_ok and ok != expected:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
