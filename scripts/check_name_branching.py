#!/usr/bin/env python
"""Fail when library code branches on GD algorithm *names*.

The AlgorithmSpec plugin layer (``repro/gd/spec.py``) made the
algorithm seam declarative: drivers, operator factories, cost terms,
state namespaces and plan variants all hang off the registered spec.
Code like ``if plan.algorithm == "svrg":`` re-opens that seam -- a new
plugin would silently miss the branch -- so this lint greps the library
for literal name comparisons and membership tests and fails on any hit.

Allowed:

* ``repro/gd/`` registration modules (a spec naturally names itself);
* comparisons between two runtime values (``a.algorithm ==
  b.algorithm``) -- no literal, no match;
* tests, experiments and scripts (asserting on a *chosen* name is
  reporting, not dispatch).

    python scripts/check_name_branching.py
"""

from __future__ import annotations

import os
import re
import sys

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
)
LIBRARY_ROOT = os.path.join(REPO_ROOT, "src", "repro")

#: Directories whose modules may name algorithms literally: the specs
#: themselves live here, and naming yourself is not branching.
ALLOWED_PREFIXES = (
    os.path.join("src", "repro", "gd") + os.sep,
    os.path.join("src", "repro", "experiments") + os.sep,
)

#: ``<something>algorithm == "name"`` / ``!=`` (either operand order)
#: and ``algorithm in ("name", ...)`` membership tests.
PATTERNS = (
    re.compile(r"algorithm\s*[=!]=\s*[\"']"),
    re.compile(r"[\"']\s*[=!]=\s*\w*\.?algorithm\b"),
    re.compile(r"algorithm\s+(not\s+)?in\s+[\[(]\s*[\"']"),
)


def scan(root=LIBRARY_ROOT) -> list:
    """Return (relpath, lineno, line) offenders under ``root``."""
    offenders = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            rel = os.path.relpath(path, REPO_ROOT)
            if rel.startswith(ALLOWED_PREFIXES):
                continue
            with open(path, encoding="utf-8") as handle:
                for lineno, line in enumerate(handle, start=1):
                    code = line.split("#", 1)[0]
                    if any(p.search(code) for p in PATTERNS):
                        offenders.append((rel, lineno, line.rstrip()))
    return offenders


def main() -> int:
    offenders = scan()
    if offenders:
        print("GD algorithm name-branching found (route through the "
              "AlgorithmSpec registry instead):", file=sys.stderr)
        for rel, lineno, line in offenders:
            print(f"  {rel}:{lineno}: {line.strip()}", file=sys.stderr)
        return 1
    print("no algorithm name-branching outside the registry seam")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
