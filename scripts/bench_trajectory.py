#!/usr/bin/env python
"""Append service-layer performance points to ``BENCH_service.json``.

The performance trajectory ROADMAP asks for: every run appends one
machine-readable record per scenario -- git hash, UTC timestamp,
scenario name, ops/s plus scenario-specific extras -- so regressions in
the serving path show up as a time series across commits rather than as
a one-off table.

Scenarios (mirroring ``benchmarks/bench_ext_service_throughput.py`` and
``benchmarks/bench_ext_adaptive.py``):

* ``service_cold_optimize``   -- speculation + costing on a fresh
  fingerprint;
* ``service_warm_optimize``   -- plan-cache hits;
* ``service_warm_restart``    -- a fresh service warm-loading a
  disk-backed plan store;
* ``frontend_socket``         -- concurrent clients through the
  admission-controlled socket front-end;
* ``extended_space_cold`` / ``extended_space_warm`` -- optimize() over
  the *full* registered plan space (every executor-capable algorithm,
  plugins included), cold and through the plan cache;
* ``learned_vs_analytic``     -- plan-choice regret of the mixed
  (analytic x learned-residual) ranking vs analytic+EWMA alone under a
  perturbed cost model, plus the warm optimize() rate with the learned
  digest in the cache stamp;
* ``adaptive_train``          -- adaptive runtime vs one-shot under a
  perturbed cost model (``--skip-adaptive`` to omit; it is the slow
  one).

    python scripts/bench_trajectory.py --output BENCH_service.json
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import subprocess
import sys
import tempfile
import threading
import time
from datetime import datetime, timezone

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
)


def git_hash() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def scenario_service_throughput() -> list:
    """Cold / warm / warm-restart optimize() rates (plan-cache story)."""
    from repro.api import ML4all
    from repro.cluster import ClusterSpec
    from repro.core.iterations import SpeculationSettings
    from repro.core.plans import TrainingSpec
    from repro.service import OptimizerService

    spec = ClusterSpec(jitter_sigma=0.0)
    speculation = SpeculationSettings(
        sample_size=500, time_budget_s=1.0, max_speculation_iters=1000
    )
    system = ML4all(cluster_spec=spec, seed=7)
    dataset = system.load_dataset("adult")
    training = TrainingSpec(task="logreg", tolerance=0.01, seed=7)

    with tempfile.TemporaryDirectory() as tmp:
        store = os.path.join(tmp, "plans.json")
        service = OptimizerService(
            spec=spec, seed=7, speculation=speculation, cache_path=store
        )
        t0 = time.perf_counter()
        cold = service.optimize(dataset, training)
        cold_s = time.perf_counter() - t0
        assert not cold.cache_hit

        warm_runs = 50
        t0 = time.perf_counter()
        for _ in range(warm_runs):
            assert service.optimize(dataset, training).cache_hit
        warm_s = (time.perf_counter() - t0) / warm_runs
        service.close()

        restarted = OptimizerService(
            spec=spec, seed=7, speculation=speculation, cache_path=store
        )
        t0 = time.perf_counter()
        for _ in range(warm_runs):
            assert restarted.optimize(dataset, training).cache_hit
        restart_s = (time.perf_counter() - t0) / warm_runs
        warm_loaded = restarted.warm_loaded
        restarted.close()

    return [
        {"scenario": "service_cold_optimize", "ops_per_s": 1.0 / cold_s,
         "cold_ms": cold_s * 1e3},
        {"scenario": "service_warm_optimize", "ops_per_s": 1.0 / warm_s,
         "warm_ms": warm_s * 1e3, "speedup_vs_cold": cold_s / warm_s},
        {"scenario": "service_warm_restart", "ops_per_s": 1.0 / restart_s,
         "warm_loaded": warm_loaded,
         "speedup_vs_cold": cold_s / restart_s},
    ]


def scenario_frontend_socket(threads=8, per_thread=5) -> list:
    """Concurrent clients through the admission-controlled front-end."""
    from repro.api import ML4all
    from repro.service.frontend import Dispatcher, SocketFrontend

    dispatcher = Dispatcher(ML4all(seed=7))
    line = "adult epsilon=0.05 fixed_iterations=60"
    responses = []

    def client(worker, port):
        sock = socket.create_connection(("127.0.0.1", port), timeout=30)
        handle = sock.makefile("rw", encoding="utf-8", newline="\n")
        try:
            for i in range(per_thread):
                handle.write(f"{line} id={worker}-{i}\n")
                handle.flush()
                responses.append(json.loads(handle.readline()))
        finally:
            sock.close()

    with SocketFrontend(dispatcher, port=0, max_workers=8,
                        shed_after=threads * per_thread + 8) as frontend:
        # one cold request up front so the timed section is steady-state
        client("warmup", frontend.port)
        responses.clear()
        start = time.perf_counter()
        workers = [
            threading.Thread(target=client, args=(n, frontend.port))
            for n in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
        elapsed = time.perf_counter() - start

    total = threads * per_thread
    answered = len(responses)
    served = sum(1 for r in responses if r.get("ok"))
    assert answered == total, f"dropped {total - answered} responses"
    return [{
        "scenario": "frontend_socket",
        "ops_per_s": total / elapsed,
        "threads": threads,
        "requests": total,
        "ok": served,
    }]


def scenario_extended_space() -> list:
    """Cold + warm optimize() over the *full* registered plan space.

    The service scenarios above run the paper's core bgd/mgd/sgd space
    (11 plans); this one asks the optimizer to enumerate every
    registered executor-capable algorithm -- the adaptive-direction
    variants, SVRG, and the plugin algorithms (grad_avg, arc) -- so the
    trajectory tracks how speculation + vectorized costing scale with
    the plan-space size the paper's Section 6 parameterization allows.
    """
    from repro.api import ML4all
    from repro.cluster import ClusterSpec
    from repro.core.iterations import SpeculationSettings
    from repro.core.plan_space import enumerate_plans
    from repro.core.plans import TrainingSpec
    from repro.gd import registry as gd_registry
    from repro.service import OptimizerService

    spec = ClusterSpec(jitter_sigma=0.0)
    algorithms = tuple(sorted(
        name for name, algo_spec in gd_registry.ALGORITHMS.items()
        if algo_spec.supports_executor
    ))
    n_plans = len(enumerate_plans(algorithms))
    speculation = SpeculationSettings(
        sample_size=500, time_budget_s=0.5, max_speculation_iters=1000
    )
    system = ML4all(cluster_spec=spec, seed=7)
    dataset = system.load_dataset("adult")
    training = TrainingSpec(task="logreg", tolerance=0.01, seed=7)

    service = OptimizerService(spec=spec, seed=7, speculation=speculation)
    t0 = time.perf_counter()
    cold = service.optimize(dataset, training, algorithms=algorithms)
    cold_s = time.perf_counter() - t0
    assert not cold.cache_hit

    warm_runs = 50
    t0 = time.perf_counter()
    for _ in range(warm_runs):
        assert service.optimize(
            dataset, training, algorithms=algorithms
        ).cache_hit
    warm_s = (time.perf_counter() - t0) / warm_runs
    service.close()

    chosen = cold.report.chosen_plan
    return [
        {"scenario": "extended_space_cold", "ops_per_s": 1.0 / cold_s,
         "cold_ms": cold_s * 1e3, "algorithms": len(algorithms),
         "plans": n_plans, "chosen": str(chosen)},
        {"scenario": "extended_space_warm", "ops_per_s": 1.0 / warm_s,
         "warm_ms": warm_s * 1e3, "plans": n_plans,
         "speedup_vs_cold": cold_s / warm_s},
    ]


def scenario_learned_vs_analytic() -> list:
    """Plan-choice regret with the mixed (learned) ranking vs analytic.

    A perturbed cost model mis-prices ``bgd`` on a simulated 2M-row
    workload; the analytic+EWMA ranking falls for the mis-price while a
    residual model fitted from traces recovers the truly cheapest plan.
    Records the regret of both rankings against the unperturbed truth
    plus the warm optimize() rate of a learned-model service, so both
    the quality win and the serving-path overhead are tracked.
    """
    import numpy as np

    from repro.cluster import ClusterSpec, PartitionedDataset, SimulatedCluster
    from repro.cluster.storage import DatasetStats
    from repro.core.iterations import SpeculationSettings
    from repro.core.optimizer import GDOptimizer
    from repro.core.plans import TrainingSpec
    from repro.data import make_classification
    from repro.learned import MixedCostModel, ResidualModel, TraceDataset
    from repro.runtime import CalibrationStore, PerturbedCostModel
    from repro.runtime.trace import PlanSegment
    from repro.service import OptimizerService

    spec = ClusterSpec(jitter_sigma=0.0)
    X, y, _ = make_classification(400, 10, rng=np.random.default_rng(3))
    stats = DatasetStats(name="bench-learned", task="logreg",
                         n=2_000_000, d=10, density=1.0, is_sparse=False)
    dataset = PartitionedDataset(X, y, stats, spec, representation="text")
    training = TrainingSpec(task="logreg", tolerance=1e-2, seed=1)
    engine = SimulatedCluster(spec, seed=0)

    truth = GDOptimizer(engine).optimize(
        dataset, training, fixed_iterations=60
    )
    victim, factor = "bgd", 0.05
    assert truth.chosen_plan.algorithm != victim
    perturbed = PerturbedCostModel(spec, {victim: factor})

    analytic = GDOptimizer(
        engine, cost_model=perturbed, calibration=CalibrationStore()
    ).optimize(dataset, training, fixed_iterations=60)

    # Traces taught the residual model the victim's true price
    # (observed/predicted = 1/factor under the perturbed model).
    traces = TraceDataset()
    for _ in range(8):
        traces.add_segment(
            PlanSegment(
                plan=victim.upper(), algorithm=victim,
                predicted_iterations=20, predicted_per_iteration_s=1.0,
                predicted_total_s=20.0, iterations=20,
                sim_seconds=20.0 / factor, converged=True,
            ),
            stats, spec, epsilon=training.tolerance,
        )
    model = ResidualModel().fit(traces)
    mixed = GDOptimizer(
        engine, cost_model=perturbed, calibration=CalibrationStore(),
        learned=MixedCostModel(model),
    ).optimize(dataset, training, fixed_iterations=60)

    true_total = {str(c.plan): c.total_s for c in truth.candidates}
    best_total = min(true_total.values())
    regret_analytic = true_total[str(analytic.chosen_plan)] - best_total
    regret_mixed = true_total[str(mixed.chosen_plan)] - best_total

    # Warm serving rate with the learned digest in the cache stamp.
    service = OptimizerService(
        spec=spec, seed=7, cost_model=perturbed,
        learned=MixedCostModel(model),
        speculation=SpeculationSettings(
            sample_size=500, time_budget_s=1.0, max_speculation_iters=1000
        ),
    )
    cold = service.optimize(dataset, training, fixed_iterations=60)
    assert not cold.cache_hit
    warm_runs = 50
    t0 = time.perf_counter()
    for _ in range(warm_runs):
        assert service.optimize(
            dataset, training, fixed_iterations=60
        ).cache_hit
    warm_s = (time.perf_counter() - t0) / warm_runs
    service.close()

    return [{
        "scenario": "learned_vs_analytic",
        "ops_per_s": 1.0 / warm_s,
        "warm_ms": warm_s * 1e3,
        "regret_analytic_s": regret_analytic,
        "regret_mixed_s": regret_mixed,
        "analytic_chose": analytic.chosen_plan.algorithm,
        "mixed_chose": mixed.chosen_plan.algorithm,
        "truth_chose": truth.chosen_plan.algorithm,
    }]


def scenario_adaptive_train() -> list:
    """Adaptive runtime vs one-shot mis-pick (perturbed cost model)."""
    from repro.experiments import ExperimentContext
    from repro.experiments.registry import run_experiment

    start = time.perf_counter()
    tables = run_experiment("ext_adaptive", ExperimentContext.from_env())
    elapsed = time.perf_counter() - start
    table = tables[0]
    one_shot = table.row_for(mode="one-shot perturbed")
    adaptive = table.row_for(mode="adaptive perturbed")
    return [{
        "scenario": "adaptive_train",
        "ops_per_s": 1.0 / elapsed,
        "wall_s": elapsed,
        "adaptive_sim_s": adaptive["sim_s"],
        "one_shot_sim_s": one_shot["sim_s"],
        "switches": adaptive["switches"],
    }]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output",
                        default=os.path.join(REPO_ROOT,
                                             "BENCH_service.json"))
    parser.add_argument("--skip-adaptive", action="store_true",
                        help="skip the (slow) adaptive-runtime scenario")
    parser.add_argument("--threads", type=int, default=8,
                        help="client threads for the socket scenario")
    args = parser.parse_args(argv)

    stamp = {
        "git_hash": git_hash(),
        "timestamp": datetime.now(timezone.utc).isoformat(),
    }
    records = []
    records += scenario_service_throughput()
    records += scenario_frontend_socket(threads=args.threads)
    records += scenario_extended_space()
    records += scenario_learned_vs_analytic()
    if not args.skip_adaptive:
        records += scenario_adaptive_train()
    records = [{**stamp, **record} for record in records]
    if not records:
        # A run that appends nothing is a broken run, not a quiet one --
        # CI keys off this exit code.
        print("error: no benchmark records produced", file=sys.stderr)
        return 1

    history = []
    if os.path.exists(args.output):
        try:
            with open(args.output) as handle:
                history = json.load(handle)
            if not isinstance(history, list):
                raise ValueError("trajectory file must hold a JSON array")
        except (OSError, ValueError) as exc:
            print(f"warning: starting a fresh trajectory "
                  f"({args.output}: {exc})", file=sys.stderr)
            history = []
    history.extend(records)
    with open(args.output, "w") as handle:
        json.dump(history, handle, indent=2)
        handle.write("\n")

    for record in records:
        print(f"{record['scenario']}: {record['ops_per_s']:.2f} ops/s")
    print(f"{len(records)} record(s) appended to {args.output} "
          f"({len(history)} total)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
