"""Adaptive training walkthrough: one-shot vs adaptive on a wrong cost model.

The cost-based optimizer picks a plan once and never looks back, so a
mis-modelled cluster is paid for the whole run.  This example injects a
known fault -- the cost model under-estimates MGD's per-iteration cost
4x -- and shows the adaptive runtime (telemetry, online calibration,
mid-flight re-optimization) recovering from it:

1. the one-shot optimizer mis-picks the under-estimated algorithm and
   rides it to the end;
2. the adaptive run notices the observed per-iteration cost diverging
   from the prediction, re-runs plan selection over the remaining error
   budget and switches plans without losing model state;
3. the execution trace calibrates the cost model, so a *second* request
   for the same workload picks a sound plan outright -- re-costed from
   cached speculation, with no re-speculation and no switching.

Run:  python examples/adaptive_training.py
"""

from repro.cluster import ClusterSpec, SimulatedCluster
from repro.core.executor import execute_plan
from repro.core.plans import TrainingSpec
from repro.data import datasets
from repro.runtime import CalibrationStore, PerturbedCostModel
from repro.service import OptimizerService

EPSILON = 0.001
SEED = 7
#: The fault: the cost model believes MGD iterations are 4x cheaper
#: than they are.
PERTURBATION = {"mgd": 0.25}


def main():
    spec = ClusterSpec()
    dataset = datasets.load("adult", spec, seed=SEED)
    training = TrainingSpec(task="logreg", tolerance=EPSILON, seed=SEED)
    store = CalibrationStore()
    service = OptimizerService(
        spec=spec,
        seed=SEED,
        cost_model=PerturbedCostModel(spec, PERTURBATION),
        calibration=store,
    )
    print(dataset.describe())
    print(f"fault injection: cost model x{PERTURBATION['mgd']:g} on mgd\n")

    # --- 1. one-shot: the mis-pick, ridden to the end ------------------
    decision = service.optimize(dataset, training)
    one_shot_engine = SimulatedCluster(spec, seed=SEED)
    one_shot = execute_plan(
        one_shot_engine, dataset, decision.chosen_plan, training
    )
    print("--- one-shot " + "-" * 50)
    print(f"chosen (perturbed estimates): {decision.chosen_plan}")
    print(one_shot.summary())
    print()

    # --- 2. adaptive: monitored execution, mid-flight switch -----------
    adaptive = service.train(dataset, training, adaptive=True)
    print("--- adaptive " + "-" * 50)
    print(adaptive.trace.summary())
    for switch in adaptive.trace.switches:
        print(f"  switch at iteration {switch.iteration}: "
              f"{switch.from_plan} -> {switch.to_plan}")
        print(f"    because {switch.reason}")
    # The switch carried the optimizer state, not just the weights: the
    # post-switch segment records what the transfer policy kept/dropped.
    for segment in adaptive.trace.segments[1:]:
        for note in segment.state_transfer:
            print(f"    state transfer: {note}")
    saved = one_shot.sim_seconds - adaptive.adaptive.sim_seconds
    print(f"saved vs one-shot: {saved:.2f} simulated seconds")
    print()

    # --- 3. what the trace taught the calibration store ----------------
    print("--- calibration " + "-" * 47)
    print(store.summary())
    print()

    # --- 4. the same request again: calibrated, no re-speculation ------
    repeat = service.train(dataset, training, adaptive=True)
    print("--- repeat request " + "-" * 44)
    print(repeat.trace.summary())
    print(f"optimization source: "
          f"{'re-costed from cached speculation' if repeat.optimization.recalibrated else 'cache'}")
    print(service.stats_summary())


if __name__ == "__main__":
    main()
