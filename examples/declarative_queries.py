"""The ML4all declarative language (Appendix A) end to end.

Shows the three command families:

* ``run ... having ...``  -- declarative training with constraints,
* ``run ... using ...``   -- expert control over the optimizer,
* ``persist`` / ``predict`` -- model lifecycle.

Run:  python examples/declarative_queries.py
"""

import os
import tempfile

from repro.api import ML4all


def main():
    system = ML4all(seed=7)

    # --- Q1: fully declarative -----------------------------------------
    print(">>> Q1 = run classification on adult having epsilon 0.01, "
          "max iter 1000;")
    session = system.query(
        "Q1 = run classification on adult "
        "having epsilon 0.01, max iter 1000;"
    )
    q1 = session.results["Q1"]
    print(f"chosen plan: {q1.result.plan}")
    print(f"iterations : {q1.result.iterations}")
    print(f"sim time   : {q1.result.sim_seconds:.2f}s")
    print()

    # --- Q2: constraints incl. a time budget ---------------------------
    print(">>> run svm on svm1 having time 1h30m, epsilon 0.001;")
    session.execute("Q2 = run svm on svm1 having time 1h30m, epsilon 0.001;")
    q2 = session.results["Q2"]
    print(f"chosen plan: {q2.result.plan} "
          f"({q2.result.iterations} iterations, "
          f"{q2.result.sim_seconds:.2f}s simulated)")
    print()

    # --- Q3: expert 'using' controls ------------------------------------
    print(">>> run classification on covtype using algorithm mgd, "
          "sampler bernoulli(), batch 1000, step 1;")
    session.execute(
        "Q3 = run classification on covtype having max iter 300 "
        "using algorithm mgd, sampler bernoulli(), batch 1000, step 1;"
    )
    q3 = session.results["Q3"]
    print(f"pinned plan: {q3.result.plan} "
          f"({q3.result.iterations} iterations)")
    print()

    # --- persist + predict ----------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        model_path = os.path.join(tmp, "my_model.txt")
        print(f">>> persist Q1 on {model_path};")
        session.execute(f"persist Q1 on {model_path};")
        print(">>> result = predict on adult with my_model.txt;")
        out = session.execute(f"result = predict on adult with {model_path};")
        print(f"predictions: {out['predictions'][:8]} ...")
        print(f"MSE vs ground truth: {out['mse']:.3f}")


if __name__ == "__main__":
    main()
