"""Quickstart: train a classifier with the cost-based GD optimizer.

The optimizer speculates on a data sample to estimate how many iterations
each GD algorithm needs (Algorithm 1), costs all 11 execution plans of
Figure 5 with the Section 7 cost model, picks the cheapest, and executes
it on the simulated cluster -- real gradient math, simulated time.

Run:  python examples/quickstart.py
"""

from repro.api import ML4all
from repro.data import train_test_split


def main():
    system = ML4all(seed=7)

    # 'adult' is the Table 2 census dataset (100,827 points, 123 sparse
    # features) -- simulated at paper scale, scaled-down physical rows.
    dataset = system.load_dataset("adult")
    print(dataset.describe())
    print()

    # Ask the optimizer for a model with tolerance 0.01.
    model = system.train(dataset, epsilon=0.01, max_iter=1000)

    report = model.report
    print("--- optimizer decision " + "-" * 40)
    print(report.summary())
    print()

    result = model.result
    print("--- execution " + "-" * 49)
    print(result.summary())
    print("time per phase (simulated seconds):")
    for phase, seconds in sorted(result.phase_seconds.items()):
        print(f"  {phase:<12} {seconds:8.3f}")
    print()

    # Evaluate like the paper's Section 8.5 (80/20 split, label MSE).
    X_train, y_train, X_test, y_test = train_test_split(
        dataset.X, dataset.y, test_fraction=0.2
    )
    print("--- model quality " + "-" * 45)
    print(f"test error rate: {model.error_rate(X_test, y_test):.3f}")
    print(f"test MSE       : {model.mse(X_test, y_test):.3f}")


if __name__ == "__main__":
    main()
