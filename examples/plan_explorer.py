"""Inside the optimizer: cost every plan and explain the choice.

Enumerates the 11-plan search space of Figure 5 for two very different
datasets and prints the cost model's per-plan breakdown -- showing *why*
the winner wins (one-time transform vs per-iteration sampling IO vs
iteration counts), which is the core of the paper's Section 7.

Run:  python examples/plan_explorer.py
"""

from repro.api import ML4all
from repro.core import CostModel, GDOptimizer, TrainingSpec
from repro.core.iterations import SpeculationSettings, SpeculativeEstimator


def explore(system, name, tolerance):
    dataset = system.load_dataset(name)
    training = TrainingSpec(task=dataset.stats.task, tolerance=tolerance,
                            max_iter=1000, seed=7)
    optimizer = GDOptimizer(
        system.engine,
        estimator=SpeculativeEstimator(
            SpeculationSettings(time_budget_s=1.0), seed=7
        ),
    )
    report = optimizer.optimize(dataset, training)

    print(f"=== {name} (tolerance {tolerance:g}) ===")
    print(f"{dataset.describe()}")
    print()
    print("iteration estimates (speculation, Algorithm 1):")
    for algorithm, est in report.iteration_estimates.items():
        tag = " (observed directly)" if est.observed_directly else ""
        print(f"  {algorithm}: T({tolerance:g}) ~ "
              f"{est.estimated_iterations}{tag}; fit {est.curve.describe()}")
    print()
    print(f"{'plan':<22} {'est.iters':>9} {'one-time':>9} "
          f"{'per-iter(ms)':>12} {'total(s)':>9}")
    for cand in report.ranking():
        marker = " <== chosen" if cand.plan == report.chosen_plan else ""
        print(f"{str(cand.plan):<22} {cand.estimated_iterations:>9} "
              f"{cand.one_time_s:>9.2f} {cand.per_iteration_s*1e3:>12.3f} "
              f"{cand.total_s:>9.2f}{marker}")
    print()
    chosen = report.chosen
    print("chosen plan's cost breakdown (seconds):")
    for key, value in sorted(chosen.breakdown.items()):
        print(f"  {key:<22} {value:.5f}")
    print()


def main():
    system = ML4all(seed=7)
    # A small single-partition dataset vs a 10 GB dense one: the winning
    # plan and the reason it wins differ completely.
    explore(system, "adult", 1e-2)
    system.engine.reset()
    explore(system, "svm1", 1e-3)


if __name__ == "__main__":
    main()
