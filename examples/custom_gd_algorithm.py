"""Expressing custom GD algorithms in the seven-operator abstraction.

The paper's Section 4 / Appendix C point: the Transform / Stage / Sample /
Compute / Update / Converge / Loop operators are UDFs, so new algorithms
plug in without touching the system.  This example

1. runs SVRG (Appendix C, Algorithm 2) through the executor via the
   provided ``svrg_operators`` bundle, and
2. defines a *custom* Update operator implementing gradient clipping and
   runs a plan with it -- an algorithm the paper never shipped, expressed
   purely as a UDF override.

Run:  python examples/custom_gd_algorithm.py
"""

import numpy as np

from repro.api import ML4all
from repro.core import GDPlan, TrainingSpec, execute_plan
from repro.core.reference_ops import WeightUpdate, default_operators, svrg_operators
from repro.gd.gradients import task_gradient


class ClippedUpdate(WeightUpdate):
    """w <- w - alpha_i * clip(mean gradient, max_norm)."""

    def __init__(self, max_norm=1.0):
        super().__init__()
        self.max_norm = float(max_norm)

    def update(self, aggregated, context):
        grad_sum, count = aggregated
        norm = float(np.linalg.norm(grad_sum / count))
        if norm > self.max_norm:
            grad_sum = grad_sum * (self.max_norm / norm)
        return super().update((grad_sum, count), context)


def main():
    system = ML4all(seed=7)
    dataset = system.load_dataset("yearpred")
    training = TrainingSpec(task="linreg", tolerance=1e-2, max_iter=800,
                            seed=7)

    # --- 1. SVRG through the abstraction --------------------------------
    print("--- SVRG (Appendix C) via the 7-operator abstraction ---")
    plan = GDPlan("svrg", "eager", "shuffle")
    result = execute_plan(system.engine, dataset, plan, training)
    print(result.summary())
    print()

    # --- 2. custom Update operator --------------------------------------
    print("--- custom ClippedUpdate operator ---")
    gradient = task_gradient("linreg")
    ops = default_operators(
        d=dataset.stats.d,
        gradient=gradient,
        batch_size=1000,
        step_size=training.step_size,
        tolerance=training.tolerance,
        max_iter=training.max_iter,
    )
    ops.update = ClippedUpdate(max_norm=0.5)

    system.engine.reset()
    result = execute_plan(
        system.engine, dataset, GDPlan("mgd", "eager", "shuffle", 1000),
        training, operators=ops,
    )
    print(result.summary())
    loss = gradient.loss(result.weights, dataset.X, dataset.y)
    print(f"final training loss: {loss:.4f}")


if __name__ == "__main__":
    main()
