"""Regenerate the paper's evaluation tables from the command line.

Usage:
    python examples/reproduce_paper.py            # list experiments
    python examples/reproduce_paper.py fig08      # one experiment
    python examples/reproduce_paper.py all        # everything (slow)

Set REPRO_FULL=1 to run every dataset cell instead of the quick subset.
"""

import sys

from repro.experiments import ExperimentContext, run_experiment
from repro.experiments.registry import EXPERIMENTS


def main(argv):
    if len(argv) < 2:
        print("available experiments:")
        for experiment_id, (_, description) in EXPERIMENTS.items():
            print(f"  {experiment_id:<10} {description}")
        print("\nusage: python examples/reproduce_paper.py <id>|all")
        return 0

    ctx = ExperimentContext.from_env()
    targets = list(EXPERIMENTS) if argv[1] == "all" else argv[1:]
    for experiment_id in targets:
        for table in run_experiment(experiment_id, ctx):
            print(table.render())
            print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
