"""Preemptible training walkthrough: slice one job across processes.

A training run used to live and die with its process: kill the server
and every banked iteration is gone.  This example runs the same workload
twice --

1. **uninterrupted**: one train() call straight to convergence;
2. **sliced**: the same request as a durable *job* (``job_id=``) under a
   per-lease preemption budget.  Each lease runs on a brand-new
   :class:`OptimizerService` (a stand-in for a brand-new process --
   nothing is shared but the checkpoint store file), executes at most
   ``LEASE_ITERATIONS`` iterations, checkpoints, and stops.  The next
   lease resumes mid-plan from the store: same weights, same optimizer
   state (step-schedule position, updater buffers, RNG stream), no
   re-speculation.

The punchline is asserted, not claimed: the sliced job's weights and its
full per-iteration delta trajectory are **bit-identical** to the
uninterrupted run's.

Run:  python examples/preemptible_training.py
"""

import os
import tempfile

import numpy as np

from repro.cluster import ClusterSpec
from repro.core.plans import TrainingSpec
from repro.data import datasets
from repro.runtime import JobBudget
from repro.service import OptimizerService

SEED = 7
EPSILON = 0.001
MAX_ITER = 400
LEASE_ITERATIONS = 150
CHECKPOINT_EVERY = 25


def make_service(spec, checkpoint_path):
    """A fresh service: our stand-in for a fresh process."""
    return OptimizerService(
        spec=spec, seed=SEED, algorithms=("mgd",),
        checkpoint_path=checkpoint_path,
    )


def main():
    spec = ClusterSpec()
    dataset = datasets.load("adult", spec, seed=SEED)
    training = TrainingSpec(task="logreg", tolerance=EPSILON,
                            max_iter=MAX_ITER, seed=SEED)
    tmp = tempfile.mkdtemp()
    print(dataset.describe())

    # --- 1. uninterrupted ----------------------------------------------
    baseline = make_service(spec, os.path.join(tmp, "baseline.json")).train(
        dataset, training, job_id="uninterrupted",
    )
    print("--- uninterrupted " + "-" * 45)
    print(baseline.summary())
    print()

    # --- 2. the same job, deliberately sliced across "processes" -------
    print("--- preemptible, "
          f"{LEASE_ITERATIONS} iterations per lease " + "-" * 24)
    store = os.path.join(tmp, "jobs.json")
    budget = JobBudget(max_iterations=LEASE_ITERATIONS)
    leases = 0
    while True:
        service = make_service(spec, store)     # a brand-new process
        outcome = service.train(
            dataset, training, job_id="sliced",
            checkpoint_every=CHECKPOINT_EVERY, budget=budget,
        )
        leases += 1
        job = outcome.job
        source = "resumed from store" if job.resumed else "started cold"
        print(f"lease {leases}: {source}; "
              f"{'preempted' if job.preempted else 'finished'} at "
              f"iteration {job.done_iterations}")
        if not job.preempted:
            break
        assert leases < 50, "job never finished"
    print()

    # --- 3. the equivalence, asserted ----------------------------------
    identical_weights = np.array_equal(baseline.weights, outcome.weights)
    identical_deltas = (
        baseline.trace.all_deltas == outcome.trace.all_deltas
    )
    print(f"leases used: {leases}")
    print(f"weights bit-identical to uninterrupted: {identical_weights}")
    print(f"loss trajectory ({len(outcome.trace.all_deltas)} deltas) "
          f"bit-identical to uninterrupted: {identical_deltas}")
    assert identical_weights and identical_deltas, (
        "resumed trajectory diverged from the uninterrupted run"
    )
    print("resumed == uninterrupted: bit-identical")


if __name__ == "__main__":
    main()
