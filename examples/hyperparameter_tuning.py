"""Cost-based hyperparameter tuning — the paper's proposed extension.

"Our approach can easily be extended to assist in other design choices in
ML systems, such as hyperparameter tuning" (Section 10).  This example
tunes (1) the step-size schedule and (2) the MGD batch size using exactly
the optimizer's machinery: speculate each candidate on a sample
(Algorithm 1), cost the resulting plan (Section 7), pick the cheapest
estimated total time.

Run:  python examples/hyperparameter_tuning.py
"""

from repro.api import ML4all
from repro.core import CostBasedTuner, TrainingSpec
from repro.core.iterations import SpeculationSettings, SpeculativeEstimator


def main():
    system = ML4all(seed=7)
    dataset = system.load_dataset("yearpred")
    training = TrainingSpec(task="linreg", tolerance=1e-2, max_iter=2000,
                            seed=7)
    tuner = CostBasedTuner(
        system.engine,
        estimator=SpeculativeEstimator(
            SpeculationSettings(time_budget_s=1.0), seed=7
        ),
    )

    print("=== step-size schedule (BGD on yearpred) ===")
    report = tuner.tune_step_size(dataset, training, algorithm="bgd")
    print(report.summary())
    print()

    print("=== MGD batch size (statistical vs hardware efficiency) ===")
    report = tuner.tune_batch_size(dataset, training,
                                   candidates=(100, 1000, 10000))
    print(report.summary())
    print()

    # Execute with the tuned settings.
    best_batch = report.best.setting
    model = system.train(
        dataset, task="linreg", algorithm="mgd", sampler="shuffle",
        batch=best_batch, epsilon=1e-2, max_iter=2000,
    )
    print(f"trained with tuned batch={best_batch}: "
          f"{model.result.summary()}")


if __name__ == "__main__":
    main()
