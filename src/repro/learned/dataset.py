"""Training-data harvest for the learned residual cost model.

The optimizer already persists everything a learned model needs: every
executed :class:`~repro.runtime.trace.PlanSegment` carries the predicted
and the observed per-iteration seconds plus the correction factors that
were applied when the plan was priced.  :class:`TraceDataset` turns
those segments into (feature vector, residual target) examples:

* **features** describe the workload and the machine the segment ran on
  -- the :class:`~repro.cluster.storage.DatasetStats` fields the Section
  7 cost model reads, the :class:`~repro.cluster.hardware.ClusterSpec`
  rates that dominate per-iteration cost, the algorithm's declared
  :class:`~repro.gd.spec.CostTerms`, the effective batch size and the
  target tolerance;
* **targets** are the *absolute* observed/predicted ratios in log space
  -- the applied correction factors are composed back in, exactly like
  :meth:`~repro.runtime.calibration.CalibrationStore.record_segment`,
  so a segment priced under an already-calibrated model still reports
  how far the *base* analytic model was off.

Everything here is plain floats + JSON, so a dataset travels with the
model file and online refits can extend it across restarts.
"""

from __future__ import annotations

import dataclasses
import json
import math

from repro.gd import registry as gd_registry
from repro.gd.state import known_fields
from repro.runtime.calibration import (
    MAX_FACTOR,
    cluster_signature,
    workload_signature,
)

#: Order and meaning of the entries of one feature vector.  Append-only:
#: readers key on position, so removing or reordering entries is a
#: format break (bump ``repro.learned.model.MODEL_FORMAT``).
FEATURE_NAMES = (
    "log10_n",
    "log10_d",
    "density",
    "is_sparse",
    "log10_row_bytes",
    "log10_batch_rows",
    "log10_inv_epsilon",
    "cost_per_iteration_multiplier",
    "cost_extra_update_factor",
    "cost_full_pass_fraction",
    "log10_slots",
    "log10_network_ns_per_byte",
    "log10_page_io_disk_us",
    "log10_iteration_overhead_ms",
)

#: Log-residual targets are clamped to the calibration store's factor
#: range so one pathological trace cannot drag the regression outside
#: the range the mixer is allowed to serve anyway.
_LOG_CLAMP = math.log(MAX_FACTOR)


def _log10(value, floor=1e-12) -> float:
    return math.log10(max(float(value), floor))


def feature_vector(stats, spec, algorithm, batch_size=None,
                   epsilon=None) -> list:
    """The shared feature map (used at harvest *and* predict time).

    ``batch_size`` defaults to the algorithm's registered default batch
    (full-batch algorithms read the whole dataset per iteration).
    ``epsilon`` is the target tolerance; None means "not part of this
    workload" and lands on a neutral 1e-3.
    """
    terms = gd_registry.cost_terms(algorithm)
    if batch_size is None:
        batch_size = gd_registry.info(algorithm).default_batch_size
    rows = float(batch_size) if batch_size else float(stats.n)
    rows = min(rows, float(stats.n))
    epsilon = float(epsilon) if epsilon else 1e-3
    return [
        _log10(stats.n),
        _log10(stats.d),
        float(stats.density),
        1.0 if stats.is_sparse else 0.0,
        _log10(stats.bytes_per_row("binary")),
        _log10(rows),
        _log10(1.0 / max(epsilon, 1e-12)),
        float(terms.per_iteration_multiplier),
        float(terms.extra_update_cost_factor),
        float(terms.full_pass_fraction),
        _log10(spec.n_nodes * spec.slots_per_node),
        _log10(spec.network_byte_s * 1e9),
        _log10(spec.page_io_disk_s * 1e6),
        _log10(spec.iteration_overhead_s * 1e3),
    ]


@dataclasses.dataclass
class TraceExample:
    """One (features, residual targets) training example.

    Either target may be None: a segment that never converged observes
    cost but says nothing about the iterations residual -- the same
    asymmetry the calibration store's per-factor counts track.
    """

    algorithm: str
    workload: str
    cluster: str
    features: list
    log_cost_ratio: float | None = None
    log_iterations_ratio: float | None = None

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload) -> "TraceExample":
        return cls(**known_fields(cls, payload))


def example_from_segment(segment, stats, spec, epsilon=None,
                         batch_size=None) -> TraceExample | None:
    """Harvest one example from an executed segment (None if unusable).

    Mirrors ``CalibrationStore.record_segment``'s eligibility rules and
    its factor composition: the targets are absolute observed/base
    ratios, clamped into the servable factor range, in log space.
    """
    if segment.iterations < 2:
        return None
    log_cost = None
    if segment.predicted_per_iteration_s > 0:
        ratio = segment.cost_ratio * segment.applied_cost_factor
        if ratio > 0:
            log_cost = _clamp_log(math.log(ratio))
    log_iters = None
    if segment.converged and segment.predicted_iterations > 0:
        ratio = (
            segment.iterations / segment.predicted_iterations
            * segment.applied_iterations_factor
        )
        if ratio > 0:
            log_iters = _clamp_log(math.log(ratio))
    if log_cost is None and log_iters is None:
        return None
    return TraceExample(
        algorithm=segment.algorithm,
        workload=workload_signature(stats),
        cluster=cluster_signature(spec),
        features=feature_vector(
            stats, spec, segment.algorithm,
            batch_size=batch_size, epsilon=epsilon,
        ),
        log_cost_ratio=log_cost,
        log_iterations_ratio=log_iters,
    )


def _clamp_log(value) -> float:
    return float(min(max(value, -_LOG_CLAMP), _LOG_CLAMP))


class TraceDataset:
    """A growable collection of :class:`TraceExample` rows.

    Feed it persisted :class:`~repro.runtime.trace.ExecutionTrace`
    objects (plus the stats/spec they ran under -- traces only carry
    signatures) and hand it to :meth:`ResidualModel.fit
    <repro.learned.model.ResidualModel.fit>`.
    """

    def __init__(self, examples=None):
        self.examples = list(examples or [])

    def __len__(self) -> int:
        return len(self.examples)

    def add(self, example) -> None:
        self.examples.append(example)

    def add_segment(self, segment, stats, spec, epsilon=None,
                    batch_size=None) -> bool:
        """Harvest one segment; returns True when an example landed."""
        example = example_from_segment(
            segment, stats, spec, epsilon=epsilon, batch_size=batch_size
        )
        if example is None:
            return False
        self.add(example)
        return True

    def add_trace(self, trace, stats, spec, batch_sizes=None) -> int:
        """Harvest every usable segment of one execution trace.

        ``batch_sizes`` maps algorithm -> configured batch override (the
        optimizer's ``batch_sizes`` dict); absent algorithms fall back
        to their registered default batch.  Returns the number of
        examples added.
        """
        batch_sizes = batch_sizes or {}
        return sum(
            self.add_segment(
                segment, stats, spec,
                epsilon=trace.tolerance,
                batch_size=batch_sizes.get(segment.algorithm),
            )
            for segment in trace.segments
        )

    def counts(self) -> dict:
        """{algorithm: number of cost-target examples}."""
        out = {}
        for example in self.examples:
            if example.log_cost_ratio is not None:
                out[example.algorithm] = out.get(example.algorithm, 0) + 1
        return out

    # -- persistence -----------------------------------------------------
    def to_dict(self) -> dict:
        return {"examples": [e.to_dict() for e in self.examples]}

    @classmethod
    def from_dict(cls, payload) -> "TraceDataset":
        return cls(
            TraceExample.from_dict(e)
            for e in payload.get("examples", [])
        )

    def save(self, path) -> str:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)
        return path

    @classmethod
    def load(cls, path) -> "TraceDataset":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))
