"""Dependency-free ridge regressor over trace residuals.

:class:`ResidualModel` learns, per algorithm, how far the analytic cost
model's per-iteration and iteration-count predictions sit from observed
executions -- in log space, over the :mod:`repro.learned.dataset`
feature map -- with closed-form ridge regression (``w = (XᵀX + λI)⁻¹
Xᵀy``, bias unpenalised).  NumPy only, no new dependencies.

The model carries its own training set, so online refits (the adaptive
trainer feeding segments back one at a time) are cheap re-solves and
survive a save/load round trip.  It also accumulates **curve-family
votes**: every time an adaptive refit prefers a different error-sequence
family than the configured one, the trainer votes here, and the serving
layer feeds the majority family back into
``SpeculationSettings.model`` per algorithm.

The JSON layout is format-versioned (``model_format``); newer files
refuse to load on older readers with a clear error, while additive
fields inside a known format degrade gracefully.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import threading

import numpy as np

from repro.errors import LearnedModelError
from repro.learned.dataset import TraceDataset, example_from_segment
from repro.runtime.calibration import MAX_FACTOR

#: On-disk format version.  Bump on any change a strictly-older reader
#: could misinterpret (feature reorder, target semantics, ...).
MODEL_FORMAT = 1

#: Residual targets the model regresses, keyed into ``TraceExample``.
TARGETS = ("cost", "iterations")

_LOG_CLAMP = math.log(MAX_FACTOR)


def _solve_ridge(X, y, ridge_lambda) -> np.ndarray:
    """Closed-form ridge with an unpenalised bias column appended."""
    X = np.column_stack([np.asarray(X, dtype=float),
                         np.ones(len(X))])
    y = np.asarray(y, dtype=float)
    penalty = ridge_lambda * np.eye(X.shape[1])
    penalty[-1, -1] = 0.0  # never shrink the bias
    A = X.T @ X + penalty
    try:
        return np.linalg.solve(A, X.T @ y)
    except np.linalg.LinAlgError:  # pragma: no cover - λ>0 keeps A SPD
        return np.linalg.lstsq(A, X.T @ y, rcond=None)[0]


class ResidualModel:
    """Per-algorithm learned residuals over analytic cost predictions.

    ``predict_cost_ratio`` / ``predict_iterations_ratio`` return the
    multiplicative observed/predicted correction the model expects for a
    feature vector (clamped into the calibration store's factor range),
    or None when the algorithm has no fitted weights yet -- the gating
    signal :class:`~repro.learned.mixed.MixedCostModel` builds on.
    """

    def __init__(self, ridge_lambda=1.0):
        if ridge_lambda <= 0:
            raise ValueError("ridge_lambda must be positive")
        self.ridge_lambda = float(ridge_lambda)
        self.path = None
        self.dataset = TraceDataset()
        #: (algorithm, target) -> weight vector (features + bias).
        self._weights = {}
        #: algorithm -> {family: votes} from adaptive curve refits.
        self._curve_votes = {}
        self._digest = None
        self._lock = threading.RLock()

    # -- training --------------------------------------------------------
    def fit(self, dataset) -> "ResidualModel":
        """(Re)fit from a :class:`TraceDataset`; replaces prior data."""
        with self._lock:
            self.dataset = TraceDataset(list(dataset.examples))
            self._weights = {}
            for algorithm in {e.algorithm for e in self.dataset.examples}:
                self._refit(algorithm)
            self._digest = None
        return self

    def observe(self, example) -> None:
        """Fold one new example in (online refit of its algorithm)."""
        with self._lock:
            self.dataset.add(example)
            self._refit(example.algorithm)
            self._digest = None

    def observe_segment(self, segment, stats, spec, epsilon=None,
                        batch_size=None) -> bool:
        """Harvest + learn from one executed segment (True if usable)."""
        example = example_from_segment(
            segment, stats, spec, epsilon=epsilon, batch_size=batch_size
        )
        if example is None:
            return False
        self.observe(example)
        return True

    def observe_trace(self, trace, stats, spec, batch_sizes=None) -> int:
        """Harvest + learn from every usable segment of one trace."""
        batch_sizes = batch_sizes or {}
        return sum(
            self.observe_segment(
                segment, stats, spec, epsilon=trace.tolerance,
                batch_size=batch_sizes.get(segment.algorithm),
            )
            for segment in trace.segments
        )

    def _refit(self, algorithm) -> None:
        """Re-solve both targets for one algorithm (lock held)."""
        rows = [e for e in self.dataset.examples
                if e.algorithm == algorithm]
        for target in TARGETS:
            attr = f"log_{target}_ratio"
            fitted = [(e.features, getattr(e, attr)) for e in rows
                      if getattr(e, attr) is not None]
            key = (algorithm, target)
            if not fitted:
                self._weights.pop(key, None)
                continue
            X = [f for f, _ in fitted]
            y = [t for _, t in fitted]
            self._weights[key] = _solve_ridge(X, y, self.ridge_lambda)

    # -- prediction ------------------------------------------------------
    def training_count(self, algorithm, target="cost") -> int:
        """Number of examples backing one (algorithm, target) pair."""
        attr = f"log_{target}_ratio"
        with self._lock:
            return sum(
                1 for e in self.dataset.examples
                if e.algorithm == algorithm
                and getattr(e, attr) is not None
            )

    def _predict(self, algorithm, target, features):
        with self._lock:
            weights = self._weights.get((algorithm, target))
        if weights is None:
            return None
        x = np.append(np.asarray(features, dtype=float), 1.0)
        log_ratio = float(np.clip(x @ weights, -_LOG_CLAMP, _LOG_CLAMP))
        return math.exp(log_ratio)

    def predict_cost_ratio(self, algorithm, features):
        """Expected observed/predicted per-iteration-cost ratio."""
        return self._predict(algorithm, "cost", features)

    def predict_iterations_ratio(self, algorithm, features):
        """Expected observed/predicted iteration-count ratio."""
        return self._predict(algorithm, "iterations", features)

    # -- curve-family feedback -------------------------------------------
    def vote_curve_family(self, algorithm, family) -> None:
        """Record one adaptive refit's preferred error-curve family."""
        with self._lock:
            votes = self._curve_votes.setdefault(algorithm, {})
            votes[family] = votes.get(family, 0) + 1
            self._digest = None

    def curve_family(self, algorithm, min_votes=3):
        """Majority family with at least ``min_votes`` votes, or None."""
        with self._lock:
            votes = self._curve_votes.get(algorithm)
            if not votes:
                return None
            family, count = max(
                sorted(votes.items()), key=lambda item: item[1]
            )
            return family if count >= min_votes else None

    def curve_families(self, min_votes=3) -> dict:
        """{algorithm: majority family} for every settled vote."""
        with self._lock:
            algorithms = tuple(self._curve_votes)
        out = {}
        for algorithm in algorithms:
            family = self.curve_family(algorithm, min_votes=min_votes)
            if family is not None:
                out[algorithm] = family
        return out

    # -- identity --------------------------------------------------------
    def state_digest(self) -> str:
        """Content digest of everything that shapes a prediction.

        Joins the calibration digest in cache-entry stamps (see
        ``OptimizerService``): two models with equal digests rank plans
        identically, whatever their histories.  Cached; invalidated on
        fit/observe/vote.
        """
        with self._lock:
            if self._digest is None:
                payload = (
                    MODEL_FORMAT,
                    self.ridge_lambda,
                    sorted(
                        (alg, target, [round(w, 12) for w in weights])
                        for (alg, target), weights in self._weights.items()
                    ),
                    sorted(
                        (alg, sorted(votes.items()))
                        for alg, votes in self._curve_votes.items()
                    ),
                )
                self._digest = hashlib.sha256(
                    repr(payload).encode()
                ).hexdigest()[:16]
            return self._digest

    # -- persistence -----------------------------------------------------
    def to_dict(self) -> dict:
        with self._lock:
            return {
                "model_format": MODEL_FORMAT,
                "ridge_lambda": self.ridge_lambda,
                "weights": {
                    f"{alg}:{target}": [float(w) for w in weights]
                    for (alg, target), weights in self._weights.items()
                },
                "curve_votes": {
                    alg: dict(votes)
                    for alg, votes in self._curve_votes.items()
                },
                "dataset": self.dataset.to_dict(),
            }

    @classmethod
    def from_dict(cls, payload, path=None) -> "ResidualModel":
        fmt = int(payload.get("model_format", MODEL_FORMAT))
        if fmt > MODEL_FORMAT:
            raise LearnedModelError(
                f"learned model format {fmt} is newer than this build "
                f"understands (max {MODEL_FORMAT}); refusing to guess "
                "at its semantics"
            )
        model = cls(
            ridge_lambda=float(payload.get("ridge_lambda", 1.0))
        )
        model.path = path
        model.dataset = TraceDataset.from_dict(
            payload.get("dataset", {})
        )
        model._curve_votes = {
            alg: {family: int(count) for family, count in votes.items()}
            for alg, votes in payload.get("curve_votes", {}).items()
        }
        # Refit from the carried dataset rather than trusting persisted
        # weights blindly; the stored weights are still decoded as a
        # fallback for datasets pruned out of the file by hand.
        for algorithm in {e.algorithm for e in model.dataset.examples}:
            model._refit(algorithm)
        for key, weights in payload.get("weights", {}).items():
            alg, _, target = key.rpartition(":")
            if (alg, target) not in model._weights and alg:
                model._weights[(alg, target)] = np.asarray(
                    weights, dtype=float
                )
        return model

    def save(self, path=None) -> str:
        target = path or self.path
        if target is None:
            raise ValueError("no path to save the learned model to")
        payload = self.to_dict()
        # Same unique-temp atomic-rewrite discipline as the calibration
        # store and JsonFileBackend: concurrent writers never clobber
        # each other's half-written temp file.
        tmp = f"{target}.tmp.{os.getpid()}.{threading.get_ident()}"
        try:
            with open(tmp, "w") as handle:
                json.dump(payload, handle, indent=2)
            os.replace(tmp, target)
        finally:
            if os.path.exists(tmp):  # pragma: no cover - error paths
                os.unlink(tmp)
        self.path = target
        return target

    @classmethod
    def open(cls, path=None, ridge_lambda=1.0) -> "ResidualModel":
        """Load the model at ``path`` if it exists, else a fresh one."""
        if path and os.path.exists(path):
            with open(path) as handle:
                try:
                    payload = json.load(handle)
                except json.JSONDecodeError as exc:
                    raise LearnedModelError(
                        f"learned model file {path} is not valid JSON: "
                        f"{exc}"
                    ) from exc
            return cls.from_dict(payload, path=path)
        model = cls(ridge_lambda=ridge_lambda)
        model.path = path
        return model

    def summary(self) -> str:
        with self._lock:
            counts = self.dataset.counts()
            if not counts and not self._curve_votes:
                return "learned model: untrained"
            lines = [
                f"learned model: {len(self.dataset)} example(s), "
                f"digest {self.state_digest()}"
            ]
            for alg in sorted(counts):
                lines.append(f"  {alg}: {counts[alg]} cost example(s)")
            for alg, votes in sorted(self._curve_votes.items()):
                tally = ", ".join(
                    f"{family} x{count}"
                    for family, count in sorted(votes.items())
                )
                lines.append(f"  {alg} curve votes: {tally}")
            return "\n".join(lines)
