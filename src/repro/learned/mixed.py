"""Mixing the learned residual model into analytic+EWMA plan ranking.

The Delta-style rule (PAPERS.md, arXiv 2506.15848): serve the learned
prediction only where it has enough training data behind it, and blend
it with the scalar EWMA correction in proportion to how much evidence
each side holds.

:class:`MixedCostModel` is *not* a cost model subclass -- it is a factor
provider the optimizer consults next to the calibration store.  For
each algorithm it either

* stays silent (algorithm absent from :meth:`factors`) because the
  learned model has fewer than ``min_training`` examples for it -- the
  optimizer then takes its exact pre-existing analytic+EWMA path, so
  the fallback is bit-identical by construction; or
* serves a blended correction ``exp((1-β)·ln F_ewma + β·ln R_learned)``
  where β = m / (m + n_ewma + smoothing) weighs the learned model's m
  examples against the EWMA's n observations.  A fresh calibration
  store (n = 0) hands the learned model the ranking; a long-calibrated
  one keeps most of its say.

The blended factor is applied through the same
``calibration:cost_factor`` breakdown slot the EWMA factor uses, so the
feedback loop (``segment_from_result`` -> ``record_segment`` composing
observed ratios with applied factors) keeps learning absolute
observed/base ratios with no special cases.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math

from repro.learned.dataset import feature_vector
from repro.runtime.calibration import MAX_FACTOR

#: Below this many per-(algorithm, target) training examples the mixer
#: stays out of that algorithm's ranking entirely.
DEFAULT_MIN_TRAINING = 5


def _clamp(value) -> float:
    return float(min(max(value, 1.0 / MAX_FACTOR), MAX_FACTOR))


@dataclasses.dataclass(frozen=True)
class MixedFactors:
    """Blended correction factors for one algorithm."""

    cost_factor: float = 1.0
    iterations_factor: float = 1.0
    #: β of the cost blend (0 = pure EWMA, 1 = pure learned).
    blend_weight: float = 0.0


class MixedCostModel:
    """Gated blend of EWMA corrections and learned residuals.

    Wraps a :class:`~repro.learned.model.ResidualModel`; the optimizer
    asks :meth:`factors` for the algorithms the mixer wants to override
    and leaves every other algorithm on the analytic+EWMA path.
    """

    def __init__(self, model, min_training=DEFAULT_MIN_TRAINING,
                 blend_smoothing=1.0):
        if min_training < 1:
            raise ValueError("min_training must be >= 1")
        self.model = model
        self.min_training = int(min_training)
        self.blend_smoothing = float(blend_smoothing)

    # -- ranking ---------------------------------------------------------
    def _blend(self, ewma_factor, ewma_count, learned_ratio, m) -> tuple:
        beta = m / (m + ewma_count + self.blend_smoothing)
        mixed = math.exp(
            (1.0 - beta) * math.log(_clamp(ewma_factor))
            + beta * math.log(_clamp(learned_ratio))
        )
        return _clamp(mixed), beta

    def factors(self, algorithms, stats, spec, epsilon=None,
                batch_sizes=None, corrections=None) -> dict:
        """{algorithm: MixedFactors} for gated-in algorithms only.

        An algorithm appears iff its learned cost target has at least
        ``min_training`` examples *and* yields a prediction; everything
        else is intentionally absent so the caller's fallback path is
        untouched (the bit-identical guarantee).
        """
        batch_sizes = batch_sizes or {}
        corrections = corrections or {}
        out = {}
        for algorithm in algorithms:
            m = self.model.training_count(algorithm, target="cost")
            if m < self.min_training:
                continue
            features = feature_vector(
                stats, spec, algorithm,
                batch_size=batch_sizes.get(algorithm), epsilon=epsilon,
            )
            learned_cost = self.model.predict_cost_ratio(
                algorithm, features
            )
            if learned_cost is None:
                continue
            correction = corrections.get(algorithm)
            ewma_cost = correction.cost_factor if correction else 1.0
            ewma_cost_n = (
                correction.cost_observations if correction else 0
            )
            cost_factor, beta = self._blend(
                ewma_cost, ewma_cost_n, learned_cost, m
            )
            # Iterations blend the same way but gate on their own
            # example count; short of it the EWMA factor passes through
            # unchanged (exactly what the fallback path would apply).
            iterations_factor = (
                correction.iterations_factor if correction else 1.0
            )
            m_iters = self.model.training_count(
                algorithm, target="iterations"
            )
            if m_iters >= self.min_training:
                learned_iters = self.model.predict_iterations_ratio(
                    algorithm, features
                )
                if learned_iters is not None:
                    ewma_iters_n = (
                        correction.iterations_observations
                        if correction else 0
                    )
                    iterations_factor, _ = self._blend(
                        iterations_factor, ewma_iters_n,
                        learned_iters, m_iters,
                    )
            out[algorithm] = MixedFactors(
                cost_factor=cost_factor,
                iterations_factor=float(iterations_factor),
                blend_weight=beta,
            )
        return out

    # -- passthroughs the serving/training layers use --------------------
    def training_count(self, algorithm, target="cost") -> int:
        return self.model.training_count(algorithm, target=target)

    def observe_segment(self, segment, stats, spec, epsilon=None,
                        batch_size=None) -> bool:
        return self.model.observe_segment(
            segment, stats, spec, epsilon=epsilon, batch_size=batch_size
        )

    def vote_curve_family(self, algorithm, family) -> None:
        self.model.vote_curve_family(algorithm, family)

    def curve_families(self, min_votes=3) -> dict:
        return self.model.curve_families(min_votes=min_votes)

    def state_digest(self) -> str:
        """Digest of everything that shapes the served factors.

        Includes the gate and the blend smoothing: two mixers over the
        same model but different thresholds rank differently, and cache
        stamps must notice.
        """
        payload = (
            self.model.state_digest(),
            self.min_training,
            self.blend_smoothing,
        )
        return hashlib.sha256(repr(payload).encode()).hexdigest()[:16]
