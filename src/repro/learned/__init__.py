"""Learned residual cost model layered on the analytic one.

The step from scalar EWMA corrections (PRs 2-3) to a model that learns
the hardware: :class:`TraceDataset` harvests (features, residual)
examples from persisted execution traces, :class:`ResidualModel` fits
dependency-free ridge regressions over them, and
:class:`MixedCostModel` blends the result with the analytic+EWMA
ranking -- gated by training-data volume so an undertrained model
changes nothing, bit for bit.
"""

from repro.learned.dataset import (
    FEATURE_NAMES,
    TraceDataset,
    TraceExample,
    example_from_segment,
    feature_vector,
)
from repro.learned.mixed import (
    DEFAULT_MIN_TRAINING,
    MixedCostModel,
    MixedFactors,
)
from repro.learned.model import MODEL_FORMAT, ResidualModel

__all__ = [
    "DEFAULT_MIN_TRAINING",
    "FEATURE_NAMES",
    "MODEL_FORMAT",
    "MixedCostModel",
    "MixedFactors",
    "ResidualModel",
    "TraceDataset",
    "TraceExample",
    "example_from_segment",
    "feature_vector",
]
