"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Simulated platform failures (e.g. a baseline system
running out of memory on the simulated cluster, as SystemML does in the
paper's Section 8.4) are modelled as exceptions too, because the benchmark
harness needs to record them as "failed" cells exactly like the paper does.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class QueryError(ReproError):
    """A declarative query could not be parsed or validated."""

    def __init__(self, message, line=None, column=None):
        location = ""
        if line is not None:
            location = f" (line {line}"
            location += f", column {column})" if column is not None else ")"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class PlanError(ReproError):
    """A GD plan is malformed or cannot be executed."""


class ConstraintError(ReproError):
    """A user constraint (time / epsilon / max_iter) cannot be satisfied.

    Mirrors the paper's behaviour: "If the system cannot satisfy any of
    these constraints, it informs the user which constraint she has to
    revisit" (Appendix A).
    """

    def __init__(self, constraint, message):
        super().__init__(f"constraint '{constraint}' cannot be satisfied: {message}")
        self.constraint = constraint


class EstimationError(ReproError):
    """The speculation-based iterations estimator could not produce a fit."""


class SimulatedPlatformError(ReproError):
    """Base class for failures of the *simulated* execution platform."""


class SimulatedOutOfMemory(SimulatedPlatformError):
    """The simulated system exceeded its memory budget.

    The paper reports SystemML failing "with out of memory exceptions" on
    the dense synthetic datasets and the Bismarck abstraction failing for
    rcv1 (many features) and svm1 (many points).  Baselines raise this so
    the harness can record the failure.
    """

    def __init__(self, system, needed_bytes, budget_bytes):
        super().__init__(
            f"{system}: simulated allocation of {needed_bytes} bytes exceeds "
            f"memory budget of {budget_bytes} bytes"
        )
        self.system = system
        self.needed_bytes = needed_bytes
        self.budget_bytes = budget_bytes


class SimulatedTimeout(SimulatedPlatformError):
    """A run exceeded its (simulated) wall-clock budget.

    The paper stops MLlib/SystemML runs after 3 hours in several
    experiments; the harness uses this exception to record those cells.
    """

    def __init__(self, system, elapsed_s, budget_s):
        super().__init__(
            f"{system}: simulated time {elapsed_s:.1f}s exceeded budget {budget_s:.1f}s"
        )
        self.system = system
        self.elapsed_s = elapsed_s
        self.budget_s = budget_s


class DataFormatError(ReproError):
    """An input file (e.g. LIBSVM text) could not be parsed."""


class LearnedModelError(ReproError):
    """A learned-model file is unreadable (wrong format or corrupt)."""
