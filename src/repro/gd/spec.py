"""The :class:`AlgorithmSpec` plugin interface of the GD algorithm zoo.

The paper's search space "is fully parameterized based on the number of
GD algorithms ... there could be tens of GD algorithms that the user
might want to evaluate" (Section 6).  Historically that parameterization
stopped at the registry's name table: adding an algorithm still meant
editing the registry's ``run()`` branches, the executor's operator
selection, the optimizer-state schema and the cost/speculation layers by
hand.  An :class:`AlgorithmSpec` bundles *all* of those seams into one
declarative object, so a new algorithm is its own module plus one
:func:`~repro.gd.registry.register` call:

===========================  ============================================
spec field                   consumed by
===========================  ============================================
``driver``                   ``registry.run`` (speculation, baselines)
``accepted_kwargs``          ``registry.run`` kwarg filtering + WARNING
``make_updater``             ``registry.updater_for`` / reference Update
``make_operators``           ``core.executor.PlanExecutor``
``state_namespace``          ``OptimizerState.algorithm_state`` keying
``transfer_state``           ``OptimizerState.transfer_to`` (plan switch)
``cost``                     ``core.cost_model.CostModel`` (both paths)
``speculation_overrides``    ``core.iterations.SpeculativeEstimator``
``plan_variants``            ``core.plan_space.plans_for_algorithm``
===========================  ============================================

See ``docs/ARCHITECTURE.md`` ("Adding a GD algorithm") for the
walkthrough and ``repro.gd.grad_avg`` / ``repro.gd.arc`` for two
algorithms expressed purely through this interface.
"""

from __future__ import annotations

import dataclasses

from repro.errors import PlanError


@dataclasses.dataclass(frozen=True)
class CostTerms:
    """Per-algorithm correction terms for the Section 7 cost model.

    The paper's formulas price a plan by its *shape* (sampling,
    transformation, distribution); algorithms whose iterations do more
    than one gradient/update express that here.  The defaults are the
    exact identity -- every paper algorithm keeps its historical cost
    bit-for-bit -- and the cost model skips the correction entirely when
    :meth:`is_identity` holds, so registering a spec with default terms
    is provably behaviour-preserving.
    """

    #: Scales the whole per-iteration cost (1.0 = unchanged).
    per_iteration_multiplier: float = 1.0
    #: Extra Update work per iteration, as a multiple of the plan's
    #: Update CPU cost (e.g. 1.0 for one additional weight-sized vector
    #: op, like maintaining a running gradient average).
    extra_update_cost_factor: float = 0.0
    #: Fraction of iterations that are *full-batch* passes on an
    #: otherwise stochastic plan (SVRG-style anchors, Arc GD's periodic
    #: full-gradient probes).  Those iterations are priced at the
    #: full-batch per-iteration cost instead of the stochastic one.
    full_pass_fraction: float = 0.0

    def __post_init__(self):
        if self.per_iteration_multiplier <= 0:
            raise PlanError("per_iteration_multiplier must be positive")
        if self.extra_update_cost_factor < 0:
            raise PlanError("extra_update_cost_factor must be >= 0")
        if not 0.0 <= self.full_pass_fraction <= 1.0:
            raise PlanError("full_pass_fraction must be in [0, 1]")

    def is_identity(self) -> bool:
        return (
            self.per_iteration_multiplier == 1.0
            and self.extra_update_cost_factor == 0.0
            and self.full_pass_fraction == 0.0
        )


@dataclasses.dataclass(frozen=True)
class AlgorithmSpec:
    """Everything the system needs to know about one GD algorithm.

    The first four fields are the legacy ``AlgorithmInfo`` descriptor
    (same names, same order), so existing positional constructions and
    attribute reads keep working; everything after them is the plugin
    surface, each field defaulting to "behave exactly like a plain
    registered algorithm always did".
    """

    name: str
    #: None -> full batch; 1 -> single sample; other -> default mini-batch.
    default_batch_size: int | None
    #: Whether the algorithm reads a per-iteration sample (enables the
    #: Sample operator and the lazy-transformation/data-skipping plans).
    stochastic: bool
    description: str

    # -- driver seam (registry.run: speculation, pure-math training) ----
    #: Custom pure-math driver ``driver(X, y, gradient, **kwargs) ->
    #: GDRunResult``; None runs the canonical
    #: :func:`~repro.gd.base.run_loop` with the selector implied by
    #: ``default_batch_size`` and the updater from ``make_updater``.
    driver: object = None
    #: Keyword arguments the driver understands.  ``registry.run``
    #: filters its kwargs to this set and logs a ``repro.gd`` WARNING
    #: naming anything it dropped; None accepts the full
    #: :func:`~repro.gd.base.run_loop` surface.
    accepted_kwargs: frozenset | None = None
    #: When True, ``batch_size`` overrides are ignored (SGD is
    #: single-sample *by definition*; an override would silently turn it
    #: into MGD).
    batch_size_fixed: bool = False

    # -- direction seam (reference Update operator / run_loop) ----------
    #: Zero-arg factory for a fresh :class:`~repro.gd.base.Updater`
    #: (None -> vanilla gradient direction).  A factory, not an
    #: instance: updaters are stateful and never shared across runs.
    make_updater: object = None

    # -- executor seam --------------------------------------------------
    #: Operator-bundle factory ``make_operators(d, training, plan,
    #: iteration_offset) -> GDOperators`` used by the plan executor;
    #: None builds the reference bundle
    #: (:func:`~repro.core.reference_ops.default_operators`) with this
    #: spec's updater.  Factories should lazy-import ``repro.core``
    #: modules to keep the gd -> core import direction acyclic.
    make_operators: object = None
    #: Whether the plan executor can run this algorithm faithfully.
    #: Line search is the counter-example: its inner backtracking loop
    #: has no operator expression, so it is speculation/baseline-only.
    supports_executor: bool = True

    # -- state seam -----------------------------------------------------
    #: Key under :attr:`OptimizerState.algorithm_state` that this
    #: algorithm's private state (anchors, phase markers, ...) lives in;
    #: None for algorithms whose whole state is the generic snapshot
    #: (offset, updater buffers, RNG, convergence memory).
    state_namespace: str | None = None
    #: Cross-plan transfer hook ``transfer_state(payload, target_algorithm,
    #: notes) -> payload | None``, consulted by
    #: :meth:`OptimizerState.transfer_to` for this spec's namespace on a
    #: plan switch.  Return the payload (or a reduced one) to carry it,
    #: None to drop it; append human-readable decisions to ``notes``.
    #: None drops the namespace with a generic note.
    transfer_state: object = None

    # -- optimizer seams ------------------------------------------------
    #: Cost-model correction terms (identity by default; see
    #: :class:`CostTerms`).
    cost: CostTerms = CostTerms()
    #: Per-algorithm :class:`~repro.core.iterations.SpeculationSettings`
    #: field overrides (e.g. a longer time budget for slow-start
    #: algorithms); empty dict = the estimator's own settings, verbatim.
    speculation_overrides: dict = dataclasses.field(default_factory=dict)
    #: ``(transform_mode, sampling)`` pairs the plan space enumerates
    #: for this algorithm; None = the Figure 5 defaults (one eager plan
    #: for full-batch algorithms, the five stochastic variants
    #: otherwise).
    plan_variants: tuple | None = None

    def __post_init__(self):
        if not self.name:
            raise PlanError("algorithm specs need a non-empty name")
        if self.driver is not None and self.accepted_kwargs is None:
            raise PlanError(
                f"algorithm {self.name!r} has a custom driver but no "
                "accepted_kwargs declaration; registry.run cannot filter "
                "kwargs safely without one"
            )
        if self.transfer_state is not None and self.state_namespace is None:
            raise PlanError(
                f"algorithm {self.name!r} declares a transfer_state hook "
                "without a state_namespace to apply it to"
            )


#: Keyword surface of :func:`~repro.gd.base.run_loop`, the accepted set
#: of every generic (driver-less) algorithm.
RUN_LOOP_KWARGS = frozenset({
    "step_size", "tolerance", "max_iter", "convergence", "w0", "updater",
    "rng", "record_loss", "time_budget_s", "iteration_callback", "state",
    "state_every", "state_callback",
})
