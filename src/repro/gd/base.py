"""The canonical gradient-descent loop shared by all GD variants.

This is the *mathematical* reference implementation: pure numpy, no
simulated cluster.  It is used (a) by the speculation-based iterations
estimator, which runs GD on a small sample under a wall-clock budget
(Algorithm 1), (b) as ground truth in tests, and (c) by the plan executor,
which performs the same per-iteration math while charging the simulated
clock through engine primitives.

The loop follows the paper's operator semantics:

    Stage    -> w0 = 0, iteration counter, step size state
    Sample   -> ``batch_selector(i, rng)`` picks the data units
    Compute  -> mean task gradient over the batch
    Update   -> w <- w - alpha_i * direction(grad)
    Converge -> delta = criterion(w_old, w_new)   (L1 by default)
    Loop     -> stop when delta < tolerance or i = max_iter
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.errors import PlanError
from repro.gd.convergence import make_convergence
from repro.gd.state import OptimizerState, capture_rng, restore_rng
from repro.gd.step_size import make_step_size, with_offset


@dataclasses.dataclass
class GDRunResult:
    """Outcome of one pure-math GD run."""

    weights: np.ndarray
    iterations: int
    converged: bool
    #: delta_i for each completed iteration (the error sequence the
    #: iterations estimator fits; Algorithm 1 line 7).
    deltas: np.ndarray
    elapsed_s: float
    losses: np.ndarray | None = None
    #: Carry-over snapshot at exit (schedule position, updater buffers,
    #: RNG stream); feed it back as ``state=`` to resume bit-identically.
    state: OptimizerState | None = None

    @property
    def final_delta(self) -> float:
        return float(self.deltas[-1]) if len(self.deltas) else float("inf")


class Updater:
    """Direction strategy: maps the raw gradient to an update direction.

    Vanilla GD uses the gradient itself.  Adaptive variants (momentum,
    AdaGrad, Adam) keep internal state -- the paper's abstraction supports
    them because Update is a UDF ("Our abstraction allows the
    implementation of any GD algorithm regardless of the step size and
    other hyperparameters", Section 4.4).
    """

    name = "vanilla"

    def reset(self, d) -> None:
        """Prepare state for a d-dimensional problem."""

    def direction(self, grad, i) -> np.ndarray:
        """Update direction for *global* iteration ``i`` (1-based).

        Resumed segments pass ``offset + local_i`` so stateful variants
        (notably Adam's bias correction) continue where they left off.
        """
        return grad

    def state_dict(self) -> dict:
        """JSON-ready snapshot of the internal buffers ({} if none)."""
        return {}

    def load_state(self, buffers) -> None:
        """Restore buffers captured by :meth:`state_dict` (after reset)."""


class MomentumUpdater(Updater):
    """Polyak momentum: v <- gamma v + grad; direction v."""

    def __init__(self, gamma=0.9):
        if not 0.0 <= gamma < 1.0:
            raise PlanError("momentum gamma must be in [0, 1)")
        self.gamma = float(gamma)
        self.name = f"momentum({gamma:g})"
        self._v = None

    def reset(self, d):
        self._v = np.zeros(d)

    def direction(self, grad, i):
        self._v = self.gamma * self._v + grad
        return self._v

    def state_dict(self):
        return {} if self._v is None else {"v": self._v.tolist()}

    def load_state(self, buffers):
        if "v" in buffers:
            self._v = np.asarray(buffers["v"], dtype=float)


class AdaGradUpdater(Updater):
    """AdaGrad: per-coordinate scaling by accumulated squared gradients."""

    def __init__(self, eps=1e-8):
        self.eps = float(eps)
        self.name = "adagrad"
        self._acc = None

    def reset(self, d):
        self._acc = np.zeros(d)

    def direction(self, grad, i):
        self._acc += grad * grad
        return grad / (np.sqrt(self._acc) + self.eps)

    def state_dict(self):
        return {} if self._acc is None else {"acc": self._acc.tolist()}

    def load_state(self, buffers):
        if "acc" in buffers:
            self._acc = np.asarray(buffers["acc"], dtype=float)


class AdamUpdater(Updater):
    """Adam with bias correction."""

    def __init__(self, beta1=0.9, beta2=0.999, eps=1e-8):
        self.beta1, self.beta2, self.eps = float(beta1), float(beta2), float(eps)
        self.name = "adam"
        self._m = None
        self._v = None

    def reset(self, d):
        self._m = np.zeros(d)
        self._v = np.zeros(d)

    def direction(self, grad, i):
        self._m = self.beta1 * self._m + (1 - self.beta1) * grad
        self._v = self.beta2 * self._v + (1 - self.beta2) * grad * grad
        m_hat = self._m / (1 - self.beta1 ** i)
        v_hat = self._v / (1 - self.beta2 ** i)
        return m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self):
        if self._m is None:
            return {}
        return {"m": self._m.tolist(), "v": self._v.tolist()}

    def load_state(self, buffers):
        if "m" in buffers:
            self._m = np.asarray(buffers["m"], dtype=float)
        if "v" in buffers:
            self._v = np.asarray(buffers["v"], dtype=float)


def full_batch_selector(i, rng):
    """BGD: every iteration touches the whole dataset."""
    return slice(None)


def make_minibatch_selector(n, batch_size):
    """Uniform mini-batch selector of ``batch_size`` rows (SGD: size 1)."""
    if batch_size < 1:
        raise PlanError("batch size must be >= 1")
    size = min(batch_size, n)

    def select(i, rng):
        if size == 1:
            return np.array([rng.integers(0, n)])
        return rng.choice(n, size=size, replace=False)

    return select


def run_loop(
    X,
    y,
    gradient,
    batch_selector,
    step_size=1.0,
    tolerance=1e-3,
    max_iter=1000,
    convergence="l1",
    w0=None,
    updater=None,
    rng=None,
    record_loss=False,
    time_budget_s=None,
    iteration_callback=None,
    state=None,
    state_every=None,
    state_callback=None,
):
    """Run the canonical GD loop; returns :class:`GDRunResult`.

    ``time_budget_s`` stops the loop once the *wall-clock* budget is
    consumed (Algorithm 1 uses this during speculation).
    ``iteration_callback(i, w, delta)`` is invoked after each iteration;
    returning True stops the loop early -- but convergence always wins:
    a run that reaches the tolerance on its stopping iteration reports
    ``converged=True`` (the same ordering as
    :class:`~repro.core.executor.PlanExecutor`).

    ``state`` resumes a stopped run from its exported
    :class:`~repro.gd.state.OptimizerState`: the step schedule and the
    updater continue at global iteration ``state.iteration_offset + 1``
    (never back at 1), matching updater buffers are restored, and the
    RNG stream picks up exactly where it left off -- together with
    ``w0`` set to the stopped run's weights this makes stop-and-resume
    bit-identical to an uninterrupted run.  Every run exports a fresh
    snapshot in ``GDRunResult.state``.

    ``state_every``/``state_callback`` export snapshots *mid-run*, on a
    cadence of global iterations, without perturbing the run:
    ``state_callback(global_iteration, weights_copy, OptimizerState)``
    fires whenever the loop passes a multiple of ``state_every`` and
    keeps going -- the checkpoint substrate of preemptible training
    (resuming from any snapshot reproduces the remaining iterations
    bit-identically).  Iterations the loop *exits* on are not exported
    here; the final ``GDRunResult.state`` covers them.
    """
    n, d = X.shape
    if n == 0:
        raise PlanError("cannot train on an empty dataset")
    rng = rng if rng is not None else np.random.default_rng(0)
    offset = 0
    if state is not None:
        offset = int(state.iteration_offset)
        restore_rng(rng, state.rng_state)
    step = with_offset(step_size, offset)
    criterion = make_convergence(convergence)
    updater = updater or Updater()
    updater.reset(d)
    if state is not None and state.updater_buffers \
            and state.updater == updater.name:
        updater.load_state(state.updater_buffers)

    w = np.zeros(d) if w0 is None else np.asarray(w0, dtype=float).copy()
    if w.shape != (d,):
        raise PlanError(f"w0 must have shape ({d},), got {w.shape}")

    def snapshot(completed) -> OptimizerState:
        return OptimizerState(
            iteration_offset=offset + completed,
            updater=updater.name,
            updater_buffers=updater.state_dict(),
            rng_state=capture_rng(rng),
        )

    deltas = []
    losses = [] if record_loss else None
    converged = False
    start = time.perf_counter()
    iterations = 0

    for i in range(1, max_iter + 1):
        batch = batch_selector(offset + i, rng)
        grad = gradient.gradient(w, X[batch], y[batch])
        w_new = w - step.step(i) * updater.direction(grad, offset + i)
        delta = criterion.delta(w, w_new)
        w = w_new
        deltas.append(delta)
        if record_loss:
            losses.append(gradient.loss(w, X, y))
        iterations = i
        stop_requested = (
            iteration_callback is not None
            and iteration_callback(i, w, delta)
        )
        if delta < tolerance:
            converged = True
            break
        if stop_requested:
            break
        if time_budget_s is not None and time.perf_counter() - start > time_budget_s:
            break
        if (state_every is not None and state_callback is not None
                and i < max_iter
                and (offset + i) % state_every == 0):
            state_callback(offset + i, w.copy(), snapshot(i))

    return GDRunResult(
        weights=w,
        iterations=iterations,
        converged=converged,
        deltas=np.asarray(deltas),
        elapsed_s=time.perf_counter() - start,
        losses=np.asarray(losses) if record_loss else None,
        state=snapshot(iterations),
    )
