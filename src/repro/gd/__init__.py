"""Gradient-descent algorithm substrate (pure numpy reference math)."""

from repro.gd.base import (
    AdaGradUpdater,
    AdamUpdater,
    GDRunResult,
    MomentumUpdater,
    Updater,
    full_batch_selector,
    make_minibatch_selector,
    run_loop,
)
from repro.gd.bgd import bgd
from repro.gd.convergence import (
    ConvergenceCriterion,
    L1WeightDelta,
    L2WeightDelta,
    make_convergence,
)
from repro.gd.gradients import (
    Gradient,
    HingeGradient,
    L2Regularized,
    LinearRegressionGradient,
    LogisticGradient,
    named_gradient,
    task_gradient,
)
from repro.gd.line_search import backtracking_bgd
from repro.gd.mgd import mgd
from repro.gd.registry import ALGORITHMS, CORE_ALGORITHMS, AlgorithmInfo, info, run
from repro.gd.sgd import sgd
from repro.gd.state import STATE_FORMAT, OptimizerState, capture_rng, restore_rng
from repro.gd.step_size import (
    ConstantStep,
    InverseSqrtStep,
    InverseSquaredStep,
    InverseStep,
    OffsetStep,
    StepSize,
    make_step_size,
    with_offset,
)
from repro.gd.spec import AlgorithmSpec, CostTerms
from repro.gd.svrg import svrg

# Plugin algorithms: importing the module is the registration (each ends
# in a register() call against the spec seams above).
from repro.gd import arc as _arc_plugin  # noqa: F401
from repro.gd import grad_avg as _grad_avg_plugin  # noqa: F401
from repro.gd.arc import arc
from repro.gd.grad_avg import GradientAveragingUpdater

__all__ = [
    "AdaGradUpdater",
    "AdamUpdater",
    "GDRunResult",
    "MomentumUpdater",
    "Updater",
    "full_batch_selector",
    "make_minibatch_selector",
    "run_loop",
    "bgd",
    "ConvergenceCriterion",
    "L1WeightDelta",
    "L2WeightDelta",
    "make_convergence",
    "Gradient",
    "HingeGradient",
    "L2Regularized",
    "LinearRegressionGradient",
    "LogisticGradient",
    "named_gradient",
    "task_gradient",
    "backtracking_bgd",
    "mgd",
    "ALGORITHMS",
    "CORE_ALGORITHMS",
    "AlgorithmInfo",
    "info",
    "run",
    "sgd",
    "STATE_FORMAT",
    "OptimizerState",
    "capture_rng",
    "restore_rng",
    "ConstantStep",
    "InverseSqrtStep",
    "InverseSquaredStep",
    "InverseStep",
    "OffsetStep",
    "StepSize",
    "make_step_size",
    "with_offset",
    "svrg",
    "AlgorithmSpec",
    "CostTerms",
    "arc",
    "GradientAveragingUpdater",
]
