"""Gradient functions for the supported ML tasks (Table 3 of the paper).

    ML task              g(w, x_i, y_i)
    -------------------  -------------------------------------------
    Linear regression    2 (w.x_i - y_i) x_i
    Logistic regression  (-1 / (1 + exp(y_i w.x_i))) y_i x_i
    SVM (hinge)          -y_i x_i   if y_i w.x_i < 1, else 0

All implementations are vectorised over a *batch* of data units and return
the **mean** gradient over the batch, matching MLlib's semantics (gradient
sum divided by the mini-batch size) so that the same step size behaves
comparably across BGD, MGD and SGD -- the paper deliberately uses MLlib's
hard-coded step size everywhere (Section 8.1).

Dense ``ndarray`` and ``scipy.sparse`` CSR inputs are both supported; an
optional L2 regularizer can wrap any task gradient.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as sp
from scipy.special import expit

from repro.errors import PlanError


def _margins(w, X):
    """X @ w as a flat ndarray for dense or sparse X."""
    out = X @ w
    return np.asarray(out).ravel()


def _weighted_feature_sum(X, coef):
    """sum_i coef_i * x_i as a flat ndarray (works for CSR)."""
    out = X.T @ coef
    return np.asarray(out).ravel()


class Gradient:
    """Interface of a task gradient: mean gradient, mean loss, prediction."""

    name = "base"
    task = "base"

    def gradient(self, w, X, y):  # pragma: no cover - interface
        raise NotImplementedError

    def loss(self, w, X, y):  # pragma: no cover - interface
        raise NotImplementedError

    def predict(self, w, X):  # pragma: no cover - interface
        raise NotImplementedError


class LinearRegressionGradient(Gradient):
    """Squared loss: f_i(w) = (w.x_i - y_i)^2, g = 2 (w.x_i - y_i) x_i."""

    name = "squared"
    task = "linreg"

    def gradient(self, w, X, y):
        residual = _margins(w, X) - y
        return 2.0 * _weighted_feature_sum(X, residual) / X.shape[0]

    def loss(self, w, X, y):
        residual = _margins(w, X) - y
        return float(np.mean(residual ** 2))

    def predict(self, w, X):
        return _margins(w, X)


class LogisticGradient(Gradient):
    """Logistic loss with labels in {-1, +1}.

    f_i(w) = log(1 + exp(-y_i w.x_i)); the Table 3 form
    g = (-1 / (1 + exp(y_i w.x_i))) y_i x_i is computed with the stable
    sigmoid ``expit(-m) = 1 / (1 + exp(m))``.
    """

    name = "logistic"
    task = "logreg"

    def gradient(self, w, X, y):
        m = y * _margins(w, X)
        coef = -y * expit(-m)
        return _weighted_feature_sum(X, coef) / X.shape[0]

    def loss(self, w, X, y):
        m = y * _margins(w, X)
        # log(1 + exp(-m)) computed stably for both signs of m.
        return float(np.mean(np.logaddexp(0.0, -m)))

    def predict(self, w, X):
        return np.where(_margins(w, X) >= 0.0, 1.0, -1.0)


class HingeGradient(Gradient):
    """SVM hinge loss with labels in {-1, +1}.

    f_i(w) = max(0, 1 - y_i w.x_i); subgradient -y_i x_i on margin
    violations, 0 otherwise (Table 3).
    """

    name = "hinge"
    task = "svm"

    def gradient(self, w, X, y):
        m = y * _margins(w, X)
        coef = np.where(m < 1.0, -y, 0.0)
        return _weighted_feature_sum(X, coef) / X.shape[0]

    def loss(self, w, X, y):
        m = y * _margins(w, X)
        return float(np.mean(np.maximum(0.0, 1.0 - m)))

    def predict(self, w, X):
        return np.where(_margins(w, X) >= 0.0, 1.0, -1.0)


class L2Regularized(Gradient):
    """Wrap a task gradient with an L2 regularizer R(w) = lam/2 ||w||^2."""

    def __init__(self, base, lam):
        if lam < 0:
            raise PlanError("regularization strength must be >= 0")
        self.base = base
        self.lam = float(lam)
        self.name = f"{base.name}+l2({lam:g})"
        self.task = base.task

    def gradient(self, w, X, y):
        return self.base.gradient(w, X, y) + self.lam * w

    def loss(self, w, X, y):
        return self.base.loss(w, X, y) + 0.5 * self.lam * float(w @ w)

    def predict(self, w, X):
        return self.base.predict(w, X)


#: Task name -> gradient class, as the declarative language resolves them.
TASK_GRADIENTS = {
    "linreg": LinearRegressionGradient,
    "logreg": LogisticGradient,
    "svm": HingeGradient,
}

#: Gradient-function name -> class (Appendix A: e.g. ``hinge()``).
NAMED_GRADIENTS = {
    "squared": LinearRegressionGradient,
    "logistic": LogisticGradient,
    "hinge": HingeGradient,
}


def task_gradient(task, l2=0.0) -> Gradient:
    """Gradient for an ML task name ('linreg' | 'logreg' | 'svm')."""
    aliases = {
        "classification": "logreg",
        "regression": "linreg",
        "linear_regression": "linreg",
        "logistic_regression": "logreg",
    }
    key = aliases.get(task, task)
    if key not in TASK_GRADIENTS:
        raise PlanError(
            f"unknown task {task!r}; expected one of "
            f"{sorted(TASK_GRADIENTS) + sorted(aliases)}"
        )
    grad = TASK_GRADIENTS[key]()
    if l2 > 0:
        return L2Regularized(grad, l2)
    return grad


def named_gradient(name, l2=0.0) -> Gradient:
    """Gradient by function name ('hinge' | 'logistic' | 'squared')."""
    if name not in NAMED_GRADIENTS:
        raise PlanError(
            f"unknown gradient function {name!r}; expected one of "
            f"{sorted(NAMED_GRADIENTS)}"
        )
    grad = NAMED_GRADIENTS[name]()
    if l2 > 0:
        return L2Regularized(grad, l2)
    return grad
