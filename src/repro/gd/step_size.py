"""Step-size schedules.

The paper fixes the step size to MLlib's hard-coded schedule beta/sqrt(i)
with beta = 1 across all systems and algorithms (Section 8.1), but the
iterations estimator is explicitly demonstrated on other adaptive
schedules as well (Appendix E, Figures 15-16: 1/sqrt(i), 1/i, 1/i^2).
Backtracking line search is a *search*, not a schedule, and lives in
``repro.gd.line_search``.
"""

from __future__ import annotations

import math

from repro.errors import PlanError


class StepSize:
    """Interface: step(i) -> alpha_i for 1-based iteration i."""

    name = "base"

    def step(self, i) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def __call__(self, i) -> float:
        return self.step(i)


class ConstantStep(StepSize):
    """alpha_i = alpha."""

    def __init__(self, alpha=1.0):
        if alpha <= 0:
            raise PlanError("step size must be positive")
        self.alpha = float(alpha)
        self.name = f"constant({alpha:g})"

    def step(self, i):
        return self.alpha


class InverseSqrtStep(StepSize):
    """alpha_i = beta / sqrt(i) -- MLlib's default, used in all experiments."""

    def __init__(self, beta=1.0):
        if beta <= 0:
            raise PlanError("step size must be positive")
        self.beta = float(beta)
        self.name = f"1/sqrt(i) (beta={beta:g})"

    def step(self, i):
        return self.beta / math.sqrt(i)


class InverseStep(StepSize):
    """alpha_i = beta / i (Figure 15(b), 16)."""

    def __init__(self, beta=1.0):
        if beta <= 0:
            raise PlanError("step size must be positive")
        self.beta = float(beta)
        self.name = f"1/i (beta={beta:g})"

    def step(self, i):
        return self.beta / i


class InverseSquaredStep(StepSize):
    """alpha_i = beta / i^2 (Figure 15(c))."""

    def __init__(self, beta=1.0):
        if beta <= 0:
            raise PlanError("step size must be positive")
        self.beta = float(beta)
        self.name = f"1/i^2 (beta={beta:g})"

    def step(self, i):
        return self.beta / (i * i)


class OffsetStep(StepSize):
    """Resume wrapper: evaluates a schedule at ``i + offset``.

    A training segment that resumes after ``offset`` completed global
    iterations keeps counting locally from 1; wrapping its schedule in
    an :class:`OffsetStep` makes ``step(1)`` continue the decay at
    global iteration ``offset + 1`` instead of restarting at the
    schedule's (largest) first step -- for the MLlib default that
    restart would be a full ``beta/sqrt(1)`` step capable of undoing
    hundreds of iterations of progress.
    """

    def __init__(self, base, offset):
        if offset < 0:
            raise PlanError("iteration offset must be >= 0")
        self.base = make_step_size(base)
        self.offset = int(offset)
        self.name = f"{self.base.name} @+{self.offset}"

    def step(self, i):
        return self.base.step(i + self.offset)


def with_offset(spec, offset=0) -> StepSize:
    """Schedule for a resumed segment: ``spec`` shifted by ``offset``.

    ``offset=0`` returns the plain schedule (no wrapper in the fresh
    path); an already-wrapped schedule composes (offsets add).
    """
    base = make_step_size(spec)
    if not offset:
        return base
    if isinstance(base, OffsetStep):
        return OffsetStep(base.base, base.offset + int(offset))
    return OffsetStep(base, offset)


_FACTORIES = {
    "constant": ConstantStep,
    "inv_sqrt": InverseSqrtStep,
    "1/sqrt(i)": InverseSqrtStep,
    "inv": InverseStep,
    "1/i": InverseStep,
    "inv_sq": InverseSquaredStep,
    "1/i^2": InverseSquaredStep,
}


def make_step_size(spec=1.0):
    """Build a step schedule from a flexible spec.

    * a number       -> MLlib schedule ``beta/sqrt(i)`` with that beta
      (this is what the language's ``step 1`` means);
    * a `StepSize`   -> returned unchanged;
    * a name         -> one of constant / inv_sqrt / inv / inv_sq, with
      an optional ``name:beta`` suffix (e.g. ``"1/i:0.5"``).
    """
    if isinstance(spec, StepSize):
        return spec
    if isinstance(spec, (int, float)):
        return InverseSqrtStep(beta=float(spec))
    if isinstance(spec, str):
        name, _, beta_str = spec.partition(":")
        name = name.strip().lower()
        if name not in _FACTORIES:
            raise PlanError(
                f"unknown step-size schedule {name!r}; expected one of "
                f"{sorted(set(_FACTORIES))}"
            )
        beta = float(beta_str) if beta_str else 1.0
        return _FACTORIES[name](beta)
    raise PlanError(f"cannot build a step size from {spec!r}")
