"""Uniform access to the GD algorithm zoo.

The paper's search space "is fully parameterized based on the number of GD
algorithms ... there could be tens of GD algorithms that the user might
want to evaluate" (Section 6).  This registry is that parameterization
point: the three fundamental variants the optimizer enumerates by default
(BGD / MGD / SGD), plus the Appendix C accelerations (SVRG, line search)
and adaptive-direction variants as extensions.
"""

from __future__ import annotations

import dataclasses

from repro.errors import PlanError
from repro.gd.base import (
    AdaGradUpdater,
    AdamUpdater,
    MomentumUpdater,
    make_minibatch_selector,
    full_batch_selector,
    run_loop,
)
from repro.gd.line_search import backtracking_bgd
from repro.gd.svrg import svrg


@dataclasses.dataclass(frozen=True)
class AlgorithmInfo:
    """Descriptor of one registered GD algorithm."""

    name: str
    #: None -> full batch; 1 -> single sample; other -> default mini-batch.
    default_batch_size: int | None
    #: Whether the algorithm reads a per-iteration sample (enables the
    #: Sample operator and the lazy-transformation/data-skipping plans).
    stochastic: bool
    description: str


ALGORITHMS = {
    "bgd": AlgorithmInfo("bgd", None, False, "batch gradient descent"),
    "mgd": AlgorithmInfo("mgd", 1000, True, "mini-batch gradient descent"),
    "sgd": AlgorithmInfo("sgd", 1, True, "stochastic gradient descent"),
    "svrg": AlgorithmInfo(
        "svrg", 1, True, "stochastic variance-reduced gradient (Appendix C)"
    ),
    "line_search": AlgorithmInfo(
        "line_search", None, False, "BGD with backtracking line search"
    ),
    "momentum": AlgorithmInfo("momentum", 1000, True, "MGD with Polyak momentum"),
    "adagrad": AlgorithmInfo("adagrad", 1000, True, "MGD with AdaGrad scaling"),
    "adam": AlgorithmInfo("adam", 1000, True, "MGD with Adam direction"),
}

#: The variants the cost-based optimizer enumerates by default (Figure 5).
CORE_ALGORITHMS = ("bgd", "mgd", "sgd")


def info(name) -> AlgorithmInfo:
    try:
        return ALGORITHMS[name]
    except KeyError:
        raise PlanError(
            f"unknown GD algorithm {name!r}; expected one of {sorted(ALGORITHMS)}"
        ) from None


def updater_for(name):
    """Direction updater for adaptive variants (None for vanilla GD)."""
    if name == "momentum":
        return MomentumUpdater()
    if name == "adagrad":
        return AdaGradUpdater()
    if name == "adam":
        return AdamUpdater()
    return None


def run(name, X, y, gradient, batch_size=None, **kwargs):
    """Run any registered algorithm on in-memory data (pure math).

    ``kwargs`` are forwarded to the underlying driver (``step_size``,
    ``tolerance``, ``max_iter``, ``rng``, ``time_budget_s``, ...).
    """
    algo = info(name)
    if name == "svrg":
        kwargs = {k: v for k, v in kwargs.items()
                  if k not in ("updater", "record_loss")}
        return svrg(X, y, gradient, **kwargs)
    if name == "line_search":
        kwargs = {k: v for k, v in kwargs.items()
                  if k not in ("rng", "updater", "step_size",
                               "record_loss", "iteration_callback")}
        return backtracking_bgd(X, y, gradient, **kwargs)

    if algo.default_batch_size is None:
        selector = full_batch_selector
    elif name == "sgd":
        # SGD is single-sample by definition; a batch_size override would
        # silently turn it into MGD.
        selector = make_minibatch_selector(X.shape[0], 1)
    else:
        size = batch_size if batch_size is not None else algo.default_batch_size
        selector = make_minibatch_selector(X.shape[0], size)
    updater = updater_for(name)
    if updater is not None:
        kwargs = dict(kwargs)
        kwargs["updater"] = updater
    return run_loop(X, y, gradient, selector, **kwargs)
