"""Uniform access to the GD algorithm zoo.

The paper's search space "is fully parameterized based on the number of GD
algorithms ... there could be tens of GD algorithms that the user might
want to evaluate" (Section 6).  This registry is that parameterization
point: every algorithm -- the three fundamental variants the optimizer
enumerates by default (BGD / MGD / SGD), the Appendix C accelerations
(SVRG, line search), the adaptive-direction variants, and any plugin
registered at runtime -- is one :class:`~repro.gd.spec.AlgorithmSpec`,
and every layer of the system (driver dispatch, operator construction,
state transfer, costing, speculation, plan enumeration) consults the
spec instead of branching on the algorithm's name.

:func:`register` is the plugin entry point; ``repro.gd.grad_avg`` and
``repro.gd.arc`` register themselves through it at import time.
"""

from __future__ import annotations

import logging

from repro.errors import PlanError
from repro.gd.base import (
    AdaGradUpdater,
    AdamUpdater,
    MomentumUpdater,
    make_minibatch_selector,
    full_batch_selector,
    run_loop,
)
from repro.gd.line_search import backtracking_bgd
from repro.gd.spec import RUN_LOOP_KWARGS, AlgorithmSpec, CostTerms
from repro.gd.svrg import svrg

#: Legacy name of the descriptor type; the spec *is* the descriptor (its
#: first four fields are the historical AlgorithmInfo, in order).
AlgorithmInfo = AlgorithmSpec

log = logging.getLogger("repro.gd")


# ---------------------------------------------------------------------------
# built-in operator factories / transfer hooks
# ---------------------------------------------------------------------------

def _svrg_operator_factory(d, training, plan, iteration_offset=0):
    """SVRG's executor bundle (lazy import keeps gd -> core acyclic)."""
    from repro.core.reference_ops import svrg_operators

    return svrg_operators(
        d=d,
        gradient=training.gradient(),
        tolerance=training.tolerance,
        max_iter=training.max_iter,
        convergence=training.convergence,
        iteration_offset=iteration_offset,
    )


def _svrg_transfer(payload, target_algorithm, notes):
    """Cross-plan policy: anchors never survive a switch."""
    notes.append("svrg anchor dropped: anchor and mu are "
                 "recomputed on segment entry")
    return None


ALGORITHMS = {}


def spec_for_namespace(namespace):
    """The spec owning one ``algorithm_state`` namespace, or None."""
    for spec in ALGORITHMS.values():
        if spec.state_namespace == namespace:
            return spec
    return None


def register(spec, replace=False) -> AlgorithmSpec:
    """Register one :class:`AlgorithmSpec`; returns it for chaining.

    ``replace=True`` allows re-registering an existing name (tests,
    notebooks); otherwise a duplicate name -- or a duplicate
    ``state_namespace`` claimed by a different algorithm -- is refused.
    """
    if not isinstance(spec, AlgorithmSpec):
        raise PlanError(
            f"register() takes an AlgorithmSpec, not {type(spec).__name__}"
        )
    if spec.name in ALGORITHMS and not replace:
        raise PlanError(
            f"GD algorithm {spec.name!r} is already registered; pass "
            "replace=True to override it"
        )
    if spec.state_namespace is not None:
        owner = spec_for_namespace(spec.state_namespace)
        if owner is not None and owner.name != spec.name:
            raise PlanError(
                f"state namespace {spec.state_namespace!r} is already "
                f"owned by algorithm {owner.name!r}"
            )
    ALGORITHMS[spec.name] = spec
    return spec


register(AlgorithmSpec("bgd", None, False, "batch gradient descent"))
register(AlgorithmSpec("mgd", 1000, True, "mini-batch gradient descent"))
register(AlgorithmSpec(
    "sgd", 1, True, "stochastic gradient descent",
    # SGD is single-sample by definition; a batch_size override would
    # silently turn it into MGD.
    batch_size_fixed=True,
))
register(AlgorithmSpec(
    "svrg", 1, True, "stochastic variance-reduced gradient (Appendix C)",
    driver=svrg,
    accepted_kwargs=frozenset({
        "update_frequency", "step_size", "tolerance", "max_iter",
        "convergence", "w0", "rng", "time_budget_s", "iteration_callback",
        "state", "state_every", "state_callback",
    }),
    batch_size_fixed=True,
    make_operators=_svrg_operator_factory,
    state_namespace="svrg",
    transfer_state=_svrg_transfer,
))
register(AlgorithmSpec(
    "line_search", None, False, "BGD with backtracking line search",
    driver=backtracking_bgd,
    # No ``iteration_callback`` / ``rng``: line search is deterministic
    # full-batch and cannot stream per-iteration errors, which is why
    # the speculation estimator refuses it (too few observations).
    accepted_kwargs=frozenset({
        "alpha0", "beta", "c", "max_backtracks", "tolerance", "max_iter",
        "convergence", "w0", "time_budget_s",
    }),
    supports_executor=False,
))
register(AlgorithmSpec(
    "momentum", 1000, True, "MGD with Polyak momentum",
    make_updater=MomentumUpdater,
))
register(AlgorithmSpec(
    "adagrad", 1000, True, "MGD with AdaGrad scaling",
    make_updater=AdaGradUpdater,
))
register(AlgorithmSpec(
    "adam", 1000, True, "MGD with Adam direction",
    make_updater=AdamUpdater,
))

#: The variants the cost-based optimizer enumerates by default (Figure 5).
CORE_ALGORITHMS = ("bgd", "mgd", "sgd")


def info(name) -> AlgorithmSpec:
    try:
        return ALGORITHMS[name]
    except KeyError:
        raise PlanError(
            f"unknown GD algorithm {name!r}; expected one of {sorted(ALGORITHMS)}"
        ) from None


def updater_for(name):
    """Direction updater for adaptive variants (None for vanilla GD)."""
    spec = ALGORITHMS.get(name)
    if spec is None or spec.make_updater is None:
        return None
    return spec.make_updater()


def cost_terms(name) -> CostTerms:
    """The algorithm's cost-model correction terms (identity by default)."""
    return info(name).cost


def speculation_overrides(name) -> dict:
    """Per-algorithm SpeculationSettings field overrides ({} = none)."""
    return info(name).speculation_overrides


def selector_for(name, n, batch_size=None):
    """The :func:`run_loop` batch selector a generic algorithm uses."""
    spec = info(name)
    if spec.default_batch_size is None:
        return full_batch_selector
    if spec.batch_size_fixed:
        return make_minibatch_selector(n, spec.default_batch_size)
    size = batch_size if batch_size is not None else spec.default_batch_size
    return make_minibatch_selector(n, size)


def batch_overrides(batch) -> dict:
    """Per-algorithm batch_sizes for a user-requested mini-batch size.

    A ``batch=`` request applies to every registered algorithm that
    actually takes a tunable mini-batch (``default_batch_size`` set and
    not ``batch_size_fixed``); full-batch algorithms and fixed-batch
    ones (SGD's single sample, SVRG/Arc inner loops) keep their
    semantics.  Returns ``{}`` for ``batch=None``.
    """
    if batch is None:
        return {}
    return {
        name: int(batch)
        for name, spec in ALGORITHMS.items()
        if spec.default_batch_size is not None and not spec.batch_size_fixed
    }


def make_operators(plan, d, training, iteration_offset=0):
    """Build the executor operator bundle for one plan via its spec."""
    spec = info(plan.algorithm)
    if spec.make_operators is not None:
        return spec.make_operators(
            d=d, training=training, plan=plan,
            iteration_offset=iteration_offset,
        )
    from repro.core.reference_ops import default_operators

    return default_operators(
        d=d,
        gradient=training.gradient(),
        batch_size=plan.effective_batch_size,
        step_size=training.step_size,
        tolerance=training.tolerance,
        max_iter=training.max_iter,
        convergence=training.convergence,
        updater=updater_for(plan.algorithm),
        iteration_offset=iteration_offset,
    )


def _filter_kwargs(spec, kwargs) -> dict:
    """Drop kwargs the algorithm does not accept, loudly.

    The registry used to strip unsupported kwargs silently (an
    ``updater=`` handed to SVRG simply vanished); now every spec
    declares its accepted set and anything outside it is dropped with a
    structured ``repro.gd`` WARNING naming the casualties.
    """
    accepted = spec.accepted_kwargs
    if accepted is None:
        accepted = RUN_LOOP_KWARGS
    dropped = sorted(set(kwargs) - accepted)
    if not dropped:
        return kwargs
    log.warning(
        "algorithm %s does not accept %s; dropping",
        spec.name, ", ".join(dropped),
        extra={"algorithm": spec.name, "dropped_kwargs": dropped},
    )
    return {k: v for k, v in kwargs.items() if k in accepted}


def run(name, X, y, gradient, batch_size=None, **kwargs):
    """Run any registered algorithm on in-memory data (pure math).

    ``kwargs`` are forwarded to the underlying driver (``step_size``,
    ``tolerance``, ``max_iter``, ``rng``, ``time_budget_s``, ...) after
    filtering against the spec's ``accepted_kwargs`` (dropped keys are
    logged as a ``repro.gd`` WARNING).
    """
    spec = info(name)
    kwargs = _filter_kwargs(spec, kwargs)
    if spec.driver is not None:
        return spec.driver(X, y, gradient, **kwargs)

    selector = selector_for(name, X.shape[0], batch_size)
    updater = updater_for(name)
    if updater is not None:
        kwargs = dict(kwargs)
        kwargs["updater"] = updater
    return run_loop(X, y, gradient, selector, **kwargs)
