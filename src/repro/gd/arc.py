"""Phase-aware Arc GD (arXiv 2512.06737), as a pure registry plugin.

Arc GD runs stochastic GD in two phases separated by a gradient-norm
arc.  Every ``probe_every`` iterations it takes a *full-batch* gradient
probe; the first probe's norm becomes the baseline ``norm0``, and once a
probe's norm falls to ``switch_threshold * norm0`` the algorithm
switches from phase 1 (constant step, fast descent through the
high-gradient region) to phase 2 (``alpha / sqrt(t - t_switch + 1)``
decay, annealing into the flat region).  Probe iterations are
productive -- they step along the full gradient, like SVRG's anchor
passes -- so the probes buy both the phase signal and a variance-free
step.

The module registers the algorithm end-to-end through the
:class:`~repro.gd.spec.AlgorithmSpec` seams and nothing else:

* a pure-math ``driver`` for :func:`repro.gd.registry.run` (used by
  speculation and the baselines),
* a ``make_operators`` factory so the plan executor runs it with real
  cluster accounting (probes priced as full-batch passes via the
  ``full_batch_when`` hook),
* a ``state_namespace`` + export/import hooks + ``transfer_state``
  policy, making stop/resume bit-identical and plan switches honest,
* ``CostTerms(full_pass_fraction=1/probe_every)`` so the optimizer
  prices the periodic full passes.
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import PlanError
from repro.gd.base import GDRunResult
from repro.gd.convergence import make_convergence
from repro.gd.registry import register
from repro.gd.spec import AlgorithmSpec, CostTerms
from repro.gd.state import OptimizerState, capture_rng, restore_rng

#: Default cadence of full-batch gradient probes.
DEFAULT_PROBE_EVERY = 20
#: Default phase-switch threshold on the probed gradient norm.
DEFAULT_SWITCH_THRESHOLD = 0.5


def arc_is_probe(i, last_probe, m):
    """Whether global iteration ``i`` is a full-batch probe.

    Mirrors SVRG's anchor cadence: the *global* iteration of the last
    probe is the cursor, so resumed segments keep the probe schedule,
    and a segment entered without Arc state probes immediately.
    """
    return last_probe is None or i - last_probe >= m


def _step(base, phase, gi, switched_at) -> float:
    if phase == 1:
        return base
    return base / np.sqrt(gi - switched_at + 1)


def arc(
    X,
    y,
    gradient,
    probe_every=DEFAULT_PROBE_EVERY,
    step_size=0.05,
    switch_threshold=DEFAULT_SWITCH_THRESHOLD,
    tolerance=1e-3,
    max_iter=1000,
    convergence="l1",
    w0=None,
    rng=None,
    time_budget_s=None,
    iteration_callback=None,
    state=None,
    state_every=None,
    state_callback=None,
):
    """Run Arc GD; returns :class:`~repro.gd.base.GDRunResult`.

    ``step_size`` is the phase-1 constant (and the phase-2 numerator);
    like SVRG, a number means a *constant* step here.  Resume semantics
    match :func:`~repro.gd.svrg.svrg`: the exported
    :class:`~repro.gd.state.OptimizerState` carries the phase, the
    gradient-norm baseline, the switch iteration and the probe cursor
    under the ``"arc"`` namespace, so ``run(N) == run(k) -> snapshot ->
    resume(N - k)`` bit-identically; a resume without Arc state (after a
    cross-algorithm switch) re-probes and re-baselines immediately.
    Convergence always wins over ``iteration_callback`` stops.
    """
    n, d = X.shape
    if n == 0:
        raise PlanError("cannot train on an empty dataset")
    if probe_every < 2:
        raise PlanError("probe_every must be >= 2")
    if not 0.0 < switch_threshold < 1.0:
        raise PlanError("switch_threshold must be in (0, 1)")
    rng = rng if rng is not None else np.random.default_rng(0)
    base = float(step_size)
    criterion = make_convergence(convergence)

    w = np.zeros(d) if w0 is None else np.asarray(w0, dtype=float).copy()
    phase = 1
    norm0 = None
    switched_at = None
    last_probe = None
    offset = 0
    if state is not None:
        offset = int(state.iteration_offset)
        restore_rng(rng, state.rng_state)
        payload = state.algorithm_state.get("arc")
        if payload is not None:
            phase = int(payload["phase"])
            norm0 = payload.get("norm0")
            switched_at = payload.get("switched_at")
            last_probe = payload.get("last_probe")

    def snapshot(completed) -> OptimizerState:
        return OptimizerState(
            iteration_offset=offset + completed,
            algorithm_state={"arc": {
                "phase": phase,
                "norm0": norm0,
                "switched_at": switched_at,
                "last_probe": last_probe,
            }},
            rng_state=capture_rng(rng),
        )

    deltas = []
    converged = False
    start = time.perf_counter()
    iterations = 0

    for t in range(1, max_iter + 1):
        gt = offset + t
        if arc_is_probe(gt, last_probe, probe_every):
            g = gradient.gradient(w, X, y)
            last_probe = gt
            norm = float(np.linalg.norm(g))
            if norm0 is None:
                norm0 = norm
            elif phase == 1 and norm <= switch_threshold * norm0:
                phase = 2
                switched_at = gt
        else:
            i = int(rng.integers(0, n))
            g = gradient.gradient(w, X[i:i + 1], y[i:i + 1])
        w_new = w - _step(base, phase, gt, switched_at) * g

        delta = criterion.delta(w, w_new)
        w = w_new
        deltas.append(delta)
        iterations = t
        stop_requested = (
            iteration_callback is not None
            and iteration_callback(t, w, delta)
        )
        if delta < tolerance:
            converged = True
            break
        if stop_requested:
            break
        if time_budget_s is not None and time.perf_counter() - start > time_budget_s:
            break
        if (state_every is not None and state_callback is not None
                and t < max_iter
                and (offset + t) % state_every == 0):
            state_callback(offset + t, w.copy(), snapshot(t))

    return GDRunResult(
        weights=w,
        iterations=iterations,
        converged=converged,
        deltas=np.asarray(deltas),
        elapsed_s=time.perf_counter() - start,
        state=snapshot(iterations),
    )


# ---------------------------------------------------------------------------
# executor operator bundle
# ---------------------------------------------------------------------------

_OPERATOR_CLASSES = None


def _operator_classes():
    """Build the Arc operator classes on first use.

    Deferred so importing :mod:`repro.gd` (which registers this plugin)
    never pulls :mod:`repro.core` in -- the same acyclic-import rule the
    registry's own SVRG factory follows.
    """
    global _OPERATOR_CLASSES
    if _OPERATOR_CLASSES is not None:
        return _OPERATOR_CLASSES

    from repro.core.operators import Compute, Update
    from repro.core.reference_ops import DefaultStage

    class ArcStage(DefaultStage):
        """Stage: also initialise the phase machinery in the context."""

        def stage(self, context, data_sample=None):
            out = super().stage(context, data_sample)
            context.put("arc_phase", 1)
            context.put("arc_norm0", None)
            context.put("arc_switched_at", None)
            context.put("arc_last_probe", None)
            return out

    class ArcCompute(Compute):
        """Sum-partials gradient; probes tagged like SVRG anchors."""

        def __init__(self, gradient, probe_every):
            self.gradient = gradient
            self.m = int(probe_every)

        def _is_probe(self, context):
            gi = context.require("iter") + context.get("iteration_offset", 0)
            return arc_is_probe(
                gi, context.get("arc_last_probe"), self.m
            )

        def compute(self, X, y, context):
            w = context.require("weights")
            n = X.shape[0]
            grad = self.gradient.gradient(w, X, y)
            return grad * n, n, self._is_probe(context)

        def combine(self, a, b):
            return a[0] + b[0], a[1] + b[1], a[2] and b[2]

    class ArcUpdate(Update):
        """Phase bookkeeping + the two-phase step rule."""

        def __init__(self, base_step, switch_threshold):
            self.base = float(base_step)
            self.threshold = float(switch_threshold)

        def update(self, aggregated, context):
            grad_sum, count, is_probe = aggregated
            if count <= 0:
                raise PlanError("Update received an empty aggregate")
            w = context.require("weights")
            gi = context.require("iter") + context.get("iteration_offset", 0)
            g = grad_sum / count
            if is_probe:
                context.put("arc_last_probe", gi)
                norm = float(np.linalg.norm(g))
                if context.get("arc_norm0") is None:
                    context.put("arc_norm0", norm)
                elif (context.get("arc_phase") == 1
                        and norm <= self.threshold * context.get("arc_norm0")):
                    context.put("arc_phase", 2)
                    context.put("arc_switched_at", gi)
            alpha = _step(
                self.base, context.get("arc_phase"), gi,
                context.get("arc_switched_at"),
            )
            w_new = w - alpha * g
            context.put("weights", w_new)
            return w_new

    _OPERATOR_CLASSES = (ArcStage, ArcCompute, ArcUpdate)
    return _OPERATOR_CLASSES


_STATE_KEYS = ("phase", "norm0", "switched_at", "last_probe")


def make_arc_operators(d, training, plan, iteration_offset=0):
    """Arc GD as a GDOperators bundle (plan shape of SGD, probes aside)."""
    from repro.core.operators import GDOperators
    from repro.core.reference_ops import (
        FixedSizeSample,
        L1Converge,
        ParseTransform,
        ToleranceLoop,
    )

    ArcStage, ArcCompute, ArcUpdate = _operator_classes()
    m = DEFAULT_PROBE_EVERY
    ops = GDOperators(
        transform=ParseTransform(),
        stage=ArcStage(d, training.step_size, training.tolerance,
                       training.max_iter, iteration_offset=iteration_offset),
        compute=ArcCompute(training.gradient(), m),
        update=ArcUpdate(0.05, DEFAULT_SWITCH_THRESHOLD),
        sample=FixedSizeSample(1),
        converge=L1Converge(training.convergence),
        loop=ToleranceLoop(),
    )
    ops.state_namespace = "arc"

    def full_batch_when(i, context):
        gi = i + context.get("iteration_offset", 0)
        return arc_is_probe(gi, context.get("arc_last_probe"), m)

    def export_algorithm_state(context):
        if "arc_phase" not in context:
            return None
        return {key: context.get(f"arc_{key}") for key in _STATE_KEYS}

    def import_algorithm_state(context, payload):
        if "arc_phase" not in context:
            return
        for key in _STATE_KEYS:
            context.put(f"arc_{key}", payload.get(key))

    ops.full_batch_when = full_batch_when
    ops.export_algorithm_state = export_algorithm_state
    ops.import_algorithm_state = import_algorithm_state
    return ops


def _arc_transfer(payload, target_algorithm, notes):
    """Cross-plan policy: the norm baseline is plan-specific; re-probe."""
    notes.append("arc phase dropped: gradient-norm baseline is re-probed "
                 "on segment entry")
    return None


register(AlgorithmSpec(
    "arc", 1, True,
    "phase-aware Arc GD with full-batch gradient probes (arXiv 2512.06737)",
    driver=arc,
    accepted_kwargs=frozenset({
        "probe_every", "step_size", "switch_threshold", "tolerance",
        "max_iter", "convergence", "w0", "rng", "time_budget_s",
        "iteration_callback", "state", "state_every", "state_callback",
    }),
    batch_size_fixed=True,
    make_operators=make_arc_operators,
    state_namespace="arc",
    transfer_state=_arc_transfer,
    cost=CostTerms(full_pass_fraction=1.0 / DEFAULT_PROBE_EVERY),
))
