"""Stochastic gradient descent (SGD).

"This algorithm takes a single random sample r from the data set for
approximation ... the cost of each iteration is O(1), i.e., completely
independent of the size of the data." (Section 2)
"""

from __future__ import annotations

from repro.gd.base import make_minibatch_selector, run_loop


def sgd(X, y, gradient, **kwargs):
    """Run SGD (mini-batch of size 1); options as in :func:`run_loop`."""
    selector = make_minibatch_selector(X.shape[0], batch_size=1)
    return run_loop(X, y, gradient, selector, **kwargs)
