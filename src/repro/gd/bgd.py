"""Batch gradient descent (BGD).

"This algorithm keeps the term as it is, i.e., no approximation is carried
out ... each iteration of the GD algorithm requires a complete pass over
the data set." (Section 2)
"""

from __future__ import annotations

from repro.gd.base import full_batch_selector, run_loop


def bgd(X, y, gradient, **kwargs):
    """Run batch GD; accepts the keyword options of :func:`run_loop`."""
    return run_loop(X, y, gradient, full_batch_selector, **kwargs)
