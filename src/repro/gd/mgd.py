"""Mini-batch gradient descent (MGD).

"A hybrid approach where a small sample of size b is randomly selected
from the dataset to estimate the gradient ... MGD is also stochastic and
independent of the dataset size." (Section 2)
"""

from __future__ import annotations

from repro.gd.base import make_minibatch_selector, run_loop


def mgd(X, y, gradient, batch_size=1000, **kwargs):
    """Run MGD with the given batch size; options as in :func:`run_loop`."""
    selector = make_minibatch_selector(X.shape[0], batch_size=batch_size)
    return run_loop(X, y, gradient, selector, **kwargs)
