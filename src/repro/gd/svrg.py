"""Stochastic variance-reduced gradient (SVRG), Appendix C / Algorithm 2.

SVRG mixes BGD with SGD: every ``update_frequency`` iterations it computes
a full-batch gradient ``mu`` at an anchor point ``w_bar``, and in between
it takes SGD steps whose variance is reduced by the control variate
``grad_i(w) - grad_i(w_bar) + mu``.  The paper expresses it in the
seven-operator abstraction by "flattening" the nested loops with an
if-else on the iteration counter (Listing 8); this module is the pure-math
equivalent with exactly that flattened structure.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.errors import PlanError
from repro.gd.base import GDRunResult
from repro.gd.convergence import make_convergence
from repro.gd.state import OptimizerState, capture_rng, restore_rng
from repro.gd.step_size import make_step_size, with_offset


def svrg(
    X,
    y,
    gradient,
    update_frequency=50,
    step_size=0.05,
    tolerance=1e-3,
    max_iter=1000,
    convergence="l1",
    w0=None,
    rng=None,
    time_budget_s=None,
    iteration_callback=None,
    state=None,
    state_every=None,
    state_callback=None,
):
    """Run SVRG; returns :class:`~repro.gd.base.GDRunResult`.

    ``step_size`` defaults to a constant (SVRG's analysis assumes one);
    any schedule accepted by :func:`~repro.gd.step_size.make_step_size`
    works.  Note a *number* is interpreted as a constant step here, unlike
    the MLlib-style default elsewhere, matching [15]'s usage.

    Anchor cadence is tracked as the *global* iteration of the last
    anchor pass (every ``update_frequency`` global iterations), so a run
    resumed from an exported :class:`~repro.gd.state.OptimizerState`
    (``state=``, with ``w0`` set to the stopped run's weights) keeps the
    anchor schedule, ``w_bar``/``mu`` and the RNG stream -- bit-identical
    to the uninterrupted run.  A resume *without* SVRG state (e.g. after
    a cross-algorithm plan switch) recomputes the anchor immediately:
    the first iteration is a full-batch anchor pass at the carried
    weights.  Convergence always wins over ``iteration_callback`` stops,
    matching :class:`~repro.core.executor.PlanExecutor`.

    ``state_every``/``state_callback`` export mid-run snapshots on a
    global-iteration cadence without perturbing the run (see
    :func:`~repro.gd.base.run_loop`); the snapshots carry the anchor
    state, so resuming from one *inside* an epoch keeps ``w_bar``,
    ``mu`` and the anchor cadence -- no early re-anchor.
    """
    n, d = X.shape
    if n == 0:
        raise PlanError("cannot train on an empty dataset")
    if update_frequency < 2:
        raise PlanError("update_frequency must be >= 2")
    rng = rng if rng is not None else np.random.default_rng(0)
    if isinstance(step_size, (int, float)):
        step = make_step_size(f"constant:{step_size}")
    else:
        step = make_step_size(step_size)
    criterion = make_convergence(convergence)

    w = np.zeros(d) if w0 is None else np.asarray(w0, dtype=float).copy()
    w_bar = w.copy()
    mu = np.zeros(d)
    last_anchor = None
    offset = 0
    if state is not None:
        offset = int(state.iteration_offset)
        restore_rng(rng, state.rng_state)
        if state.svrg is not None:
            w_bar = np.asarray(state.svrg["w_bar"], dtype=float)
            mu = np.asarray(state.svrg["mu"], dtype=float)
            last_anchor = state.svrg.get("last_anchor")
    step = with_offset(step, offset)

    def snapshot(completed) -> OptimizerState:
        return OptimizerState(
            iteration_offset=offset + completed,
            algorithm_state={"svrg": {
                "w_bar": w_bar.tolist(),
                "mu": mu.tolist(),
                "last_anchor": last_anchor,
            }},
            rng_state=capture_rng(rng),
        )

    deltas = []
    converged = False
    start = time.perf_counter()
    iterations = 0

    for t in range(1, max_iter + 1):
        alpha = step.step(t)
        gt = offset + t
        if last_anchor is None or gt - last_anchor >= update_frequency:
            # Anchor iteration: full-batch gradient at the new anchor.
            w_bar = w.copy()
            mu = gradient.gradient(w_bar, X, y)
            last_anchor = gt
            w_new = w - alpha * mu
        else:
            i = int(rng.integers(0, n))
            Xi, yi = X[i:i + 1], y[i:i + 1]
            g_w = gradient.gradient(w, Xi, yi)
            g_bar = gradient.gradient(w_bar, Xi, yi)
            w_new = w - alpha * (g_w - g_bar + mu)

        delta = criterion.delta(w, w_new)
        w = w_new
        deltas.append(delta)
        iterations = t
        stop_requested = (
            iteration_callback is not None
            and iteration_callback(t, w, delta)
        )
        if delta < tolerance:
            converged = True
            break
        if stop_requested:
            break
        if time_budget_s is not None and time.perf_counter() - start > time_budget_s:
            break
        if (state_every is not None and state_callback is not None
                and t < max_iter
                and (offset + t) % state_every == 0):
            state_callback(offset + t, w.copy(), snapshot(t))

    return GDRunResult(
        weights=w,
        iterations=iterations,
        converged=converged,
        deltas=np.asarray(deltas),
        elapsed_s=time.perf_counter() - start,
        state=snapshot(iterations),
    )
