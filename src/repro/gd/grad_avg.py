"""Gradient-averaging GD (arXiv 2012.02387), as a pure registry plugin.

The variant keeps a running average of *every* stochastic gradient seen
so far and steps along that average instead of the latest draw:

    g_bar_i = ((i - 1) g_bar_{i-1} + grad_i) / i
    w_{i+1} = w_i - alpha_i * g_bar_i

Averaging damps the sampling noise of MGD/SGD without the anchor passes
of SVRG, at the price of one extra weight-sized vector op per iteration
(tracked by the spec's ``extra_update_cost_factor`` so the cost-based
optimizer prices it honestly) and a direction that reacts slowly once
the iterate leaves the early high-noise regime.

Everything else -- the run loop, the plan executor, speculation, state
carry-over, checkpointing, adaptive switching -- is inherited from the
registered spec: this module defines an :class:`~repro.gd.base.Updater`
and one :func:`~repro.gd.registry.register` call, nothing more.
"""

from __future__ import annotations

import numpy as np

from repro.gd.base import Updater
from repro.gd.registry import register
from repro.gd.spec import AlgorithmSpec, CostTerms


class GradientAveragingUpdater(Updater):
    """Direction = running mean of all gradients observed so far.

    The buffers (gradient sum + draw count) snapshot/restore exactly --
    float sums JSON-round-trip bit-for-bit -- so stop/resume keeps the
    average's full history, which is what makes the resume-equivalence
    contract hold for this algorithm.
    """

    name = "grad_avg"

    def __init__(self):
        self._sum = None
        self._count = 0

    def reset(self, d):
        self._sum = np.zeros(d)
        self._count = 0

    def direction(self, grad, i):
        self._sum = self._sum + grad
        self._count += 1
        return self._sum / self._count

    def state_dict(self):
        if self._sum is None:
            return {}
        return {"g_sum": self._sum.tolist(), "count": self._count}

    def load_state(self, buffers):
        if "g_sum" in buffers:
            self._sum = np.asarray(buffers["g_sum"], dtype=float)
        if "count" in buffers:
            self._count = int(buffers["count"])


register(AlgorithmSpec(
    "grad_avg", 1000, True,
    "MGD stepping along the running gradient average (arXiv 2012.02387)",
    make_updater=GradientAveragingUpdater,
    # One extra weight-sized vector op per iteration: maintaining the
    # running sum alongside the plain update.
    cost=CostTerms(extra_update_cost_factor=1.0),
))
