"""The :class:`OptimizerState`: everything a GD run is besides its weights.

The paper's premise for cheap mid-flight plan switches is that "the model
state survives" the switch -- but the model state is more than the weight
vector.  The MLlib step schedule ``beta/sqrt(i)`` has a *position*;
momentum/AdaGrad/Adam keep direction buffers; Adam's bias correction
depends on the global iteration count; SVRG owns an anchor point and its
full-batch gradient; the sampler and the driver RNG have streams mid-way
through.  Restarting any of these at a switch silently re-runs the early,
large-step regime of the schedule -- a giant ``beta/sqrt(1)`` step that
can undo hundreds of iterations of progress and poisons the telemetry the
calibration loop learns from.

:class:`OptimizerState` is the JSON-round-trippable snapshot of all of
it.  :func:`~repro.gd.base.run_loop`, :func:`~repro.gd.svrg.svrg` and
:class:`~repro.core.executor.PlanExecutor` export one on every exit
(graceful stops included) and import one on resume, so

    run(N iterations)  ==  run(k) -> snapshot -> resume(N - k)

holds **bit-identically** for same-algorithm segments.

**Cross-algorithm transfer policy** (:meth:`OptimizerState.transfer_to`),
applied by the adaptive trainer when a switch changes the plan:

* the **iteration offset always carries** -- the schedule position is part
  of the optimizer's state, not a per-plan detail: a resumed segment
  continues at global iteration ``k + 1``, never restarts at 1;
* **updater buffers carry when the target updater matches** the one that
  wrote them, and are dropped with a recorded ``state_transfer`` note
  otherwise (an AdaGrad accumulator means nothing to Adam);
* **SVRG recomputes its anchor on segment entry** -- anchor/``mu`` are
  dropped so the first iteration of the new segment takes a fresh
  full-batch gradient at the carried weights;
* **sampler cursors are dropped** on a plan change (they are positions
  inside a specific plan's sampling strategy), while the **RNG stream
  carries** so a switched run never replays the sample sequence it
  already consumed.

The weight vector itself is *not* duplicated here: every caller already
carries it (``TrainResult.weights`` / ``initial_weights``).
"""

from __future__ import annotations

import dataclasses

from repro.errors import PlanError

#: Format version of one serialized OptimizerState snapshot.  Bump when
#: the payload shape changes incompatibly; readers refuse newer formats
#: (resume from an unreadable snapshot would be silently wrong).
#: Format history:
#:   1 -- flat ``svrg`` field for SVRG anchor state.
#:   2 -- namespaced ``algorithm_state`` dict keyed by each spec's
#:        ``state_namespace`` (format-1 ``svrg`` payloads migrate on read).
STATE_FORMAT = 2

#: Canonical updater name of vanilla (buffer-free) gradient descent.
VANILLA = "vanilla"


def known_fields(cls, payload) -> dict:
    """Subset of ``payload`` limited to ``cls``'s declared dataclass
    fields.

    The forward-compatibility rule shared by every JSON-round-tripped
    dataclass in the carry-over/trace stack: a payload written by a
    newer format must degrade to its readable subset on older-shaped
    readers, never raise ``TypeError`` at construction.
    """
    known = {f.name for f in dataclasses.fields(cls)}
    return {k: v for k, v in payload.items() if k in known}


def capture_rng(rng) -> dict | None:
    """JSON-serializable snapshot of a numpy Generator's stream position.

    The bit-generator state dict contains only strings and (arbitrary
    precision) ints, which JSON round-trips exactly.
    """
    if rng is None:
        return None
    return dict(rng.bit_generator.state)


def restore_rng(rng, payload) -> None:
    """Put ``rng`` exactly where :func:`capture_rng` observed it."""
    if payload is not None:
        rng.bit_generator.state = payload


@dataclasses.dataclass
class OptimizerState:
    """JSON-round-trippable snapshot of a GD run's non-weight state.

    All array-valued fields hold plain lists (not numpy arrays), so
    ``to_dict`` is a shallow affair and ``json.dumps`` works directly.
    """

    #: Global iterations already completed: a resumed segment's local
    #: iteration ``i`` runs the schedule/updater at ``offset + i``.
    iteration_offset: int = 0
    #: Canonical name of the updater that owns ``updater_buffers``
    #: (e.g. ``"momentum(0.9)"``, ``"adam"``, ``"vanilla"``).
    updater: str = VANILLA
    #: Updater buffers by buffer name (momentum velocity, AdaGrad
    #: accumulator, Adam moments), as nested float lists.
    updater_buffers: dict = dataclasses.field(default_factory=dict)
    #: Per-algorithm private state, keyed by each registered spec's
    #: ``state_namespace`` (e.g. ``{"svrg": {"w_bar": [...], "mu": [...],
    #: "last_anchor": int}}``).  Algorithms without private state never
    #: appear here; the owning spec's ``transfer_state`` hook decides
    #: what survives a plan switch.
    algorithm_state: dict = dataclasses.field(default_factory=dict)
    #: Convergence-criterion state (the reference Converge operator's
    #: previous-weights memory): ``{"previous": [...]}`` or None.
    convergence: dict | None = None
    #: numpy bit-generator state of the driver RNG (sample draws), or
    #: None when the run had no stochastic component.
    rng_state: dict | None = None
    #: Plan-specific sampler cursors (e.g. the shuffled-partition
    #: sampler's permutation + position), or None.
    sampler: dict | None = None
    #: Transfer-policy notes: what the last :meth:`transfer_to` carried
    #: and what it dropped (human-readable, recorded into the trace).
    notes: list = dataclasses.field(default_factory=list)

    #: Read-only view of the SVRG namespace, kept for callers written
    #: against format 1 (``state.svrg["last_anchor"]`` still works).
    @property
    def svrg(self) -> dict | None:
        return self.algorithm_state.get("svrg")

    # -- serialisation ---------------------------------------------------
    def to_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["state_format"] = STATE_FORMAT
        return payload

    @classmethod
    def from_dict(cls, payload) -> "OptimizerState":
        """Decode a snapshot; tolerant of unknown keys (newer writers may
        add fields), strict about newer format versions.  Format-1
        snapshots (flat ``svrg`` field) migrate into the namespaced
        ``algorithm_state`` shape on read."""
        fmt = payload.get("state_format", STATE_FORMAT)
        if fmt > STATE_FORMAT:
            raise PlanError(
                f"optimizer-state format {fmt} is newer than supported "
                f"{STATE_FORMAT}; refusing to resume from it"
            )
        data = known_fields(cls, payload)
        if "algorithm_state" not in payload and payload.get("svrg") is not None:
            data["algorithm_state"] = {"svrg": payload["svrg"]}
        return cls(**data)

    # -- transfer policy -------------------------------------------------
    def transfer_to(self, algorithm) -> "OptimizerState":
        """State to hand the next plan segment when the plan *changes*.

        Returns a new :class:`OptimizerState`; ``notes`` on the result
        records every carry/drop decision (the adaptive trainer writes
        them into the segment's ``state_transfer`` field).  Same-plan
        continuations should pass the state through untouched instead --
        this method implements the *cross-plan* policy.
        """
        # local imports: avoid a cycle (registry imports gd drivers)
        from repro.gd.registry import spec_for_namespace, updater_for

        target = updater_for(algorithm)
        target_name = target.name if target is not None else VANILLA
        notes = [f"iteration offset {self.iteration_offset} carried: "
                 f"schedule resumes at global iteration "
                 f"{self.iteration_offset + 1}"]

        buffers = {}
        if self.updater_buffers:
            if self.updater == target_name:
                buffers = self.updater_buffers
                notes.append(f"{self.updater} buffers carried "
                             f"(target updater matches)")
            else:
                notes.append(f"{self.updater} buffers dropped: target "
                             f"updater is {target_name}")
        carried_state = {}
        for namespace, payload in self.algorithm_state.items():
            if payload is None:
                continue
            owner = spec_for_namespace(namespace)
            if owner is not None and owner.transfer_state is not None:
                kept = owner.transfer_state(payload, algorithm, notes)
                if kept is not None:
                    carried_state[namespace] = kept
            else:
                notes.append(f"{namespace} state dropped on plan switch "
                             "(no transfer policy registered)")
        if self.sampler is not None:
            notes.append("sampler cursors dropped (plan-specific); "
                         "rng stream carried")
        return OptimizerState(
            iteration_offset=self.iteration_offset,
            updater=target_name,
            updater_buffers=buffers,
            algorithm_state=carried_state,
            convergence=self.convergence,
            rng_state=self.rng_state,
            sampler=None,
            notes=notes,
        )
