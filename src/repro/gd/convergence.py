"""Convergence criteria (the Converge operator's delta functions).

The paper's reference Converge implementation (Listing 5) accumulates
``delta += |w_j - w'_j|`` -- the **L1 norm** of the weight difference
between successive iterations -- and Loop stops when ``delta < tolerance``
(Listing 6).  The text also mentions the L2 norm as an alternative; both
are provided, with L1 as the default used throughout the experiments.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PlanError


class ConvergenceCriterion:
    """Interface: delta(w_old, w_new) -> float compared against tolerance."""

    name = "base"

    def delta(self, w_old, w_new) -> float:  # pragma: no cover - interface
        raise NotImplementedError


class L1WeightDelta(ConvergenceCriterion):
    """sum_j |w_j - w'_j| (Listing 5, the paper's reference Converge)."""

    name = "l1"

    def delta(self, w_old, w_new):
        return float(np.abs(w_new - w_old).sum())


class L2WeightDelta(ConvergenceCriterion):
    """||w - w'||_2 (the alternative mentioned in Section 4.3)."""

    name = "l2"

    def delta(self, w_old, w_new):
        return float(np.linalg.norm(w_new - w_old))


_CRITERIA = {
    "l1": L1WeightDelta,
    "l2": L2WeightDelta,
}


def make_convergence(spec="l1"):
    """Build a criterion from a name or pass through an instance."""
    if isinstance(spec, ConvergenceCriterion):
        return spec
    if isinstance(spec, str) and spec.lower() in _CRITERIA:
        return _CRITERIA[spec.lower()]()
    raise PlanError(
        f"unknown convergence criterion {spec!r}; expected one of "
        f"{sorted(_CRITERIA)}"
    )
