"""BGD with backtracking line search (Appendix C, Listings 9-10).

"Backtracking line search chooses the step size in each iteration of GD as
alpha_{k_i} = beta * alpha_{k_{i-1}} ... The iterations of the line search
repeat until f(w_k) - f(w_k - alpha_{k_i} grad f(w_k))" exceeds a
sufficient-decrease threshold.  We implement the standard Armijo form of
that sketch: shrink alpha by ``beta`` until

    f(w - alpha g) <= f(w) - c * alpha * ||g||^2

Line search needs objective evaluations over the *entire* dataset, which
is why the paper notes it "is not used in stochastic algorithms".
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import PlanError
from repro.gd.base import GDRunResult
from repro.gd.convergence import make_convergence


def backtracking_bgd(
    X,
    y,
    gradient,
    alpha0=1.0,
    beta=0.5,
    c=1e-4,
    max_backtracks=30,
    tolerance=1e-3,
    max_iter=1000,
    convergence="l1",
    w0=None,
    time_budget_s=None,
):
    """Run BGD with Armijo backtracking; returns ``GDRunResult``.

    Also records ``losses`` (the objective after each outer iteration),
    since line search computes them anyway.
    """
    n, d = X.shape
    if n == 0:
        raise PlanError("cannot train on an empty dataset")
    if not 0 < beta < 1:
        raise PlanError("backtracking factor beta must be in (0, 1)")
    if alpha0 <= 0:
        raise PlanError("initial step alpha0 must be positive")
    criterion = make_convergence(convergence)

    w = np.zeros(d) if w0 is None else np.asarray(w0, dtype=float).copy()
    deltas = []
    losses = []
    converged = False
    start = time.perf_counter()
    iterations = 0

    for k in range(1, max_iter + 1):
        grad = gradient.gradient(w, X, y)
        f_w = gradient.loss(w, X, y)
        g_norm_sq = float(grad @ grad)
        alpha = alpha0
        for _ in range(max_backtracks):
            candidate = w - alpha * grad
            if gradient.loss(candidate, X, y) <= f_w - c * alpha * g_norm_sq:
                break
            alpha *= beta
        w_new = w - alpha * grad
        delta = criterion.delta(w, w_new)
        w = w_new
        deltas.append(delta)
        losses.append(gradient.loss(w, X, y))
        iterations = k
        if delta < tolerance:
            converged = True
            break
        if time_budget_s is not None and time.perf_counter() - start > time_budget_s:
            break

    return GDRunResult(
        weights=w,
        iterations=iterations,
        converged=converged,
        deltas=np.asarray(deltas),
        elapsed_s=time.perf_counter() - start,
        losses=np.asarray(losses),
    )
