"""Figure 11: benefits and overhead of the ML4all abstraction.

Compares, for SGD / MGD(1K) / MGD(10K) / BGD on adult, rcv1 and svm1:

* **Spark** -- the chosen plan hand-coded against the engine (no
  abstraction dispatch),
* **ML4all** -- the same plan through the operator abstraction,
* **Bismarck-Spark** -- the Bismarck abstraction (combined
  Compute/Update, serialized processing phase).

Expected shape: ML4all ~= Spark (negligible overhead); Bismarck matches
on small data but falls behind once gradients benefit from distribution
(MGD(10K) on svm1) and OOMs where its combined step materialises too
much (rcv1 MGD(10K)/BGD, svm1 BGD).
"""

from __future__ import annotations

from repro.baselines import BismarckBaseline, run_spark_direct
from repro.core.executor import execute_plan
from repro.core.plans import GDPlan, TrainingSpec
from repro.experiments.common import ExperimentContext
from repro.experiments.report import Table

DATASETS = ("adult", "rcv1", "svm1")

#: (label, algorithm, batch, plan factory)
VARIANTS = (
    ("SGD", "sgd", None, lambda b: GDPlan("sgd", "lazy", "shuffle")),
    ("MGD(1K)", "mgd", 1000, lambda b: GDPlan("mgd", "eager", "shuffle", b)),
    ("MGD(10K)", "mgd", 10000, lambda b: GDPlan("mgd", "eager", "shuffle", b)),
    ("BGD", "bgd", None, lambda b: GDPlan("bgd")),
)


def run(ctx=None) -> Table:
    ctx = ctx or ExperimentContext.from_env()
    rows = []
    for name in DATASETS:
        dataset = ctx.dataset(name)
        training = TrainingSpec(
            task=dataset.stats.task,
            tolerance=1e-3,
            max_iter=ctx.max_iter,
            seed=ctx.seed,
        )
        for label, algorithm, batch, plan_for in VARIANTS:
            plan = plan_for(batch)
            row = {"dataset": name, "variant": label}

            spark = run_spark_direct(
                ctx.engine(1), dataset, plan, training
            )
            row["spark_s"] = round(spark.sim_seconds, 2)

            ml4all = execute_plan(ctx.engine(1), dataset, plan, training)
            row["ml4all_s"] = round(ml4all.sim_seconds, 2)
            row["overhead_pct"] = round(
                100 * (ml4all.sim_seconds - spark.sim_seconds)
                / max(spark.sim_seconds, 1e-9), 2,
            )

            bismarck = BismarckBaseline().train(
                ctx.engine(2), dataset, training, algorithm,
                batch_size=batch or 1000, time_limit_s=ctx.time_limit_s,
            )
            row["bismarck_s"] = bismarck.cell()
            rows.append(row)

    return Table(
        experiment="Figure 11",
        title="Abstraction overhead (vs Spark) and benefit (vs Bismarck)",
        columns=["dataset", "variant", "spark_s", "ml4all_s",
                 "overhead_pct", "bismarck_s"],
        rows=rows,
        notes=[
            "paper: ML4all ~= hand-coded Spark; Bismarck OOMs on rcv1 "
            "MGD(10K)/BGD (feature count) and svm1 BGD (cardinality), "
            "and is ~3x slower for MGD(10K) on svm1 (serialized gradient).",
        ],
    )
