"""Shared context for all experiments.

The experiments accept an :class:`ExperimentContext` controlling scale:
``quick=True`` (the default used by the benchmark suite) runs a reduced
dataset set with tighter iteration caps so the whole harness finishes in
minutes; ``quick=False`` (set ``REPRO_FULL=1``) reproduces every cell of
the paper's figures.

Datasets are generated once per (name, seed) and shared across
experiments -- they are immutable; all mutable state (cache, clock)
lives in per-run :class:`SimulatedCluster` instances.
"""

from __future__ import annotations

import dataclasses
import functools
import os

from repro.cluster import ClusterSpec, SimulatedCluster
from repro.core.iterations import SpeculationSettings, SpeculativeEstimator
from repro.data import datasets as registry

#: The paper stops runaway baseline runs after 3 hours.
THREE_HOURS = 3 * 3600.0

#: Tolerance each dataset is evaluated at in the paper's run-to-
#: convergence experiments (Sections 8.2.3, 8.3): 0.001 for the LogR/SVM
#: datasets, 0.01 for rcv1, 0.1 for yearpred.
DATASET_TOLERANCE = {
    "adult": 1e-3,
    "covtype": 1e-3,
    "yearpred": 1e-1,
    "rcv1": 1e-2,
    "higgs": 1e-3,
    "svm1": 1e-3,
    "svm2": 1e-3,
    "svm3": 1e-3,
}

QUICK_DATASETS = ("adult", "covtype", "yearpred", "rcv1", "svm1")
FULL_DATASETS = registry.PAPER_ORDER


@functools.lru_cache(maxsize=32)
def _dataset_cache(name, seed, block_bytes):
    spec = ClusterSpec(hdfs_block_bytes=block_bytes)
    return registry.load(name, spec, seed=seed)


@dataclasses.dataclass
class ExperimentContext:
    """Scale and reproducibility knobs shared by all experiments."""

    quick: bool = True
    seed: int = 7
    spec: ClusterSpec = dataclasses.field(default_factory=ClusterSpec)
    max_iter: int = 1000
    time_limit_s: float = THREE_HOURS
    speculation: SpeculationSettings = dataclasses.field(
        default_factory=lambda: SpeculationSettings(
            time_budget_s=1.0, max_speculation_iters=1500
        )
    )

    @classmethod
    def from_env(cls) -> "ExperimentContext":
        """Quick by default; REPRO_FULL=1 enables every figure cell."""
        quick = os.environ.get("REPRO_FULL", "0") != "1"
        return cls(quick=quick)

    @property
    def datasets(self):
        return QUICK_DATASETS if self.quick else FULL_DATASETS

    def dataset(self, name_or_spec):
        """Cached PartitionedDataset for a registry name or DatasetSpec."""
        if isinstance(name_or_spec, str):
            return _dataset_cache(
                name_or_spec, self.seed, self.spec.hdfs_block_bytes
            )
        return registry.load(name_or_spec, self.spec, seed=self.seed)

    def engine(self, seed_offset=0) -> SimulatedCluster:
        return SimulatedCluster(self.spec, seed=self.seed + seed_offset)

    def estimator(self) -> SpeculativeEstimator:
        return SpeculativeEstimator(self.speculation, seed=self.seed)

    def tolerance(self, dataset_name) -> float:
        return DATASET_TOLERANCE.get(dataset_name, 1e-3)
