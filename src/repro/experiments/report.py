"""Table rendering for the experiment harness.

Every experiment returns a :class:`Table`; the benchmark suite prints it
in the same row/series structure as the paper's figure, and
EXPERIMENTS.md embeds the markdown rendering.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class Table:
    """A paper-figure-shaped result table."""

    experiment: str
    title: str
    columns: list
    rows: list  # list of dicts keyed by column name
    notes: list = dataclasses.field(default_factory=list)

    def _format_cell(self, value):
        if value is None:
            return "-"
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000:
                return f"{value:,.0f}"
            if abs(value) >= 1:
                return f"{value:.2f}"
            return f"{value:.4g}"
        return str(value)

    def render(self) -> str:
        """Fixed-width ASCII rendering."""
        widths = {
            col: max(
                len(str(col)),
                *(len(self._format_cell(row.get(col))) for row in self.rows),
            ) if self.rows else len(str(col))
            for col in self.columns
        }
        lines = [f"== {self.experiment}: {self.title} =="]
        header = "  ".join(str(c).ljust(widths[c]) for c in self.columns)
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(
                    self._format_cell(row.get(c)).ljust(widths[c])
                    for c in self.columns
                )
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        lines = [f"### {self.experiment}: {self.title}", ""]
        lines.append("| " + " | ".join(str(c) for c in self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append(
                "| "
                + " | ".join(
                    self._format_cell(row.get(c)) for c in self.columns
                )
                + " |"
            )
        for note in self.notes:
            lines.append(f"\n*{note}*")
        return "\n".join(lines)

    def column(self, name):
        """All values of one column (convenience for assertions)."""
        return [row.get(name) for row in self.rows]

    def row_for(self, **match):
        """First row matching all given column=value pairs."""
        for row in self.rows:
            if all(row.get(k) == v for k, v in match.items()):
                return row
        raise KeyError(f"no row matching {match}")
