"""Figure 9: ML4all vs MLlib vs SystemML for BGD, MGD and SGD.

The paper runs all three systems with identical parameters (tolerance
0.001, max 1,000 iterations, MGD batch 1,000) and uses ML4all "just to
find the best plan given a GD algorithm".  Expected shapes:

* BGD: ML4all faster than MLlib everywhere (mapPartitions+reduce vs
  treeAggregate); SystemML slightly faster on the small datasets (local
  binary-block mode) but timing out / OOMing as data grows.
* MGD: ML4all up to ~28x faster than MLlib on large data
  (shuffled-partition sampling vs full-scan Bernoulli).
* SGD: ML4all 2-46x faster than MLlib (lazy transformation); SystemML
  competitive on the smallest datasets only.
"""

from __future__ import annotations

from repro.baselines import MLlibBaseline, SystemMLBaseline
from repro.core.optimizer import GDOptimizer
from repro.core.plans import TrainingSpec
from repro.experiments.common import ExperimentContext
from repro.experiments.report import Table

ALGORITHMS = ("bgd", "mgd", "sgd")
BATCH = 1000


def run(ctx=None) -> Table:
    ctx = ctx or ExperimentContext.from_env()
    rows = []
    for name in ctx.datasets:
        dataset = ctx.dataset(name)
        training = TrainingSpec(
            task=dataset.stats.task,
            tolerance=1e-3,
            max_iter=ctx.max_iter,
            seed=ctx.seed,
        )
        for algorithm in ALGORITHMS:
            row = {"dataset": name, "algorithm": algorithm}

            mllib = MLlibBaseline().train(
                ctx.engine(1), dataset, training, algorithm,
                batch_size=BATCH, time_limit_s=ctx.time_limit_s,
            )
            row["mllib_s"] = mllib.cell()

            sysml = SystemMLBaseline().train(
                ctx.engine(2), dataset, training, algorithm,
                batch_size=BATCH, time_limit_s=ctx.time_limit_s,
            )
            row["systemml_s"] = sysml.cell()
            row["sysml_conv_s"] = (
                round(sysml.conversion_s, 1) if sysml.failed != "OOM" else "-"
            )

            engine = ctx.engine(3)
            optimizer = GDOptimizer(
                engine, estimator=ctx.estimator(),
                algorithms=(algorithm,), batch_sizes={"mgd": BATCH},
            )
            _, result = optimizer.train(dataset, training)
            row["ml4all_s"] = round(result.sim_seconds, 1)
            row["ml4all_plan"] = str(result.plan)

            try:
                mllib_val = float(mllib.sim_seconds) if mllib.ok else None
                row["speedup_vs_mllib"] = (
                    round(mllib_val / max(result.sim_seconds, 1e-9), 1)
                    if mllib_val else None
                )
            except (TypeError, ValueError):  # pragma: no cover
                row["speedup_vs_mllib"] = None
            rows.append(row)

    return Table(
        experiment="Figure 9",
        title="Training time per system (BGD/MGD/SGD)",
        columns=[
            "dataset", "algorithm", "mllib_s", "systemml_s",
            "sysml_conv_s", "ml4all_s", "ml4all_plan", "speedup_vs_mllib",
        ],
        rows=rows,
        notes=[
            "OOM = simulated out-of-memory (SystemML on large dense data, "
            "as in the paper); >Ns = stopped at the 3h simulated cut-off.",
        ],
    )
