"""Extension: cost-based hyperparameter tuning in action.

Runs the :class:`~repro.core.tuning.CostBasedTuner` on yearpred and
validates the choice by *executing* every candidate: the tuned setting
should be at (or near) the true execution-time minimum.
"""

from __future__ import annotations

from repro.core.executor import execute_plan
from repro.core.iterations import SpeculativeEstimator
from repro.core.plans import GDPlan, TrainingSpec
from repro.core.tuning import CostBasedTuner
from repro.experiments.common import ExperimentContext
from repro.experiments.report import Table

STEP_CANDIDATES = ("inv_sqrt:0.5", "inv_sqrt:1", "inv_sqrt:2",
                   "1/i:1", "constant:0.1")


def run(ctx=None) -> Table:
    ctx = ctx or ExperimentContext.from_env()
    dataset = ctx.dataset("yearpred")
    training = TrainingSpec(task="linreg", tolerance=1e-2,
                            max_iter=2000, seed=ctx.seed)
    tuner = CostBasedTuner(
        ctx.engine(5),
        estimator=SpeculativeEstimator(ctx.speculation, seed=ctx.seed),
    )
    report = tuner.tune_step_size(dataset, training, algorithm="bgd",
                                  candidates=STEP_CANDIDATES)

    rows = []
    for candidate in report.candidates:
        row = {"step_size": str(candidate.setting)}
        if candidate.feasible:
            row["est_iters"] = candidate.estimated_iterations
            row["est_total_s"] = round(candidate.estimated_total_s, 2)
        else:
            row["est_iters"] = None
            row["est_total_s"] = None
        # Ground truth: actually execute this candidate.
        exec_training = TrainingSpec(
            task="linreg", tolerance=1e-2, max_iter=2000,
            step_size=candidate.setting, seed=ctx.seed,
        )
        result = execute_plan(ctx.engine(6), dataset, GDPlan("bgd"),
                              exec_training)
        row["real_s"] = round(result.sim_seconds, 2)
        row["real_iters"] = result.iterations
        row["converged"] = result.converged
        row["chosen"] = "<==" if candidate is report.best else ""
        rows.append(row)

    return Table(
        experiment="Extension C",
        title="Cost-based step-size tuning vs ground-truth executions",
        columns=["step_size", "est_iters", "est_total_s", "real_s",
                 "real_iters", "converged", "chosen"],
        rows=rows,
        notes=["the tuner's pick should be at or near the real-execution "
               "minimum among converged candidates."],
    )
