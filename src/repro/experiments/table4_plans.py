"""Table 4: the plan chosen for each GD algorithm per dataset.

For every dataset the optimizer picks the best plan *given* each
algorithm (as in Section 8.4.1) and the chosen plan is executed; the
table reports the plan label and the iterations it ran -- the analogue
of the paper's Table 4.
"""

from __future__ import annotations

from repro.core.executor import execute_plan
from repro.core.optimizer import GDOptimizer
from repro.core.plans import TrainingSpec
from repro.experiments.common import ExperimentContext
from repro.experiments.report import Table

ALGORITHMS = ("sgd", "mgd", "bgd")


def run(ctx=None) -> Table:
    ctx = ctx or ExperimentContext.from_env()
    rows = []
    for name in ctx.datasets:
        dataset = ctx.dataset(name)
        training = TrainingSpec(
            task=dataset.stats.task,
            tolerance=1e-3,
            max_iter=ctx.max_iter,
            seed=ctx.seed,
        )
        row = {"dataset": name}
        for algorithm in ALGORITHMS:
            engine = ctx.engine(2)
            optimizer = GDOptimizer(
                engine, estimator=ctx.estimator(), algorithms=(algorithm,)
            )
            report = optimizer.optimize(dataset, training)
            result = execute_plan(
                engine, dataset, report.chosen_plan, training
            )
            plan = report.chosen_plan
            label = "-" if not plan.is_stochastic else (
                f"{plan.transform_mode}-{plan.sampling}"
            )
            row[f"{algorithm}_plan"] = label
            row[f"{algorithm}_iters"] = result.iterations
        rows.append(row)
    return Table(
        experiment="Table 4",
        title="Chosen plan and iterations per GD algorithm",
        columns=["dataset",
                 "sgd_plan", "sgd_iters",
                 "mgd_plan", "mgd_iters",
                 "bgd_plan", "bgd_iters"],
        rows=rows,
        notes=["paper: SGD plans are mostly lazy-shuffle; MGD often hits "
               "the 1,000-iteration cap on the dense SVM datasets."],
    )
