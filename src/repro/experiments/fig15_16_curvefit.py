"""Figures 15-16 (appendix): curve fitting under adaptive step sizes.

The speculation runs on a 1,000-point sample down to tolerance 0.05 and
the fitted curve extrapolates to 0.001; the experiment then runs the
real execution and compares where the fitted curve says 0.001 is reached
against where the real run reaches it.  Figure 15 varies the step size
(1/sqrt(i), 1/i, 1/i^2) on adult/BGD; Figure 16 fixes step 1/i on
covtype, rcv1 and higgs.
"""

from __future__ import annotations

import numpy as np

from repro.core.curve_fit import fit_error_sequence
from repro.errors import EstimationError
from repro.experiments.common import ExperimentContext
from repro.experiments.report import Table
from repro.gd import bgd
from repro.gd.gradients import task_gradient

SPECULATION_SAMPLE = 1000
SPECULATION_TOLERANCE = 0.05
TARGET = 0.001

FIG15_STEPS = ("1/sqrt(i)", "1/i", "1/i^2")
FIG16_DATASETS = ("covtype", "rcv1", "higgs")


def _speculate_and_run(ctx, dataset, step_spec, cap):
    gradient = task_gradient(dataset.stats.task)
    rng = np.random.default_rng(ctx.seed)
    idx = rng.choice(dataset.n_phys,
                     size=min(SPECULATION_SAMPLE, dataset.n_phys),
                     replace=False)
    spec_run = bgd(
        dataset.X[idx], dataset.y[idx], gradient,
        step_size=step_spec, tolerance=SPECULATION_TOLERANCE,
        max_iter=cap, rng=np.random.default_rng(ctx.seed),
    )
    try:
        curve = fit_error_sequence(spec_run.deltas, model="power")
        predicted = curve.iterations_for(TARGET)
        fit_desc = curve.describe()
    except EstimationError as exc:
        predicted, fit_desc = None, f"fit failed: {exc}"

    real_run = bgd(
        dataset.X, dataset.y, gradient,
        step_size=step_spec, tolerance=TARGET,
        max_iter=cap, rng=np.random.default_rng(ctx.seed),
    )
    real = real_run.iterations if real_run.converged else f">{cap}"
    return predicted, real, fit_desc, len(spec_run.deltas)


def run(ctx=None):
    ctx = ctx or ExperimentContext.from_env()
    cap = 4000 if ctx.quick else 20000

    rows15 = []
    adult = ctx.dataset("adult")
    for step_spec in FIG15_STEPS:
        predicted, real, fit_desc, n_obs = _speculate_and_run(
            ctx, adult, step_spec, cap
        )
        rows15.append({
            "step_size": step_spec,
            "speculation_iters": n_obs,
            "predicted_T(0.001)": predicted,
            "real_T(0.001)": real,
            "fit": fit_desc,
        })
    fig15 = Table(
        experiment="Figure 15",
        title="Curve fitting on adult/BGD under different step sizes",
        columns=["step_size", "speculation_iters", "predicted_T(0.001)",
                 "real_T(0.001)", "fit"],
        rows=rows15,
        notes=["the fitted curve should reach 0.001 near where the real "
               "execution does, for every step schedule."],
    )

    rows16 = []
    datasets = FIG16_DATASETS[:2] if ctx.quick else FIG16_DATASETS
    for name in datasets:
        dataset = ctx.dataset(name)
        predicted, real, fit_desc, n_obs = _speculate_and_run(
            ctx, dataset, "1/i", cap
        )
        rows16.append({
            "dataset": name,
            "speculation_iters": n_obs,
            "predicted_T(0.001)": predicted,
            "real_T(0.001)": real,
            "fit": fit_desc,
        })
    fig16 = Table(
        experiment="Figure 16",
        title="Curve fitting with step 1/i (BGD) on more datasets",
        columns=["dataset", "speculation_iters", "predicted_T(0.001)",
                 "real_T(0.001)", "fit"],
        rows=rows16,
        notes=[],
    )
    return [fig15, fig16]
