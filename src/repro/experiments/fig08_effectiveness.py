"""Figure 8: optimizer effectiveness -- chosen plan vs best and worst.

For each dataset, every plan in the search space is executed to
convergence; the optimizer then makes its (speculation-based) choice.
The paper's claims: "ML4all always selects the fastest GD plan" and the
optimization overhead stays within a few seconds ("4.6 to 8 seconds").
The reproduction checks that the chosen plan's time is at (or within
noise of) the exhaustive minimum and far from the maximum -- like a
database optimizer, the real goal is avoiding the worst plans.
"""

from __future__ import annotations

from repro.core.executor import execute_plan
from repro.core.optimizer import GDOptimizer
from repro.core.plan_space import enumerate_plans
from repro.core.plans import TrainingSpec
from repro.experiments.common import ExperimentContext
from repro.experiments.report import Table


def exhaustive(ctx, dataset, training):
    """Run all plans; returns {plan_label: sim_seconds}."""
    times = {}
    for plan in enumerate_plans():
        engine = ctx.engine()
        result = execute_plan(engine, dataset, plan, training)
        times[plan.label] = result.sim_seconds
    return times


def run(ctx=None) -> Table:
    ctx = ctx or ExperimentContext.from_env()
    rows = []
    for name in ctx.datasets:
        dataset = ctx.dataset(name)
        training = TrainingSpec(
            task=dataset.stats.task,
            tolerance=ctx.tolerance(name),
            max_iter=ctx.max_iter,
            time_budget_s=ctx.time_limit_s,
            seed=ctx.seed,
        )
        times = exhaustive(ctx, dataset, training)
        best_plan = min(times, key=times.get)
        worst_plan = max(times, key=times.get)

        engine = ctx.engine(seed_offset=100)
        optimizer = GDOptimizer(engine, estimator=ctx.estimator())
        report, result = optimizer.train(dataset, training)
        chosen_total = result.sim_seconds + report.speculation_sim_s
        ranked = sorted(times.values())
        chosen_rank = 1 + sum(
            1 for t in ranked if t < times[str(report.chosen_plan)] * 0.999
        )
        rows.append({
            "dataset": name,
            "min_plan": best_plan,
            "min_s": round(times[best_plan], 2),
            "max_plan": worst_plan,
            "max_s": round(times[worst_plan], 2),
            "chosen": str(report.chosen_plan),
            "chosen_exec_s": round(result.sim_seconds, 2),
            "speculation_s": round(report.speculation_sim_s, 2),
            "total_s": round(chosen_total, 2),
            "rank": f"{chosen_rank}/{len(times)}",
        })
    return Table(
        experiment="Figure 8",
        title="Best/worst plan vs the optimizer's choice (+overhead)",
        columns=[
            "dataset", "min_plan", "min_s", "max_plan", "max_s",
            "chosen", "chosen_exec_s", "speculation_s", "total_s", "rank",
        ],
        rows=rows,
        notes=[
            "paper: the chosen plan always matches the exhaustive best; "
            "optimization overhead 4.6-8s (mostly the Spark job that "
            "collects the speculation sample).",
        ],
    )
