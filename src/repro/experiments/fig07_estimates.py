"""Figure 7: accuracy of the training-time estimates.

(a) Fixed 1,000 iterations: the optimizer's cost model vs the actual
    simulated run of its chosen plan (the paper's worst case was 17%
    estimation error; ML4all selected SGD for all datasets).
(b) Run to convergence: total time estimate (cost model x iterations
    estimator) vs the actual run of the chosen plan.
"""

from __future__ import annotations

from repro.core.executor import execute_plan
from repro.core.optimizer import GDOptimizer
from repro.core.plans import TrainingSpec
from repro.experiments.common import ExperimentContext
from repro.experiments.report import Table

DATASETS = ("adult", "covtype", "yearpred", "rcv1")

#: Tolerances of the run-to-convergence experiment (Section 8.2.3).
CONVERGENCE_TOLERANCE = {
    "adult": 1e-3, "covtype": 1e-3, "rcv1": 1e-2, "yearpred": 1e-1,
}


def _fixed_iterations_case(ctx, name, iterations=1000):
    dataset = ctx.dataset(name)
    engine = ctx.engine()
    training = TrainingSpec(
        task=dataset.stats.task,
        tolerance=1e-12,  # never reached: run exactly `iterations` iters
        max_iter=iterations,
        seed=ctx.seed,
    )
    optimizer = GDOptimizer(engine, estimator=ctx.estimator())
    report = optimizer.optimize(dataset, training,
                                fixed_iterations=iterations)
    estimated = report.chosen.total_s
    result = execute_plan(engine, dataset, report.chosen_plan, training)
    return {
        "dataset": name,
        "mode": f"fixed {iterations} iters",
        "plan": str(report.chosen_plan),
        "estimated_s": round(estimated, 2),
        "real_s": round(result.sim_seconds, 2),
        "error_pct": round(
            100 * abs(estimated - result.sim_seconds)
            / max(result.sim_seconds, 1e-9), 1,
        ),
    }


def _convergence_case(ctx, name):
    dataset = ctx.dataset(name)
    engine = ctx.engine()
    training = TrainingSpec(
        task=dataset.stats.task,
        tolerance=CONVERGENCE_TOLERANCE[name],
        max_iter=ctx.max_iter * (5 if not ctx.quick else 3),
        seed=ctx.seed,
    )
    optimizer = GDOptimizer(engine, estimator=ctx.estimator())
    report = optimizer.optimize(dataset, training)
    estimated = report.chosen.total_s
    result = execute_plan(engine, dataset, report.chosen_plan, training)
    return {
        "dataset": name,
        "mode": f"to eps={CONVERGENCE_TOLERANCE[name]:g}",
        "plan": str(report.chosen_plan),
        "estimated_s": round(estimated, 2),
        "real_s": round(result.sim_seconds, 2),
        "error_pct": round(
            100 * abs(estimated - result.sim_seconds)
            / max(result.sim_seconds, 1e-9), 1,
        ),
    }


def run(ctx=None) -> Table:
    ctx = ctx or ExperimentContext.from_env()
    datasets = DATASETS if not ctx.quick else DATASETS[:3]
    rows = []
    for name in datasets:
        rows.append(_fixed_iterations_case(ctx, name))
    for name in datasets:
        rows.append(_convergence_case(ctx, name))
    return Table(
        experiment="Figure 7",
        title="Estimated vs real training time",
        columns=["dataset", "mode", "plan", "estimated_s", "real_s",
                 "error_pct"],
        rows=rows,
        notes=[
            "paper: fixed-iterations estimates within 17% of actual; "
            "run-to-convergence estimates 'very close' (iteration "
            "estimation adds stochastic error for SGD/MGD).",
        ],
    )
