"""Extension: the adaptive runtime vs the one-shot optimizer.

The paper's optimizer never revisits its choice, so a wrong cost model
is paid for the whole run.  This experiment injects a known fault -- a
:class:`~repro.runtime.PerturbedCostModel` that *under*-estimates one
algorithm's per-iteration cost by an integer factor, making the
optimizer mis-pick it -- and measures four executions of the same
workload:

1. **one-shot honest** -- the faithful cost model (reference);
2. **one-shot perturbed** -- the mis-picked plan, ridden to the end;
3. **adaptive perturbed** -- the same mis-pick, but the convergence/cost
   monitor notices mid-flight, re-runs plan selection over the remaining
   error budget and switches plans without losing model state;
4. **calibrated repeat** -- the same request again through the serving
   layer: the first run's trace taught the calibration store the true
   cost, so the cached speculation is re-costed (no re-speculation) and
   the honest plan is chosen outright.

Speculation runs once and is shared across all modes, so differences in
simulated seconds are pure execution-cost differences.
"""

from __future__ import annotations

import math

from repro.core.executor import execute_plan
from repro.core.optimizer import GDOptimizer
from repro.core.plans import TrainingSpec
from repro.experiments.common import ExperimentContext
from repro.experiments.report import Table
from repro.runtime import (
    AdaptiveTrainer,
    CalibrationStore,
    PerturbedCostModel,
)
from repro.service import OptimizerService

#: Under-estimation factors tried until the perturbed optimizer actually
#: flips its choice to the victim algorithm.
PERTURB_FACTORS = (0.25, 0.125, 0.0625)

DATASET = "adult"

#: The switch-heavy scenario pits the two adaptive-direction MGD
#: variants against each other: both keep updater buffers *and* ride the
#: MLlib ``beta/sqrt(i)`` schedule, so a mid-flight switch that resets
#: optimizer state pays maximally (schedule restart + zeroed buffers +
#: Adam bias-correction restart).
SWITCH_ALGORITHMS = ("momentum", "adam")
SWITCH_TOLERANCE = 1e-2


def _optimizer(ctx, seed_offset, cost_model=None, calibration=None):
    return GDOptimizer(
        ctx.engine(seed_offset),
        estimator=ctx.estimator(),
        cost_model=cost_model,
        calibration=calibration,
    )


def run(ctx=None) -> Table:
    ctx = ctx or ExperimentContext.from_env()
    dataset = ctx.dataset(DATASET)
    training = TrainingSpec(
        task="logreg",
        tolerance=ctx.tolerance(DATASET),
        max_iter=ctx.max_iter,
        seed=ctx.seed,
    )

    # Speculate once; every mode below re-costs these same estimates.
    estimates = ctx.estimator().estimate_all(
        dataset.X,
        dataset.y,
        training.gradient(),
        target_tolerance=training.tolerance,
        step_size=training.step_size,
        convergence=training.convergence,
    )

    # Mode 1: one-shot, honest cost model.
    honest_opt = _optimizer(ctx, 1)
    honest_report = honest_opt.optimize(
        dataset, training, iteration_estimates=estimates
    )
    honest_result = execute_plan(
        honest_opt.engine, dataset, honest_report.chosen_plan, training
    )
    honest_alg = honest_report.chosen_plan.algorithm

    # Fault injection: under-estimate the best *other* algorithm until
    # the optimizer mis-picks it.
    victim = next(
        c.plan.algorithm
        for c in honest_report.ranking()
        if c.plan.algorithm != honest_alg
    )
    perturbed_model = None
    perturbed_report = None
    factor = None
    for candidate_factor in PERTURB_FACTORS:
        model = PerturbedCostModel(ctx.spec, {victim: candidate_factor})
        report = _optimizer(ctx, 2, cost_model=model).optimize(
            dataset, training, iteration_estimates=estimates
        )
        if report.chosen_plan.algorithm == victim:
            perturbed_model, perturbed_report = model, report
            factor = candidate_factor
            break
    if perturbed_report is None:
        raise RuntimeError(
            f"fault injection failed: under-pricing {victim} by up to "
            f"{1 / PERTURB_FACTORS[-1]:g}x never flipped the optimizer's "
            f"choice away from {honest_report.chosen_plan} -- pick a "
            "different victim or workload"
        )
    notes = [
        f"fault injection: cost model x{factor:g} on {victim} "
        f"(under-estimated {1 / factor:g}x); honest choice was "
        f"{honest_report.chosen_plan}",
    ]

    rows = [{
        "mode": "one-shot honest",
        "plan": str(honest_report.chosen_plan),
        "iterations": honest_result.iterations,
        "sim_s": round(honest_result.sim_seconds, 2),
        "switches": 0,
    }]

    # Mode 2: one-shot, perturbed -- rides the mis-pick to the end.
    oneshot_engine = ctx.engine(3)
    oneshot_result = execute_plan(
        oneshot_engine, dataset, perturbed_report.chosen_plan, training
    )
    rows.append({
        "mode": "one-shot perturbed",
        "plan": str(perturbed_report.chosen_plan),
        "iterations": oneshot_result.iterations,
        "sim_s": round(oneshot_result.sim_seconds, 2),
        "switches": 0,
    })

    # Mode 3: adaptive, perturbed -- monitored execution, mid-flight
    # re-optimization, trace-fed calibration.
    store = CalibrationStore()
    adaptive_opt = _optimizer(
        ctx, 3, cost_model=perturbed_model, calibration=store
    )
    trainer = AdaptiveTrainer(adaptive_opt, calibration=store)
    adaptive = trainer.train(dataset, training, report=perturbed_report)
    rows.append({
        "mode": "adaptive perturbed",
        "plan": " -> ".join(s.plan for s in adaptive.trace.segments),
        "iterations": adaptive.iterations,
        "sim_s": round(adaptive.sim_seconds, 2),
        "switches": len(adaptive.trace.switches),
    })

    # Mode 4: the same workload again, through the serving layer sharing
    # the calibration store: re-costed from cached speculation (no
    # re-speculation), honest plan chosen outright.
    service = OptimizerService(
        spec=ctx.spec,
        seed=ctx.seed,
        speculation=ctx.speculation,
        cost_model=perturbed_model,
        calibration=store,
    )
    first = service.train(dataset, training, adaptive=True)
    repeat = service.train(dataset, training, adaptive=True)
    rows.append({
        "mode": "calibrated repeat",
        "plan": " -> ".join(s.plan for s in repeat.trace.segments),
        "iterations": repeat.result.iterations,
        "sim_s": round(repeat.adaptive.sim_seconds, 2),
        "switches": len(repeat.trace.switches),
    })
    repeat_source = (
        "recalibrated from cached speculation"
        if repeat.optimization.recalibrated else "served from cache"
    )
    notes.append(
        f"repeat request: {repeat_source}; service computed "
        f"{service.computed} optimization(s) for {service.requests} requests"
    )
    corrections = "; ".join(
        f"{alg}: cost x{c.cost_factor:.2f}"
        for alg, c in sorted(store.corrections_for(ctx.spec).items())
    )
    notes.append(f"learned corrections: {corrections}")
    del first

    return Table(
        experiment="Extension D",
        title="Adaptive runtime vs one-shot optimizer under a perturbed "
              "cost model",
        columns=["mode", "plan", "iterations", "sim_s", "switches"],
        rows=rows,
        notes=notes,
    )


def run_switch(ctx=None) -> Table:
    """Switch-heavy scenario: optimizer-state carry-over vs legacy reset.

    A perturbed cost model forces a mis-pick between momentum and Adam;
    the convergence/cost monitor notices and switches mid-flight (twice,
    with the default switch budget).  The same switched run is executed
    twice: with full :class:`~repro.gd.state.OptimizerState` carry-over
    (the fix) and with the legacy weights-only behaviour where every
    post-switch segment restarts the MLlib ``beta/sqrt(i)`` schedule at
    iteration 1 and zeroes the updater buffers.  The carried run resumes
    the schedule at global ``k + 1`` -- its first post-switch step is
    *continuous* -- while the reset run's ``beta/sqrt(1)`` restart
    undoes banked progress and rides the iteration cap.
    """
    ctx = ctx or ExperimentContext.from_env()
    dataset = ctx.dataset(DATASET)
    training = TrainingSpec(
        task="logreg",
        tolerance=SWITCH_TOLERANCE,
        max_iter=ctx.max_iter,
        seed=ctx.seed,
    )
    estimates = ctx.estimator().estimate_all(
        dataset.X,
        dataset.y,
        training.gradient(),
        target_tolerance=training.tolerance,
        step_size=training.step_size,
        convergence=training.convergence,
        algorithms=SWITCH_ALGORITHMS,
    )

    def optimizer(seed_offset, cost_model=None):
        return GDOptimizer(
            ctx.engine(seed_offset),
            estimator=ctx.estimator(),
            algorithms=SWITCH_ALGORITHMS,
            cost_model=cost_model,
        )

    honest = optimizer(1).optimize(
        dataset, training, iteration_estimates=estimates
    )
    victim = next(
        c.plan.algorithm
        for c in honest.ranking()
        if c.plan.algorithm != honest.chosen_plan.algorithm
    )
    perturbed_model = None
    report = None
    factor = None
    for candidate_factor in PERTURB_FACTORS:
        model = PerturbedCostModel(ctx.spec, {victim: candidate_factor})
        candidate = optimizer(2, cost_model=model).optimize(
            dataset, training, iteration_estimates=estimates
        )
        if candidate.chosen_plan.algorithm == victim:
            perturbed_model, report, factor = model, candidate, candidate_factor
            break
    if report is None:
        raise RuntimeError(
            f"fault injection failed: under-pricing {victim} never flipped "
            f"the optimizer away from {honest.chosen_plan}"
        )

    rows = []
    results = {}
    for mode, carry in (("state carried", True), ("state reset (legacy)",
                                                  False)):
        trainer = AdaptiveTrainer(
            optimizer(3, cost_model=perturbed_model), carry_state=carry
        )
        outcome = trainer.train(dataset, training, report=report)
        results[mode] = outcome
        rows.append({
            "mode": mode,
            "plan": " -> ".join(s.plan for s in outcome.trace.segments),
            "iterations": outcome.iterations,
            "sim_s": round(outcome.sim_seconds, 2),
            "switches": len(outcome.trace.switches),
            "converged": outcome.converged,
        })

    carried = results["state carried"]
    notes = [
        f"fault injection: cost model x{factor:g} on {victim}; honest "
        f"choice was {honest.chosen_plan}",
    ]
    if carried.trace.switches:
        switch_iteration = carried.trace.switches[0].iteration
        beta = (
            float(training.step_size)
            if isinstance(training.step_size, (int, float)) else 1.0
        )
        resumed_alpha = beta / math.sqrt(switch_iteration + 1)
        post = carried.trace.segments[1]
        carried_offset = (post.state or {}).get("iteration_offset", 0) \
            - post.iterations
        notes.append(
            f"post-switch step size continuous: beta/sqrt("
            f"{switch_iteration + 1}) = {resumed_alpha:.4f} at global "
            f"iteration {carried_offset + 1} (a state-reset run restarts "
            f"at beta/sqrt(1) = {beta:g})"
        )
        for note in post.state_transfer:
            notes.append(f"state transfer: {note}")
    return Table(
        experiment="Extension D (switch-heavy)",
        title="Mid-flight switches with optimizer-state carry-over vs "
              "legacy weights-only reset",
        columns=["mode", "plan", "iterations", "sim_s", "switches",
                 "converged"],
        rows=rows,
        notes=notes,
    )
