"""Experiment registry: every paper table/figure by id.

``run_experiment("fig08")`` executes one experiment and returns its
table(s); ``run_all()`` regenerates the whole evaluation section.
"""

from __future__ import annotations

from repro.experiments import (
    ext_adaptive,
    ext_curvefit_ablation,
    ext_extended_space,
    ext_tuning,
    fig01_motivation,
    fig06_iterations,
    fig07_estimates,
    fig08_effectiveness,
    fig09_systems,
    fig10_scalability,
    fig11_abstraction,
    fig12_accuracy,
    fig13_sampling_mgd,
    fig14_transform,
    fig15_16_curvefit,
    fig17_sampling_sgd,
    fig18_transform_random,
    table2_datasets,
    table4_plans,
)
from repro.experiments.common import ExperimentContext

EXPERIMENTS = {
    "fig01": (fig01_motivation.run, "Motivation: no all-times GD winner"),
    "fig06": (fig06_iterations.run, "Estimated vs real iterations"),
    "fig07": (fig07_estimates.run, "Estimated vs real training time"),
    "fig08": (fig08_effectiveness.run, "Optimizer effectiveness"),
    "fig09": (fig09_systems.run, "ML4all vs MLlib vs SystemML"),
    "fig10": (fig10_scalability.run, "Scalability sweeps"),
    "fig11": (fig11_abstraction.run, "Abstraction benefit/overhead"),
    "fig12": (fig12_accuracy.run, "Testing error across systems"),
    "fig13": (fig13_sampling_mgd.run, "Sampling effect in MGD"),
    "fig14": (fig14_transform.run, "Transformation effect (shuffle)"),
    "fig15_16": (fig15_16_curvefit.run, "Curve fitting / step sizes"),
    "fig17": (fig17_sampling_sgd.run, "Sampling effect in SGD"),
    "fig18": (fig18_transform_random.run, "Transformation effect (random)"),
    "table2": (table2_datasets.run, "Dataset suite"),
    "table4": (table4_plans.run, "Chosen plans per algorithm"),
    "ext_space": (ext_extended_space.run,
                  "Extension: plan space with extra algorithms"),
    "ext_curvefit": (ext_curvefit_ablation.run,
                     "Ablation: error-sequence fit models"),
    "ext_tuning": (ext_tuning.run,
                   "Extension: cost-based hyperparameter tuning"),
    "ext_adaptive": (ext_adaptive.run,
                     "Extension: adaptive runtime vs one-shot optimizer"),
    "ext_adaptive_switch": (
        ext_adaptive.run_switch,
        "Extension: optimizer-state carry-over across mid-flight switches",
    ),
}


def run_experiment(experiment_id, ctx=None):
    """Run one experiment; returns a list of Tables."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: "
            f"{sorted(EXPERIMENTS)}"
        )
    runner, _ = EXPERIMENTS[experiment_id]
    result = runner(ctx or ExperimentContext.from_env())
    return result if isinstance(result, list) else [result]


def run_all(ctx=None, echo=print):
    """Run every experiment, echoing tables; returns {id: [Table, ...]}."""
    ctx = ctx or ExperimentContext.from_env()
    out = {}
    for experiment_id in EXPERIMENTS:
        tables = run_experiment(experiment_id, ctx)
        out[experiment_id] = tables
        if echo:
            for table in tables:
                echo(table.render())
                echo("")
    return out
