"""Ablation: which error-sequence model should the estimator fit?

The paper's main text fits T(e) = a/e (the ``inverse`` model); DESIGN.md
section 3 documents our default as the generalized power law a/i^p.
This ablation runs the same speculation trace through all three fitters
(inverse / power / exponential-when-it-fits) and compares predicted
iteration counts against the real runs, quantifying the design choice.
"""

from __future__ import annotations

import numpy as np

from repro.core.curve_fit import fit_error_sequence
from repro.errors import EstimationError
from repro.experiments.common import ExperimentContext
from repro.experiments.report import Table
from repro.gd import bgd
from repro.gd.gradients import task_gradient

DATASETS = ("adult", "covtype", "yearpred")
TARGET = 0.01
MODELS = ("inverse", "power", "auto")


def run(ctx=None) -> Table:
    ctx = ctx or ExperimentContext.from_env()
    cap = 4000 if ctx.quick else 20000
    rows = []
    for name in DATASETS:
        dataset = ctx.dataset(name)
        gradient = task_gradient(dataset.stats.task)
        rng = np.random.default_rng(ctx.seed)
        idx = rng.choice(dataset.n_phys,
                         size=min(1000, dataset.n_phys), replace=False)
        speculation = bgd(
            dataset.X[idx], dataset.y[idx], gradient,
            tolerance=0.05, max_iter=1500,
            rng=np.random.default_rng(ctx.seed),
        )
        real_run = bgd(
            dataset.X, dataset.y, gradient, tolerance=TARGET,
            max_iter=cap, rng=np.random.default_rng(ctx.seed),
        )
        real = real_run.iterations if real_run.converged else None
        row = {"dataset": name,
               "real_T(0.01)": real if real else f">{cap}"}
        for model in MODELS:
            try:
                curve = fit_error_sequence(speculation.deltas, model=model)
                predicted = curve.iterations_for(TARGET)
            except EstimationError:
                predicted = None
            row[f"{model}_pred"] = predicted
            if predicted and real:
                row[f"{model}_ratio"] = round(predicted / real, 2)
        rows.append(row)
    return Table(
        experiment="Extension B",
        title="Curve-fit model ablation (BGD speculation -> T(0.01))",
        columns=["dataset", "real_T(0.01)",
                 "inverse_pred", "inverse_ratio",
                 "power_pred", "power_ratio",
                 "auto_pred", "auto_ratio"],
        rows=rows,
        notes=["'inverse' is the paper's a/e model; 'power' (our default) "
               "generalizes it to a/i^p; 'auto' picks the best log-space "
               "R^2 among inverse/power/exponential."],
    )
