"""Figure 1 (right side): no GD algorithm is an all-times winner.

The paper's motivating measurement: the fastest GD variant differs per
dataset/tolerance -- "(i) for the adult dataset MGD takes less time ...
(ii) for the covtype BGD is faster ... (iii) for the rcv1 dataset SGD is
the winner".  We train each dataset with each algorithm (the optimizer
picking the best plan *for that algorithm*) and report simulated
training time; the reproduction target is winner diversity, not the
absolute seconds.
"""

from __future__ import annotations

from repro.core.optimizer import GDOptimizer
from repro.core.plans import TrainingSpec
from repro.experiments.common import ExperimentContext
from repro.experiments.report import Table

#: (dataset, task, tolerance, iteration cap) cases.  The paper's Figure 1
#: uses adult/covtype (SVM, 0.01) and rcv1 (LogR, 1e-4); our calibrated
#: stand-ins express the same no-all-times-winner behaviour across the
#: Table 2 tasks with winner flips driven by the tolerance, which is the
#: mechanism Section 8.3 highlights ("other GD algorithms can be the
#: winner for different tolerance values and tasks").
CASES = (
    ("adult", "logreg", 1e-2, 2000),
    ("covtype", "logreg", 1e-2, 2000),
    ("covtype", "logreg", 1e-3, 10000),
    ("rcv1", "logreg", 1e-4, 2000),
)

ALGORITHMS = ("bgd", "mgd", "sgd")


def run(ctx=None) -> Table:
    ctx = ctx or ExperimentContext.from_env()
    rows = []
    for name, task, tolerance, cap in CASES:
        dataset = ctx.dataset(name)
        row = {"dataset": name, "task": task, "tolerance": tolerance}
        times = {}
        for algorithm in ALGORITHMS:
            engine = ctx.engine()
            training = TrainingSpec(
                task=task,
                tolerance=tolerance,
                max_iter=cap,
                time_budget_s=ctx.time_limit_s,
                seed=ctx.seed,
            )
            optimizer = GDOptimizer(
                engine, estimator=ctx.estimator(), algorithms=(algorithm,)
            )
            _, result = optimizer.train(dataset, training)
            times[algorithm] = result.sim_seconds
            row[f"{algorithm}_s"] = round(result.sim_seconds, 2)
            row[f"{algorithm}_iters"] = result.iterations
        row["winner"] = min(times, key=times.get)
        rows.append(row)

    winners = {row["winner"] for row in rows}
    return Table(
        experiment="Figure 1",
        title="Training time per GD algorithm (no all-times winner)",
        columns=[
            "dataset", "task", "tolerance",
            "bgd_s", "mgd_s", "sgd_s",
            "bgd_iters", "mgd_iters", "sgd_iters", "winner",
        ],
        rows=rows,
        notes=[
            f"distinct winners across datasets: {sorted(winners)}",
            "paper: adult->MGD, covtype->BGD, rcv1->SGD; the reproduction "
            "target is winner *diversity* driven by the same mechanisms "
            "(iteration counts vs per-iteration cost).",
        ],
    )
