"""Figure 14: transformation effect with shuffled-partition sampling."""

from __future__ import annotations

from repro.experiments.common import ExperimentContext
from repro.experiments.indepth import transform_effect


def run(ctx=None):
    ctx = ctx or ExperimentContext.from_env()
    return [
        transform_effect(
            ctx, ("sgd",), "shuffle",
            experiment="Figure 14(a)",
            title="SGD eager vs lazy, shuffled-partition sampling",
        ),
        transform_effect(
            ctx, ("mgd",), "shuffle",
            experiment="Figure 14(b)",
            title="MGD eager vs lazy, shuffled-partition sampling",
        ),
    ]
