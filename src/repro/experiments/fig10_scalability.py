"""Figure 10: scalability in #points (SVM_A) and #features (SVM_B).

SGD to convergence on the synthetic dense SVM sweeps, comparing MLlib
against ML4all's eager-random and lazy-shuffle plans.  Expected shape:
both ML4all plans beat MLlib by more than an order of magnitude, the
lazy-shuffle plan scales best, and MLlib becomes unrunnable at the far
end (the paper extrapolates 3 days for 88M points and stops it).
"""

from __future__ import annotations

from repro.baselines import MLlibBaseline
from repro.core.executor import execute_plan
from repro.core.plans import GDPlan, TrainingSpec
from repro.data.datasets import svm_a_spec, svm_b_spec
from repro.experiments.common import ExperimentContext
from repro.experiments.report import Table

SVM_A_POINTS = (2_758_400, 5_516_800, 11_033_600, 22_067_200, 44_134_400,
                88_268_800)
SVM_B_FEATURES = (1_000, 10_000, 50_000, 100_000, 500_000)

PLANS = {
    "eager_random": GDPlan("sgd", "eager", "random"),
    "lazy_shuffle": GDPlan("sgd", "lazy", "shuffle"),
}


def _sweep_case(ctx, spec_obj, label, value):
    dataset = ctx.dataset(spec_obj)
    training = TrainingSpec(
        task="svm", tolerance=1e-3, max_iter=ctx.max_iter, seed=ctx.seed
    )
    row = {"sweep": label, "value": value,
           "sim_gb": round(dataset.total_bytes / 1024**3, 1)}
    mllib = MLlibBaseline().train(
        ctx.engine(1), dataset, training, "sgd",
        time_limit_s=ctx.time_limit_s * 8,
    )
    row["mllib_s"] = mllib.cell()
    for plan_name, plan in PLANS.items():
        result = execute_plan(ctx.engine(2), dataset, plan, training)
        row[f"{plan_name}_s"] = round(result.sim_seconds, 1)
    if mllib.ok:
        row["speedup"] = round(
            mllib.sim_seconds / max(row["lazy_shuffle_s"], 1e-9), 1
        )
    return row


def run(ctx=None) -> Table:
    ctx = ctx or ExperimentContext.from_env()
    points = SVM_A_POINTS[::2] if ctx.quick else SVM_A_POINTS
    features = SVM_B_FEATURES[::2] if ctx.quick else SVM_B_FEATURES
    rows = []
    for n in points:
        rows.append(_sweep_case(ctx, svm_a_spec(n), "SVM_A #points", n))
    for d in features:
        rows.append(_sweep_case(ctx, svm_b_spec(d), "SVM_B #features", d))
    return Table(
        experiment="Figure 10",
        title="Scalability: MLlib vs eager-random vs lazy-shuffle (SGD)",
        columns=["sweep", "value", "sim_gb", "mllib_s", "eager_random_s",
                 "lazy_shuffle_s", "speedup"],
        rows=rows,
        notes=[
            "paper: ML4all plans beat MLlib by >1 order of magnitude and "
            "scale gracefully; lazy-shuffle scales best.",
        ],
    )
