"""Figure 17 (appendix): sampling effect in SGD, eager and lazy."""

from __future__ import annotations

from repro.experiments.common import ExperimentContext
from repro.experiments.indepth import sampling_effect


def run(ctx=None):
    ctx = ctx or ExperimentContext.from_env()
    return [
        sampling_effect(
            ctx, "sgd", "eager",
            experiment="Figure 17(a)",
            title="SGD sampling effect, eager transformation",
        ),
        sampling_effect(
            ctx, "sgd", "lazy",
            experiment="Figure 17(b)",
            title="SGD sampling effect, lazy transformation",
        ),
    ]
