"""Experiment harness: one module per paper figure/table.

See DESIGN.md section 4 for the experiment index.  Typical use:

    from repro.experiments import run_experiment
    for table in run_experiment("fig08"):
        print(table.render())
"""

from repro.experiments.common import ExperimentContext
from repro.experiments.report import Table

__all__ = ["ExperimentContext", "Table", "run_experiment", "run_all",
           "EXPERIMENTS"]


def __getattr__(name):
    # Lazy import: the registry imports every experiment module, which
    # is wasteful for users who only want the context/table types.
    if name in ("run_experiment", "run_all", "EXPERIMENTS"):
        from repro.experiments import registry

        return getattr(registry, name)
    raise AttributeError(name)
