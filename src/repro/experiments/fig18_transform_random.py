"""Figure 18 (appendix): transformation effect with random-partition."""

from __future__ import annotations

from repro.experiments.common import ExperimentContext
from repro.experiments.indepth import transform_effect


def run(ctx=None):
    ctx = ctx or ExperimentContext.from_env()
    return [
        transform_effect(
            ctx, ("mgd",), "random",
            experiment="Figure 18(a)",
            title="MGD eager vs lazy, random-partition sampling",
        ),
        transform_effect(
            ctx, ("sgd",), "random",
            experiment="Figure 18(b)",
            title="SGD eager vs lazy, random-partition sampling",
        ),
    ]
