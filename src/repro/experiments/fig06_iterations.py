"""Figure 6: estimated vs real number of iterations.

For each dataset and tolerance level, compare the speculation-based
estimate T(epsilon) against the iterations an actual run needs.  The
paper's success criteria (Section 8.2.1): estimates "in the same order
of magnitude", and the *ordering* of the three algorithms preserved
("ML4all preserves the same ordering of the estimated number of
iterations for all three GD algorithms").
"""

from __future__ import annotations

import numpy as np

from repro.errors import EstimationError
from repro.experiments.common import ExperimentContext
from repro.experiments.report import Table
from repro.gd import registry as gd_registry
from repro.gd.gradients import task_gradient

DATASETS = ("adult", "covtype", "rcv1")
TOLERANCES = (0.1, 0.01, 0.001)
ALGORITHMS = ("bgd", "mgd", "sgd")


def real_iterations(dataset, algorithm, tolerance, cap, seed):
    """Iterations an actual (pure-math) run needs to reach tolerance."""
    gradient = task_gradient(dataset.stats.task)
    result = gd_registry.run(
        algorithm,
        dataset.X,
        dataset.y,
        gradient,
        tolerance=tolerance,
        max_iter=cap,
        rng=np.random.default_rng(seed),
    )
    if result.converged:
        return result.iterations, False
    return cap, True


def run(ctx=None) -> Table:
    ctx = ctx or ExperimentContext.from_env()
    cap = 4000 if ctx.quick else 20000
    datasets = DATASETS if not ctx.quick else DATASETS[:2]
    rows = []
    for name in datasets:
        dataset = ctx.dataset(name)
        gradient = task_gradient(dataset.stats.task)
        estimator = ctx.estimator()
        for tolerance in TOLERANCES:
            row = {"dataset": name, "tolerance": tolerance}
            for algorithm in ALGORITHMS:
                try:
                    estimate = estimator.estimate(
                        dataset.X,
                        dataset.y,
                        gradient,
                        algorithm,
                        target_tolerance=tolerance,
                    )
                    estimated = estimate.estimated_iterations
                except EstimationError:
                    estimated = None
                actual, capped = real_iterations(
                    dataset, algorithm, tolerance, cap, ctx.seed
                )
                row[f"{algorithm}_real"] = (
                    f">{actual}" if capped else actual
                )
                row[f"{algorithm}_estim"] = estimated
                if estimated and not capped and actual > 0:
                    ratio = estimated / actual
                    row[f"{algorithm}_ratio"] = round(ratio, 2)
            rows.append(row)

    return Table(
        experiment="Figure 6",
        title="Estimated vs real iterations per tolerance",
        columns=[
            "dataset", "tolerance",
            "bgd_real", "bgd_estim", "bgd_ratio",
            "mgd_real", "mgd_estim", "mgd_ratio",
            "sgd_real", "sgd_estim", "sgd_ratio",
        ],
        rows=rows,
        notes=[
            "success = same order of magnitude (ratio within ~[0.1, 10]) "
            "and the per-algorithm ordering preserved, as in the paper.",
        ],
    )
