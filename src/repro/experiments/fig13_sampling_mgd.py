"""Figure 13: sampling effect in MGD, for eager and lazy transformation."""

from __future__ import annotations

from repro.experiments.common import ExperimentContext
from repro.experiments.indepth import sampling_effect


def run(ctx=None):
    ctx = ctx or ExperimentContext.from_env()
    eager = sampling_effect(
        ctx, "mgd", "eager",
        experiment="Figure 13(a)",
        title="MGD sampling effect, eager transformation",
    )
    lazy = sampling_effect(
        ctx, "mgd", "lazy",
        experiment="Figure 13(b)",
        title="MGD sampling effect, lazy transformation",
    )
    return [eager, lazy]
