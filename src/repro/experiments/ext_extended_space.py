"""Extension: the plan space parameterized by extra GD algorithms.

Section 6: "there could be tens of GD algorithms that the user might want
to evaluate.  In such a case, the search space would increase
proportionally."  This experiment runs the optimizer with SVRG and the
adaptive-direction variants registered alongside BGD/MGD/SGD, showing the
space growing from 11 plans to 11 + 5 per extra stochastic algorithm, and
that the costing machinery handles the extensions unchanged.
"""

from __future__ import annotations

from repro.core.optimizer import GDOptimizer
from repro.core.plan_space import enumerate_plans
from repro.core.plans import TrainingSpec
from repro.experiments.common import ExperimentContext
from repro.experiments.report import Table

ALGORITHM_SETS = (
    ("bgd", "mgd", "sgd"),
    ("bgd", "mgd", "sgd", "svrg"),
    ("bgd", "mgd", "sgd", "svrg", "momentum", "adagrad", "adam"),
)


def run(ctx=None) -> Table:
    ctx = ctx or ExperimentContext.from_env()
    dataset = ctx.dataset("adult")
    training = TrainingSpec(
        task=dataset.stats.task, tolerance=1e-2, max_iter=ctx.max_iter,
        seed=ctx.seed,
    )
    rows = []
    for algorithms in ALGORITHM_SETS:
        plans = enumerate_plans(algorithms)
        optimizer = GDOptimizer(
            ctx.engine(4), estimator=ctx.estimator(), algorithms=algorithms
        )
        report = optimizer.optimize(dataset, training)
        rows.append({
            "algorithms": "+".join(algorithms),
            "plans": len(plans),
            "chosen": str(report.chosen_plan),
            "est_total_s": round(report.chosen.total_s, 2),
            "optimizer_wall_s": round(report.optimizer_wall_s, 2),
        })
    return Table(
        experiment="Extension A",
        title="Search space parameterized by the algorithm registry",
        columns=["algorithms", "plans", "chosen", "est_total_s",
                 "optimizer_wall_s"],
        rows=rows,
        notes=["each extra stochastic algorithm adds the five "
               "transformation x sampling variants of Figure 5."],
    )
