"""Extension: the plan space parameterized by extra GD algorithms.

Section 6: "there could be tens of GD algorithms that the user might want
to evaluate.  In such a case, the search space would increase
proportionally."  This experiment runs the optimizer with SVRG, the
adaptive-direction variants, and the two plugin algorithms (gradient
averaging, arXiv 2012.02387, and Arc GD, arXiv 2512.06737) registered
alongside BGD/MGD/SGD, showing the space growing from 11 plans to
11 + 5 per extra stochastic algorithm, and that the costing machinery
handles the extensions unchanged.

The second table turns the extended space loose on concrete workloads:
each registered algorithm family -- the paper's core trio *and* both
plugins -- is the optimizer's cost-based choice on at least one
(dataset, epsilon, step, batch) combination, i.e. the plugins compete on
cost, not by being forced.  The same workloads run through the CLI as::

    repro batch --algorithms bgd,mgd,sgd,grad_avg,arc requests.txt
"""

from __future__ import annotations

from repro.core.optimizer import GDOptimizer
from repro.core.plan_space import enumerate_plans
from repro.core.plans import TrainingSpec
from repro.experiments.common import ExperimentContext
from repro.experiments.report import Table
from repro.gd import registry as gd_registry

ALGORITHM_SETS = (
    ("bgd", "mgd", "sgd"),
    ("bgd", "mgd", "sgd", "svrg"),
    ("bgd", "mgd", "sgd", "svrg", "momentum", "adagrad", "adam"),
    ("bgd", "mgd", "sgd", "svrg", "momentum", "adagrad", "adam",
     "grad_avg", "arc"),
)

#: The acceptance workloads: (dataset, epsilon, step, max_iter, batch).
#: Chosen so the cost-based ranking hands a win to each algorithm family
#: in PLUGIN_ALGORITHMS -- SGD on easy tolerances, Arc where its
#: curvature probes pay for themselves, gradient averaging where small
#: noisy batches make plain MGD's iteration count blow up, and MGD when
#: the batch is large enough that averaging's extra update buys nothing.
WORKLOADS = (
    ("adult", 1e-2, 1.0, 1000, None),
    ("adult", 1e-3, 1.0, 1000, None),
    ("covtype", 1e-3, 1.0, 50000, 100),
    ("covtype", 1e-3, 1.0, 50000, 1000),
)

PLUGIN_ALGORITHMS = ("bgd", "mgd", "sgd", "grad_avg", "arc")


def run(ctx=None) -> list:
    ctx = ctx or ExperimentContext.from_env()
    return [space_table(ctx), workload_table(ctx)]


def space_table(ctx) -> Table:
    dataset = ctx.dataset("adult")
    training = TrainingSpec(
        task=dataset.stats.task, tolerance=1e-2, max_iter=ctx.max_iter,
        seed=ctx.seed,
    )
    rows = []
    for algorithms in ALGORITHM_SETS:
        plans = enumerate_plans(algorithms)
        optimizer = GDOptimizer(
            ctx.engine(4), estimator=ctx.estimator(), algorithms=algorithms
        )
        report = optimizer.optimize(dataset, training)
        rows.append({
            "algorithms": "+".join(algorithms),
            "plans": len(plans),
            "chosen": str(report.chosen_plan),
            "est_total_s": round(report.chosen.total_s, 2),
            "optimizer_wall_s": round(report.optimizer_wall_s, 2),
        })
    return Table(
        experiment="Extension A",
        title="Search space parameterized by the algorithm registry",
        columns=["algorithms", "plans", "chosen", "est_total_s",
                 "optimizer_wall_s"],
        rows=rows,
        notes=["each extra stochastic algorithm adds the five "
               "transformation x sampling variants of Figure 5.",
               "grad_avg and arc are registered plugins -- the optimizer "
               "enumerates and costs them through the same AlgorithmSpec "
               "seam as the paper's built-ins."],
    )


def workload_table(ctx) -> Table:
    rows = []
    winners = set()
    for name, epsilon, step, max_iter, batch in WORKLOADS:
        dataset = ctx.dataset(name)
        training = TrainingSpec(
            task=dataset.stats.task, tolerance=epsilon, step_size=step,
            max_iter=max_iter, seed=ctx.seed,
        )
        optimizer = GDOptimizer(
            ctx.engine(4),
            estimator=ctx.estimator(),
            algorithms=PLUGIN_ALGORITHMS,
            batch_sizes=gd_registry.batch_overrides(batch),
        )
        report = optimizer.optimize(dataset, training)
        winners.add(report.chosen_plan.algorithm)
        runner_up = sorted(
            (c for c in report.candidates
             if c.feasible and c.plan.algorithm != report.chosen_plan.algorithm),
            key=lambda c: c.total_s,
        )
        rows.append({
            "dataset": name,
            "epsilon": epsilon,
            "batch": batch if batch is not None else "-",
            "chosen": str(report.chosen_plan),
            "est_total_s": round(report.chosen.total_s, 2),
            "runner_up": str(runner_up[0].plan) if runner_up else "-",
            "runner_up_s": (round(runner_up[0].total_s, 2)
                            if runner_up else "-"),
        })
    notes = [
        "algorithms enumerated: " + ",".join(PLUGIN_ALGORITHMS)
        + " (the acceptance set of the plugin-layer refactor).",
        "winning algorithms across the workloads: "
        + ",".join(sorted(winners)) + ".",
    ]
    for plugin in ("grad_avg", "arc"):
        if plugin not in winners:
            notes.append(
                f"WARNING: plugin {plugin} was not chosen on any workload "
                "(expected at least one cost-based win)."
            )
    return Table(
        experiment="Extension A",
        title="Cost-based wins across the extended algorithm space",
        columns=["dataset", "epsilon", "batch", "chosen", "est_total_s",
                 "runner_up", "runner_up_s"],
        rows=rows,
        notes=notes,
    )
