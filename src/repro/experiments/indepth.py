"""Shared driver for the in-depth experiments (Figures 13-14, 17-18).

These vary one plan dimension while fixing the other:

* sampling effect  -- fix the transformation mode, compare Bernoulli /
  random-partition / shuffled-partition (Figures 13 and 17);
* transformation effect -- fix the sampling strategy, compare eager vs
  lazy (Figures 14 and 18).

All runs use the Section 8.6 settings: MGD with 1,000 samples or SGD,
tolerance 0.001, a maximum of 1,000 iterations.
"""

from __future__ import annotations

from repro.core.executor import execute_plan
from repro.core.plans import GDPlan, TrainingSpec
from repro.errors import PlanError
from repro.experiments.report import Table

#: Figures 13/14/17/18 use the seven datasets below (svm3 excluded).
INDEPTH_DATASETS = ("adult", "covtype", "yearpred", "rcv1", "higgs",
                    "svm1", "svm2")


def _execute(ctx, dataset, plan, training):
    """Returns (cell_text, iterations, seconds_per_iteration)."""
    result = execute_plan(ctx.engine(1), dataset, plan, training)
    per_iter = result.sim_seconds / max(result.iterations, 1)
    if result.timed_out:
        return f">{result.sim_seconds:.0f}", result.iterations, per_iter
    return round(result.sim_seconds, 2), result.iterations, per_iter


def _training(ctx, dataset):
    return TrainingSpec(
        task=dataset.stats.task,
        tolerance=1e-3,
        max_iter=ctx.max_iter,
        time_budget_s=ctx.time_limit_s,
        seed=ctx.seed,
    )


def sampling_effect(ctx, algorithm, transform_mode, experiment, title):
    """Vary the sampler with the transformation fixed (Fig. 13 / 17)."""
    samplers = ("bernoulli", "random", "shuffle")
    datasets = [d for d in INDEPTH_DATASETS if d in ctx.datasets] \
        if ctx.quick else INDEPTH_DATASETS
    rows = []
    for name in datasets:
        dataset = ctx.dataset(name)
        training = _training(ctx, dataset)
        row = {"dataset": name, "partitions": dataset.n_partitions}
        for sampler in samplers:
            try:
                plan = GDPlan(algorithm, transform_mode, sampler)
            except PlanError:
                # lazy + bernoulli is excluded from the plan space
                row[f"{sampler}_s"] = "n/a"
                continue
            cell, iters, per_iter = _execute(ctx, dataset, plan, training)
            row[f"{sampler}_s"] = cell
            row[f"{sampler}_it"] = iters
            row[f"{sampler}_ms/it"] = round(per_iter * 1e3, 2)
        rows.append(row)
    return Table(
        experiment=experiment,
        title=title,
        columns=["dataset", "partitions",
                 "bernoulli_s", "bernoulli_ms/it",
                 "random_s", "random_ms/it",
                 "shuffle_s", "shuffle_ms/it"],
        rows=rows,
        notes=[
            "paper: Bernoulli competitive only on single-partition "
            "datasets; shuffled-partition wins once data spans multiple "
            "partitions (it reads only one).  ms/it isolates the "
            "sampling mechanism from iteration-count randomness.",
        ],
    )


def transform_effect(ctx, algorithms, sampler, experiment, title):
    """Vary eager/lazy with the sampler fixed (Fig. 14 / 18)."""
    datasets = [d for d in INDEPTH_DATASETS if d in ctx.datasets] \
        if ctx.quick else INDEPTH_DATASETS
    rows = []
    for name in datasets:
        dataset = ctx.dataset(name)
        training = _training(ctx, dataset)
        for algorithm in algorithms:
            row = {"dataset": name, "algorithm": algorithm}
            for mode in ("eager", "lazy"):
                cell, iters, per_iter = _execute(
                    ctx, dataset, GDPlan(algorithm, mode, sampler), training
                )
                row[f"{mode}_s"] = cell
                row[f"{mode}_it"] = iters
            rows.append(row)
    return Table(
        experiment=experiment,
        title=title,
        columns=["dataset", "algorithm", "eager_s", "eager_it",
                 "lazy_s", "lazy_it"],
        rows=rows,
        notes=[
            "paper: SGD benefits from lazy transformation whenever the "
            "per-sample parse work stays below the one-time full "
            "transform (always true at the paper's SGD iteration "
            "counts); MGD prefers eager once it touches most units.",
        ],
    )
