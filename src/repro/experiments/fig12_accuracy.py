"""Figure 12: testing error (MSE) of MGD and SGD across systems.

80/20 train/test split; every system trains with identical parameters
and the mean squared error of predicted labels is compared.  Expected
shape (Section 8.5): ML4all's aggressive sampling does *not* hurt
accuracy -- errors match MLlib/SystemML closely -- except SGD on rcv1,
where the shuffled-partition sampler meets the dataset's skewed row
order (our rcv1 stand-in is label-sorted for exactly this reason) and
the error rises above MLlib's.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import MLlibBaseline, SystemMLBaseline
from repro.cluster import PartitionedDataset
from repro.core.executor import execute_plan
from repro.core.optimizer import GDOptimizer
from repro.core.plans import TrainingSpec
from repro.data.splits import train_test_split
from repro.experiments.common import ExperimentContext
from repro.experiments.report import Table
from repro.gd.gradients import task_gradient

ALGORITHMS = ("mgd", "sgd")
BATCH = 1000


def _mse(weights, task, X, y):
    if weights is None:
        return None
    pred = task_gradient(task).predict(weights, X)
    return float(np.mean((pred - y) ** 2))


def run(ctx=None) -> Table:
    ctx = ctx or ExperimentContext.from_env()
    datasets = [n for n in ctx.datasets if n != "svm3"]
    rows = []
    rng = np.random.default_rng(ctx.seed)
    for name in datasets:
        full = ctx.dataset(name)
        X_train, y_train, X_test, y_test = train_test_split(
            full.X, full.y, test_fraction=0.2, rng=rng
        )
        # Training rows keep the original order => skew is preserved.
        train_ds = PartitionedDataset(
            X_train, y_train,
            full.stats, ctx.spec, representation="text",
        )
        task = full.stats.task
        training = TrainingSpec(
            task=task, tolerance=1e-3, max_iter=ctx.max_iter, seed=ctx.seed
        )
        for algorithm in ALGORITHMS:
            row = {"dataset": name, "algorithm": algorithm}

            mllib = MLlibBaseline().train(
                ctx.engine(1), train_ds, training, algorithm,
                batch_size=BATCH, time_limit_s=ctx.time_limit_s,
            )
            row["mllib_mse"] = _mse(mllib.weights, task, X_test, y_test)

            sysml = SystemMLBaseline().train(
                ctx.engine(2), train_ds, training, algorithm,
                batch_size=BATCH, time_limit_s=ctx.time_limit_s,
            )
            row["systemml_mse"] = _mse(sysml.weights, task, X_test, y_test)

            engine = ctx.engine(3)
            optimizer = GDOptimizer(
                engine, estimator=ctx.estimator(),
                algorithms=(algorithm,), batch_sizes={"mgd": BATCH},
            )
            report = optimizer.optimize(train_ds, training)
            result = execute_plan(
                engine, train_ds, report.chosen_plan, training
            )
            row["ml4all_mse"] = _mse(result.weights, task, X_test, y_test)
            row["ml4all_plan"] = str(report.chosen_plan)
            rows.append(row)

    return Table(
        experiment="Figure 12",
        title="Testing error (MSE), 80/20 split",
        columns=["dataset", "algorithm", "mllib_mse", "systemml_mse",
                 "ml4all_mse", "ml4all_plan"],
        rows=rows,
        notes=[
            "paper: ML4all's error matches MLlib/SystemML despite "
            "aggressive sampling; the exception is SGD on (skewed) rcv1 "
            "with shuffled-partition sampling.",
        ],
    )
