"""Table 2: the dataset suite (paper-scale stats of the registry)."""

from __future__ import annotations

from repro.data.datasets import PAPER_ORDER, REGISTRY
from repro.experiments.common import ExperimentContext
from repro.experiments.report import Table

GB = 1024 ** 3
MB = 1024 ** 2


def run(ctx=None) -> Table:
    ctx = ctx or ExperimentContext.from_env()
    rows = []
    for name in PAPER_ORDER:
        spec = REGISTRY[name]
        size = spec.paper_bytes
        size_str = f"{size / GB:.1f}G" if size >= GB else f"{size / MB:.0f}M"
        rows.append({
            "name": name,
            "task": {"logreg": "LogR", "linreg": "LinR", "svm": "SVM"}[
                spec.task
            ],
            "points": f"{spec.paper_n:,}",
            "features": f"{spec.d:,}",
            "size": size_str,
            "density": spec.density,
            "physical_rows": f"{spec.phys_n:,}",
        })
    return Table(
        experiment="Table 2",
        title="Real and synthetic ML datasets (simulated at paper scale)",
        columns=["name", "task", "points", "features", "size", "density",
                 "physical_rows"],
        rows=rows,
        notes=["'points'/'size' are the simulated (paper-scale) stats; "
               "'physical_rows' is the scaled-down stand-in the math "
               "runs on."],
    )
