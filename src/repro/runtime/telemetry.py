"""Execution monitors: telemetry recording and divergence detection.

:class:`PlanExecutor` accepts a duck-typed monitor whose
``on_iteration(iteration, delta, clock)`` hook is called after every
training iteration; a truthy return value requests a graceful stop.
Two monitors live here:

* :class:`TelemetryRecorder` -- pure observation.  Records the
  per-iteration error curve and simulated clock so a structured
  :class:`~repro.runtime.trace.ExecutionTrace` can be assembled.  Never
  stops a run; attaching one is behaviour-preserving.
* :class:`ConvergenceMonitor` -- the mid-flight tripwire.  Every
  ``refit_every`` iterations it refits the observed error curve
  (Section 5's machinery, re-applied online) and compares both the
  *convergence* trajectory and the *cost* trajectory against what the
  optimizer speculated.  When either diverges beyond its threshold it
  requests a stop so the adaptive trainer can re-run plan selection over
  the remaining error budget.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.curve_fit import fit_error_sequence
from repro.errors import EstimationError
from repro.runtime.trace import IterationRecord


@dataclasses.dataclass(frozen=True)
class AdaptiveSettings:
    """Knobs of the adaptive runtime (monitor + trainer)."""

    #: Refit the observed error curve every this many iterations.
    refit_every: int = 25
    #: Minimum observed iterations before any divergence verdict.
    min_points: int = 10
    #: Trigger when the projected iterations-to-target exceed the
    #: speculated estimate by this factor (worse-than-promised
    #: convergence).
    divergence_factor: float = 2.0
    #: Trigger when observed per-iteration simulated cost exceeds the
    #: cost model's prediction by this factor (mis-modelled hardware or
    #: a perturbed cost model).
    cost_divergence_factor: float = 2.0
    #: Error-sequence model used for online refits.
    curve_model: str = "power"
    #: Minimum log-space R^2 before an online refit (or the speculated
    #: curve itself) is trusted -- stochastic plans produce noisy delta
    #: sequences whose bad fits extrapolate to nonsense.
    min_refit_r2: float = 0.3
    #: Maximum number of mid-flight plan switches per training run.
    max_switches: int = 2

    def __post_init__(self):
        if self.refit_every < 1:
            raise ValueError("refit_every must be >= 1")
        if self.divergence_factor <= 1.0:
            raise ValueError("divergence_factor must be > 1")
        if self.cost_divergence_factor <= 1.0:
            raise ValueError("cost_divergence_factor must be > 1")


class TelemetryRecorder:
    """Monitor that records per-iteration telemetry and never stops."""

    def __init__(self):
        self.records = []

    # -- executor hook ---------------------------------------------------
    def on_iteration(self, iteration, delta, clock) -> bool:
        self.records.append(IterationRecord(iteration, float(delta), clock))
        return False

    # -- derived telemetry ----------------------------------------------
    @property
    def iterations(self) -> int:
        return len(self.records)

    @property
    def deltas(self):
        return [r.delta for r in self.records]

    def observed_per_iteration_s(self) -> float | None:
        """Mean simulated seconds per iteration from clock differences.

        The first record absorbs one-time costs (Stage, eager Transform),
        so the average is taken over the *gaps* between records; needs at
        least two records.
        """
        if len(self.records) < 2:
            return None
        first, last = self.records[0], self.records[-1]
        span = last.clock - first.clock
        steps = last.iteration - first.iteration
        if steps <= 0 or span < 0:
            return None
        return span / steps


class ConvergenceMonitor(TelemetryRecorder):
    """Detects divergence from the speculated curve / predicted cost.

    Parameters
    ----------
    target_tolerance:
        The training run's epsilon (where the error budget ends).
    speculated_curve:
        The :class:`~repro.core.curve_fit.FittedCurve` the optimizer's
        iteration estimate came from, or None (fixed iteration counts)
        to disable curve-divergence checks.
    predicted_iterations:
        The optimizer's T(epsilon) estimate for the running plan.
    predicted_per_iteration_s:
        The cost model's per-iteration seconds for the running plan
        (<= 0 disables cost-divergence checks).
    settings:
        :class:`AdaptiveSettings` thresholds.
    iteration_offset:
        Global iterations completed before this segment started.  The
        speculated curve describes decay from scratch, so a post-switch
        segment -- which starts mid-way down the curve -- must be
        compared at ``local_iteration + offset``: evaluating
        ``error_at(local_i)`` would over-promise decay the run already
        banked and fire spurious divergence verdicts.  (The overrun
        check stays segment-local: ``predicted_iterations`` for a
        post-switch segment is the re-optimizer's *remaining* count.)
    """

    def __init__(
        self,
        target_tolerance,
        speculated_curve=None,
        predicted_iterations=None,
        predicted_per_iteration_s=None,
        settings=None,
        iteration_offset=0,
    ):
        super().__init__()
        self.target_tolerance = float(target_tolerance)
        self.speculated_curve = speculated_curve
        self.iteration_offset = int(iteration_offset)
        self.predicted_iterations = (
            None if predicted_iterations is None else int(predicted_iterations)
        )
        self.predicted_per_iteration_s = (
            None if predicted_per_iteration_s is None
            else float(predicted_per_iteration_s)
        )
        self.settings = settings or AdaptiveSettings()
        #: Set when a divergence verdict fires.
        self.diverged = False
        self.reason = None
        #: True when the verdict came from the convergence curve (as
        #: opposed to per-iteration cost) -- the re-optimizer then knows
        #: not to trust the speculated curve for the running algorithm.
        self.curve_diverged = False
        #: Latest acceptable online refit of the observed error curve.
        self.refit_curve = None

    # -- executor hook ---------------------------------------------------
    def on_iteration(self, iteration, delta, clock) -> bool:
        super().on_iteration(iteration, delta, clock)
        if self.diverged:
            return True
        n = len(self.records)
        if n < self.settings.min_points or n % self.settings.refit_every:
            return False
        self._check_cost()
        if not self.diverged:
            self._check_curve()
        return self.diverged

    # -- divergence checks ----------------------------------------------
    def observed_cost_ratio(self) -> float | None:
        """Observed / predicted per-iteration cost, or None if unknown."""
        if not self.predicted_per_iteration_s:
            return None
        observed = self.observed_per_iteration_s()
        if observed is None or self.predicted_per_iteration_s <= 0:
            return None
        return observed / self.predicted_per_iteration_s

    def _check_cost(self):
        ratio = self.observed_cost_ratio()
        if ratio is None:
            return
        if ratio > self.settings.cost_divergence_factor:
            self.diverged = True
            self.reason = (
                f"per-iteration cost {ratio:.2f}x the cost model's "
                f"prediction ({self.observed_per_iteration_s():.4g}s vs "
                f"{self.predicted_per_iteration_s:.4g}s)"
            )

    def _refit(self):
        """Online curve refit, kept only when the fit is trustworthy."""
        try:
            curve = fit_error_sequence(
                self.deltas, model=self.settings.curve_model
            )
        except EstimationError:
            try:
                curve = fit_error_sequence(self.deltas, model="auto")
            except EstimationError:
                return None
        if curve.r2 < self.settings.min_refit_r2:
            return None
        return curve

    def recent_window(self):
        """(median iteration, median delta) of the trailing window.

        Stochastic plans produce spiky delta sequences; the window
        median is the noise-robust "where is the error now" estimate.
        Both medians come from the *same* window, so the observed error
        is compared against the curve at the iteration it actually
        represents -- comparing a window median against the curve's
        value at the window's trailing edge would over-read the error by
        half a window of curve decay.
        """
        window = self.records[-self.settings.refit_every:]
        if not window:
            return None, float("inf")
        mid = int(np.median([r.iteration for r in window]))
        return max(1, mid), float(np.median([r.delta for r in window]))

    def _check_curve(self):
        """Convergence divergence, two noise-robust criteria.

        1. **Overrun**: we are ``divergence_factor`` times past the
           predicted iteration count and still running.  Extrapolation-
           free, so it works however noisy the deltas are.
        2. **Error-space**: the windowed median of observed deltas is
           ``divergence_factor`` times the error the speculated curve
           promised at this iteration.  Catches slow convergence early,
           but only when the speculated fit itself was trustworthy and
           has not decayed below the target (where criterion 1 takes
           over anyway).
        """
        if self.speculated_curve is None or self.predicted_iterations is None:
            return
        factor = self.settings.divergence_factor
        i = self.records[-1].iteration
        predicted = max(1, self.predicted_iterations)
        if i > factor * predicted:
            self.diverged = True
            self.curve_diverged = True
            self.refit_curve = self._refit()
            self.reason = (
                f"iteration {i} is {i / predicted:.1f}x past the "
                f"speculated T(epsilon)={predicted} without converging"
            )
            return
        if self.speculated_curve.r2 < self.settings.min_refit_r2:
            return
        i_mid, observed = self.recent_window()
        if i_mid is None:
            return
        try:
            expected = self.speculated_curve.error_at(
                i_mid + self.iteration_offset
            )
        except EstimationError:
            return
        if not np.isfinite(expected) or expected < self.target_tolerance:
            return
        if observed > factor * expected:
            self.diverged = True
            self.curve_diverged = True
            self.refit_curve = self._refit()
            self.reason = (
                f"observed error {observed:.3g} around global iteration "
                f"{i_mid + self.iteration_offset} is "
                f"{observed / expected:.1f}x the speculated curve's "
                f"{expected:.3g} ({self.speculated_curve.describe()})"
            )
