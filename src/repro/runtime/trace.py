"""Structured execution telemetry: the :class:`ExecutionTrace`.

The adaptive runtime records what a training run *actually did* -- per
iteration simulated time, per-phase cost, and the observed error curve --
next to what the optimizer *predicted* it would do.  The trace is the
currency of the whole subsystem: the calibration store consumes traces to
learn correction factors, the mid-flight re-optimizer consumes the live
prefix of one to decide whether the speculated convergence curve still
holds, and users inspect them to see why a plan was switched.

Traces are plain data (JSON round-trippable) so they can be persisted
next to the calibration store and shipped between processes.
"""

from __future__ import annotations

import dataclasses
import json

from repro.gd.state import known_fields

#: Format version of one serialized ExecutionTrace.  Version 2 added
#: optimizer-state carry-over: segments record the OptimizerState
#: snapshot at exit (``state``) and the transfer-policy notes applied at
#: entry (``state_transfer``).  Readers tolerate unknown keys (via
#: :func:`~repro.gd.state.known_fields`), so newer traces degrade
#: gracefully when read by older code (the new fields are simply
#: ignored) and older traces load with the new fields defaulted.
TRACE_FORMAT = 2


@dataclasses.dataclass(frozen=True)
class IterationRecord:
    """One observed training iteration."""

    #: 1-based iteration index within its plan segment.
    iteration: int
    #: Convergence delta (the error-curve observation) after the update.
    delta: float
    #: Simulated cluster clock at the end of the iteration.
    clock: float


@dataclasses.dataclass
class PlanSegment:
    """One contiguous run of a single plan within a training run.

    A one-shot run has exactly one segment; every mid-flight plan switch
    starts a new one.  Predicted quantities are the optimizer's
    cost-model view at the moment the segment was chosen; observed
    quantities come from the executor telemetry.
    """

    plan: str
    algorithm: str
    predicted_iterations: int
    predicted_per_iteration_s: float
    predicted_total_s: float
    #: Calibration factors already baked into the predictions above.
    #: Observed/predicted ratios are *relative* to these; composing them
    #: back in recovers the absolute observed/base-model factor (without
    #: this, a calibrated store would see ratio ~1 on every later run
    #: and decay its learned factors toward the square root of the true
    #: mis-estimate).
    applied_cost_factor: float = 1.0
    applied_iterations_factor: float = 1.0
    iterations: int = 0
    sim_seconds: float = 0.0
    converged: bool = False
    stopped_by_monitor: bool = False
    #: Mean simulated seconds per loop iteration, measured from the
    #: telemetry clock gaps so one-time costs (Stage, eager Transform)
    #: are excluded -- the predicted_per_iteration_s it is compared
    #: against is per-iteration-only too.  0 when telemetry could not
    #: measure it (fewer than 2 iterations observed).
    observed_per_iteration_s: float = 0.0
    #: Observed (iteration, delta) error curve of this segment.
    deltas: list = dataclasses.field(default_factory=list)
    #: Simulated seconds per phase, for this segment only.
    phase_seconds: dict = dataclasses.field(default_factory=dict)
    #: :class:`~repro.gd.state.OptimizerState` snapshot (as a dict) at
    #: segment exit -- what a resume would import.  None for traces
    #: recorded before carry-over existed (TRACE_FORMAT < 2).
    state: dict | None = None
    #: Transfer-policy notes applied when this segment's entry state was
    #: derived from the previous segment (empty for the first segment).
    state_transfer: list = dataclasses.field(default_factory=list)
    #: True for the in-flight prefix of a segment captured by a mid-run
    #: checkpoint: the run was still inside this segment when the
    #: snapshot was taken, so its totals are not final.  A resume keeps
    #: the prefix -- it is the crashed process's genuinely executed
    #: history -- and continues with new segments after it.  (Additive
    #: format-2 field; older readers drop it.)
    partial: bool = False

    @property
    def effective_per_iteration_s(self) -> float:
        """Observed per-iteration cost, falling back to the crude
        whole-segment mean (which includes one-time costs) only when
        telemetry could not measure clock gaps."""
        if self.observed_per_iteration_s > 0:
            return self.observed_per_iteration_s
        if self.iterations <= 0:
            return 0.0
        return self.sim_seconds / self.iterations

    @property
    def cost_ratio(self) -> float:
        """Observed / predicted per-iteration cost (1.0 when unknown)."""
        if self.predicted_per_iteration_s <= 0 or self.iterations <= 0:
            return 1.0
        return self.effective_per_iteration_s / self.predicted_per_iteration_s

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload) -> "PlanSegment":
        return cls(**known_fields(cls, payload))


@dataclasses.dataclass
class SwitchEvent:
    """One mid-flight plan switch decision."""

    #: Global iteration index (across segments) at which the switch fired.
    iteration: int
    from_plan: str
    to_plan: str
    #: Human-readable divergence diagnosis from the convergence monitor.
    reason: str
    #: Simulated clock at the switch.
    clock: float

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload) -> "SwitchEvent":
        return cls(**known_fields(cls, payload))


@dataclasses.dataclass
class ExecutionTrace:
    """Everything one (possibly adaptive) training run observed."""

    workload: str
    cluster_signature: str
    tolerance: float
    segments: list = dataclasses.field(default_factory=list)
    switches: list = dataclasses.field(default_factory=list)

    @property
    def total_iterations(self) -> int:
        return sum(s.iterations for s in self.segments)

    @property
    def sim_seconds(self) -> float:
        return sum(s.sim_seconds for s in self.segments)

    @property
    def converged(self) -> bool:
        return bool(self.segments) and self.segments[-1].converged

    @property
    def switched(self) -> bool:
        return bool(self.switches)

    @property
    def final_plan(self) -> str | None:
        return self.segments[-1].plan if self.segments else None

    @property
    def all_deltas(self) -> list:
        """The run's full error sequence: per-segment deltas
        concatenated in execution order (the trajectory resume-
        equivalence checks compare bit-for-bit)."""
        return [d for segment in self.segments for d in segment.deltas]

    def with_partial(self, segment) -> "ExecutionTrace":
        """A checkpointable snapshot: this trace's completed segments
        plus one in-flight ``partial`` segment.  The segment lists are
        copied, so mutating the live trace afterwards does not reach
        into an already-written checkpoint."""
        return ExecutionTrace(
            workload=self.workload,
            cluster_signature=self.cluster_signature,
            tolerance=self.tolerance,
            segments=list(self.segments) + [segment],
            switches=list(self.switches),
        )

    def summary(self) -> str:
        plans = " -> ".join(s.plan for s in self.segments) or "(no segments)"
        status = "converged" if self.converged else "not converged"
        return (
            f"{self.workload}: {plans}, {self.total_iterations} iterations, "
            f"{status}, {self.sim_seconds:.2f}s simulated, "
            f"{len(self.switches)} switch(es)"
        )

    # -- serialisation ---------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "trace_format": TRACE_FORMAT,
            "workload": self.workload,
            "cluster_signature": self.cluster_signature,
            "tolerance": self.tolerance,
            "segments": [s.to_dict() for s in self.segments],
            "switches": [s.to_dict() for s in self.switches],
        }

    @classmethod
    def from_dict(cls, payload) -> "ExecutionTrace":
        return cls(
            workload=payload["workload"],
            cluster_signature=payload["cluster_signature"],
            tolerance=payload["tolerance"],
            segments=[PlanSegment.from_dict(s) for s in payload["segments"]],
            switches=[SwitchEvent.from_dict(s) for s in payload["switches"]],
        )

    def save(self, path) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)

    @classmethod
    def load(cls, path) -> "ExecutionTrace":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))


def segment_from_result(result, estimate,
                        observed_per_iteration_s=None,
                        state_transfer=None) -> PlanSegment:
    """Build a :class:`PlanSegment` from a TrainResult + PlanCostEstimate.

    ``observed_per_iteration_s`` should come from the telemetry
    monitor's clock gaps (one-time costs excluded); without it the
    segment falls back to the whole-run mean.  ``state_transfer`` lists
    the carry/drop notes of the transfer that produced this segment's
    entry state.
    """
    breakdown = estimate.breakdown or {}
    return PlanSegment(
        plan=str(result.plan),
        algorithm=result.plan.algorithm,
        predicted_iterations=int(estimate.estimated_iterations),
        predicted_per_iteration_s=float(estimate.per_iteration_s),
        predicted_total_s=float(estimate.total_s),
        applied_cost_factor=float(
            breakdown.get("calibration:cost_factor", 1.0)
        ),
        applied_iterations_factor=float(
            breakdown.get("calibration:iterations_factor", 1.0)
        ),
        iterations=int(result.iterations),
        sim_seconds=float(result.sim_seconds),
        converged=bool(result.converged),
        stopped_by_monitor=bool(result.stopped_by_monitor),
        observed_per_iteration_s=float(observed_per_iteration_s or 0.0),
        deltas=[float(d) for d in result.deltas],
        phase_seconds={k: float(v) for k, v in result.phase_seconds.items()},
        state=(
            result.state.to_dict() if result.state is not None else None
        ),
        state_transfer=list(state_transfer or []),
    )
