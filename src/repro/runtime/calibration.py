"""Online cost-model calibration from execution traces.

The optimizer's estimates err in two separable ways:

* the **cost model** can mis-price an algorithm's per-iteration work on
  the actual hardware (Figure 7 bounds this at ~17% on the paper's
  cluster, but a drifted spec or a deliberately perturbed model can be
  off by integer factors), and
* the **iterations estimator** can mis-extrapolate T(epsilon) from a
  speculative sample.

The :class:`CalibrationStore` learns a multiplicative correction for
each, from observed :class:`~repro.runtime.trace.ExecutionTrace`
segments -- the Delta-style feedback loop (PAPERS.md) that closes the
gap between predicted and observed cost.  Keys are **two-level**:
every observation feeds an ``(algorithm, cluster)`` aggregate, and --
when the observer names the workload -- a ``(workload, algorithm,
cluster)`` specialisation that takes over once enough traces back it.
Corrections are exponentially-weighted moving averages, clamped to a
sane range, versioned (so plan caches can detect staleness), bounded
per deployment (LRU over cluster signatures) and persisted as JSON so
a restarted service starts calibrated.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import os
import threading
from collections import OrderedDict

from repro.gd.state import known_fields

#: Per-observation EWMA weight: new_factor = (1-a)*old + a*observed.
DEFAULT_ALPHA = 0.4
#: Correction factors are clamped to [1/MAX_FACTOR, MAX_FACTOR].
MAX_FACTOR = 100.0
#: A workload-level correction is preferred over the algorithm-level
#: fallback once this many observations back it (a single trace is too
#: noisy to override the cross-workload aggregate).
MIN_WORKLOAD_OBSERVATIONS = 3


def _compute_signature(spec) -> str:
    if dataclasses.is_dataclass(spec) and not isinstance(spec, type):
        payload = sorted(dataclasses.asdict(spec).items())
    else:  # pragma: no cover - ClusterSpec is a dataclass
        payload = sorted(vars(spec).items())
    return hashlib.sha256(repr(payload).encode()).hexdigest()[:16]


@functools.lru_cache(maxsize=128)
def _cached_signature(spec) -> str:
    return _compute_signature(spec)


def cluster_signature(spec) -> str:
    """Short stable digest identifying one cluster configuration.

    Memoized (ClusterSpec is a hashable frozen dataclass): the store is
    consulted per algorithm on every optimize call, and hashing the
    whole spec each time is pure overhead on the cache-recost hot path.
    """
    try:
        return _cached_signature(spec)
    except TypeError:  # pragma: no cover - unhashable custom spec
        return _compute_signature(spec)


def workload_signature(stats) -> str:
    """Short stable digest identifying one workload (dataset statistics).

    Two datasets with identical Table 1 statistics are the same workload
    to the cost model, so they share calibration: the digest covers the
    :class:`~repro.cluster.storage.DatasetStats` fields, nothing else.
    Used as the first level of the store's two-level (workload ->
    algorithm) correction keys.
    """
    try:
        return _cached_signature(stats)
    except TypeError:  # pragma: no cover - custom unhashable stats
        return _compute_signature(stats)


def _clamp(value) -> float:
    return float(min(max(value, 1.0 / MAX_FACTOR), MAX_FACTOR))


@dataclasses.dataclass
class Correction:
    """Learned corrections for one (algorithm, cluster) pair.

    ``cost_factor`` multiplies the cost model's per-iteration seconds;
    ``iterations_factor`` multiplies the speculative T(epsilon) estimate.
    Identity (1.0 / 1.0) until observations arrive.  Each factor tracks
    its own observation count: a segment that never converged observes
    cost but says nothing about iterations.
    """

    cost_factor: float = 1.0
    iterations_factor: float = 1.0
    cost_observations: int = 0
    iterations_observations: int = 0

    @property
    def observations(self) -> int:
        return self.cost_observations + self.iterations_observations

    @property
    def is_identity(self) -> bool:
        return self.observations == 0

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload) -> "Correction":
        # Tolerate additive fields (same forward-compatibility rule as
        # PlanSegment.from_dict): a calibration file written by a newer
        # build must stay readable here, not TypeError at construction.
        return cls(**known_fields(cls, payload))


class CalibrationStore:
    """Thread-safe store of learned cost/iteration corrections.

    Corrections live under **two-level keys**:

    * ``algorithm@cluster`` -- the aggregate over every workload, always
      updated; and
    * ``workload|algorithm@cluster`` -- workload-specific, updated when
      the observer can name the workload.

    Lookups prefer the workload-level correction once it has accumulated
    ``min_workload_observations`` observations and fall back to the
    algorithm-level aggregate until then -- a fresh workload starts from
    what *other* workloads taught about the algorithm instead of from
    identity.

    ``version`` increments on every update (and on every eviction);
    :meth:`state_digest` fingerprints the served correction state
    itself.  Cache layers stamp their entries with the digest to notice
    when calibrated estimates changed under them (see
    :class:`~repro.service.OptimizerService` -- a stale stamp triggers a
    re-cost from cached speculation, never a blind reuse; the digest,
    unlike the counter, stays comparable across restarts and across
    processes sharing one persisted store).

    ``max_clusters`` (optional) bounds the number of distinct cluster
    signatures retained, LRU by observation/lookup recency: multi-tenant
    deployments that see a long tail of one-off cluster specs stay
    bounded, while every active tenant's corrections survive.

    ``path`` (optional) enables persistence: :meth:`save` writes the
    store as JSON and :meth:`open` restores it, so a restarted
    ``repro serve`` starts calibrated.
    """

    def __init__(self, path=None, alpha=DEFAULT_ALPHA, max_clusters=None,
                 min_workload_observations=MIN_WORKLOAD_OBSERVATIONS):
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if max_clusters is not None and max_clusters < 1:
            raise ValueError("max_clusters must be >= 1")
        self.path = path
        self.alpha = float(alpha)
        self.max_clusters = max_clusters
        self.min_workload_observations = int(min_workload_observations)
        self.version = 0
        self._digest = None
        self._corrections = {}
        #: Cluster signatures ordered by recency (LRU eviction order).
        self._clusters = OrderedDict()
        self._lock = threading.Lock()

    # -- lookup ----------------------------------------------------------
    @staticmethod
    def _key(algorithm, signature, workload=None) -> str:
        base = f"{algorithm}@{signature}"
        return f"{workload}|{base}" if workload else base

    def _touch_cluster(self, signature, insert=False) -> None:
        """Mark one cluster signature as recently used (lock held).

        Lookups only refresh recency of *tracked* clusters; inserting is
        reserved for observations, so a scan of never-calibrated specs
        cannot evict real corrections.
        """
        if insert or signature in self._clusters:
            self._clusters[signature] = None
            self._clusters.move_to_end(signature)

    def _evict_lru_clusters(self) -> None:
        """Drop whole clusters beyond ``max_clusters`` (lock held)."""
        if self.max_clusters is None:
            return
        while len(self._clusters) > self.max_clusters:
            signature, _ = self._clusters.popitem(last=False)
            suffix = "@" + signature
            stale = [k for k in self._corrections if k.endswith(suffix)]
            for key in stale:
                del self._corrections[key]
            if stale:
                # Served corrections changed: caches must notice.
                self.version += 1
                self._digest = None

    def correction(self, algorithm, spec, workload=None) -> Correction:
        """The learned correction (identity when nothing was observed).

        With ``workload`` (a :func:`workload_signature` digest) the
        workload-specific correction is returned once it has enough
        observations; otherwise the algorithm-level aggregate.
        """
        signature = cluster_signature(spec)
        with self._lock:
            self._touch_cluster(signature)
            if workload:
                found = self._corrections.get(
                    self._key(algorithm, signature, workload)
                )
                if found is not None and (
                    found.observations >= self.min_workload_observations
                ):
                    return dataclasses.replace(found)
            found = self._corrections.get(self._key(algorithm, signature))
            return dataclasses.replace(found) if found else Correction()

    def corrections_for(self, spec) -> dict:
        """{algorithm: Correction} aggregates for one cluster
        (workload-level keys are not included)."""
        suffix = "@" + cluster_signature(spec)
        with self._lock:
            return {
                key[: -len(suffix)]: dataclasses.replace(value)
                for key, value in self._corrections.items()
                if key.endswith(suffix) and "|" not in key
            }

    @property
    def observations(self) -> int:
        with self._lock:
            return sum(c.observations for c in self._corrections.values())

    def state_digest(self) -> str:
        """Content digest of the correction state being served.

        Two stores with equal digests serve identical factors --
        whatever their histories.  This is what cache layers should
        stamp entries with: unlike the ``version`` counter it is
        comparable across store lifetimes and across processes (every
        pristine store with the same configuration digests the same),
        so a persisted plan priced under state X is recognised as
        current exactly when the live store still serves X.  The
        workload threshold is part of the digest because it changes
        which of the stored factors a lookup serves, not just their
        values.  Cached and invalidated on update, so the hot cache-hit
        path pays a dict lookup, not a hash.
        """
        with self._lock:
            if self._digest is None:
                payload = (
                    self.min_workload_observations,
                    sorted(
                        (key, c.cost_factor, c.iterations_factor,
                         c.cost_observations, c.iterations_observations)
                        for key, c in self._corrections.items()
                    ),
                )
                self._digest = hashlib.sha256(
                    repr(payload).encode()
                ).hexdigest()[:16]
            return self._digest

    # -- learning --------------------------------------------------------
    def observe(self, algorithm, spec, cost_ratio=None,
                iterations_ratio=None, workload=None) -> Correction:
        """Fold one observed/predicted ratio pair into the store.

        Either ratio may be None (unobservable for this trace -- e.g.
        the iterations ratio of a segment that never converged).  With
        ``workload`` the observation feeds both the workload-specific
        key and the algorithm-level aggregate (one version bump).
        Returns the updated workload-level correction when a workload
        was named, the aggregate otherwise.
        """
        if cost_ratio is None and iterations_ratio is None:
            return self.correction(algorithm, spec, workload=workload)
        signature = cluster_signature(spec)
        a = self.alpha

        def fold(factor, count, ratio):
            if ratio is None or ratio <= 0:
                return factor, count
            ratio = _clamp(ratio)
            if count == 0:
                # The identity start is a zero-evidence prior; the first
                # real observation replaces it outright, otherwise a
                # single large mis-estimate takes 1/alpha traces to
                # surface in the corrected costs.
                return ratio, 1
            return _clamp((1 - a) * factor + a * ratio), count + 1

        def folded(current) -> Correction:
            cost, cost_n = fold(
                current.cost_factor, current.cost_observations, cost_ratio
            )
            iters, iters_n = fold(
                current.iterations_factor, current.iterations_observations,
                iterations_ratio,
            )
            return Correction(
                cost_factor=cost,
                iterations_factor=iters,
                cost_observations=cost_n,
                iterations_observations=iters_n,
            )

        keys = [self._key(algorithm, signature)]
        if workload:
            keys.append(self._key(algorithm, signature, workload))
        with self._lock:
            changed = False
            updated = Correction()
            for key in keys:
                current = self._corrections.get(key, Correction())
                updated = folded(current)
                if updated != current:
                    self._corrections[key] = updated
                    changed = True
            if changed:
                # Only a real change to the served factors may bump the
                # version and invalidate the digest: a no-op observation
                # (e.g. both ratios non-positive) must not force every
                # stamped cache entry fleet-wide into a spurious recost,
                # and must not materialise keys or touch LRU recency.
                self.version += 1
                self._digest = None
                self._touch_cluster(signature, insert=True)
                self._evict_lru_clusters()
            return dataclasses.replace(updated)

    def record_segment(self, segment, spec, workload=None) -> bool:
        """Learn from one executed plan segment.

        A segment yields a cost ratio (observed vs predicted
        per-iteration seconds); a segment that converged additionally
        yields an iterations ratio (observed vs predicted iterations to
        target) -- segments cut short by a switch or the iteration cap
        say nothing about where the curve would have ended.
        ``workload`` (a :func:`workload_signature` digest) additionally
        routes the observation to the workload-specific key.  Returns
        True when anything was folded in.
        """
        if segment.iterations < 2:
            return False
        # Segment ratios are relative to *calibrated* predictions;
        # compose the factors that were applied back in so the store
        # always learns the absolute observed/base-model factor (a
        # calibrated prediction observing ratio ~1 must reinforce the
        # current factor, not decay it toward 1).
        cost_ratio = None
        if segment.predicted_per_iteration_s > 0:
            cost_ratio = segment.cost_ratio * segment.applied_cost_factor
        iterations_ratio = None
        if segment.converged and segment.predicted_iterations > 0:
            iterations_ratio = (
                segment.iterations / segment.predicted_iterations
                * segment.applied_iterations_factor
            )
        if cost_ratio is None and iterations_ratio is None:
            return False
        self.observe(
            segment.algorithm, spec,
            cost_ratio=cost_ratio,
            iterations_ratio=iterations_ratio,
            workload=workload,
        )
        return True

    def record_trace(self, trace, spec, workload=None) -> int:
        """Learn from every segment of an execution trace."""
        return sum(
            self.record_segment(segment, spec, workload=workload)
            for segment in trace.segments
        )

    # -- persistence -----------------------------------------------------
    def to_dict(self) -> dict:
        with self._lock:
            return {
                "alpha": self.alpha,
                "version": self.version,
                "corrections": {
                    key: value.to_dict()
                    for key, value in self._corrections.items()
                },
            }

    @classmethod
    def from_dict(cls, payload, path=None, **kwargs) -> "CalibrationStore":
        """Restore a store from :meth:`to_dict` output.

        The JSON layout is stable across versions: workload-level keys
        (``workload|algorithm@cluster``) are just additional entries in
        ``corrections``, so files written before two-level keys existed
        load unchanged.  ``kwargs`` forward constructor configuration
        (``max_clusters``, ``min_workload_observations``).
        """
        store = cls(path=path, alpha=payload.get("alpha", DEFAULT_ALPHA),
                    **kwargs)
        store.version = int(payload.get("version", 0))
        store._corrections = {
            key: Correction.from_dict(value)
            for key, value in payload.get("corrections", {}).items()
        }
        # Rebuild the cluster LRU (recency order is not persisted; any
        # deterministic order is fine -- real recency re-establishes
        # itself as observations arrive).
        for key in store._corrections:
            store._clusters[key.rpartition("@")[2]] = None
        store._evict_lru_clusters()
        return store

    def save(self, path=None) -> str:
        """Persist to ``path`` (default: the store's own path)."""
        target = path or self.path
        if target is None:
            raise ValueError("no path to save the calibration store to")
        payload = self.to_dict()
        # Unique temp name per writer (same atomic-rewrite discipline as
        # JsonFileBackend): sibling processes sharing one path must not
        # race on a fixed ``{target}.tmp`` and replace a half-written
        # payload over each other's output.
        tmp = f"{target}.tmp.{os.getpid()}.{threading.get_ident()}"
        try:
            with open(tmp, "w") as handle:
                json.dump(payload, handle, indent=2)
            os.replace(tmp, target)
        finally:
            if os.path.exists(tmp):  # pragma: no cover - error paths only
                os.unlink(tmp)
        return target

    @classmethod
    def open(cls, path=None, alpha=DEFAULT_ALPHA, **kwargs) -> "CalibrationStore":
        """Load the store at ``path`` if it exists, else a fresh one.

        ``path=None`` yields a purely in-memory store.  ``kwargs``
        forward constructor configuration (``max_clusters``,
        ``min_workload_observations``).
        """
        if path and os.path.exists(path):
            with open(path) as handle:
                return cls.from_dict(json.load(handle), path=path, **kwargs)
        return cls(path=path, alpha=alpha, **kwargs)

    def summary(self) -> str:
        with self._lock:
            if not self._corrections:
                return "calibration store: empty"
            lines = [
                f"calibration store: {len(self._corrections)} key(s), "
                f"version {self.version}"
            ]
            for key in sorted(self._corrections):
                c = self._corrections[key]
                lines.append(
                    f"  {key}: cost x{c.cost_factor:.3f}, "
                    f"iterations x{c.iterations_factor:.3f} "
                    f"({c.observations} obs)"
                )
            return "\n".join(lines)
