"""Online cost-model calibration from execution traces.

The optimizer's estimates err in two separable ways:

* the **cost model** can mis-price an algorithm's per-iteration work on
  the actual hardware (Figure 7 bounds this at ~17% on the paper's
  cluster, but a drifted spec or a deliberately perturbed model can be
  off by integer factors), and
* the **iterations estimator** can mis-extrapolate T(epsilon) from a
  speculative sample.

The :class:`CalibrationStore` learns a multiplicative correction for
each, per ``(algorithm, cluster)`` key, from observed
:class:`~repro.runtime.trace.ExecutionTrace` segments -- the Delta-style
feedback loop (PAPERS.md) that closes the gap between predicted and
observed cost.  Corrections are exponentially-weighted moving averages,
clamped to a sane range, versioned (so plan caches can detect staleness)
and persisted as JSON so a restarted service starts calibrated.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import os
import threading

#: Per-observation EWMA weight: new_factor = (1-a)*old + a*observed.
DEFAULT_ALPHA = 0.4
#: Correction factors are clamped to [1/MAX_FACTOR, MAX_FACTOR].
MAX_FACTOR = 100.0


def _compute_signature(spec) -> str:
    if dataclasses.is_dataclass(spec) and not isinstance(spec, type):
        payload = sorted(dataclasses.asdict(spec).items())
    else:  # pragma: no cover - ClusterSpec is a dataclass
        payload = sorted(vars(spec).items())
    return hashlib.sha256(repr(payload).encode()).hexdigest()[:16]


@functools.lru_cache(maxsize=128)
def _cached_signature(spec) -> str:
    return _compute_signature(spec)


def cluster_signature(spec) -> str:
    """Short stable digest identifying one cluster configuration.

    Memoized (ClusterSpec is a hashable frozen dataclass): the store is
    consulted per algorithm on every optimize call, and hashing the
    whole spec each time is pure overhead on the cache-recost hot path.
    """
    try:
        return _cached_signature(spec)
    except TypeError:  # pragma: no cover - unhashable custom spec
        return _compute_signature(spec)


def _clamp(value) -> float:
    return float(min(max(value, 1.0 / MAX_FACTOR), MAX_FACTOR))


@dataclasses.dataclass
class Correction:
    """Learned corrections for one (algorithm, cluster) pair.

    ``cost_factor`` multiplies the cost model's per-iteration seconds;
    ``iterations_factor`` multiplies the speculative T(epsilon) estimate.
    Identity (1.0 / 1.0) until observations arrive.  Each factor tracks
    its own observation count: a segment that never converged observes
    cost but says nothing about iterations.
    """

    cost_factor: float = 1.0
    iterations_factor: float = 1.0
    cost_observations: int = 0
    iterations_observations: int = 0

    @property
    def observations(self) -> int:
        return self.cost_observations + self.iterations_observations

    @property
    def is_identity(self) -> bool:
        return self.observations == 0

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload) -> "Correction":
        return cls(**payload)


class CalibrationStore:
    """Thread-safe store of learned per-(algorithm, cluster) corrections.

    ``version`` increments on every update; cache layers key their
    entries on it to notice when calibrated estimates changed under
    them.  ``path`` (optional) enables persistence: :meth:`save` writes
    the store as JSON and :meth:`open` restores it, so a restarted
    ``repro serve`` starts calibrated.
    """

    def __init__(self, path=None, alpha=DEFAULT_ALPHA):
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.path = path
        self.alpha = float(alpha)
        self.version = 0
        self._corrections = {}
        self._lock = threading.Lock()

    # -- lookup ----------------------------------------------------------
    @staticmethod
    def _key(algorithm, signature) -> str:
        return f"{algorithm}@{signature}"

    def correction(self, algorithm, spec) -> Correction:
        """The learned correction (identity when nothing was observed)."""
        key = self._key(algorithm, cluster_signature(spec))
        with self._lock:
            found = self._corrections.get(key)
            return dataclasses.replace(found) if found else Correction()

    def corrections_for(self, spec) -> dict:
        """{algorithm: Correction} for one cluster."""
        suffix = "@" + cluster_signature(spec)
        with self._lock:
            return {
                key[: -len(suffix)]: dataclasses.replace(value)
                for key, value in self._corrections.items()
                if key.endswith(suffix)
            }

    @property
    def observations(self) -> int:
        with self._lock:
            return sum(c.observations for c in self._corrections.values())

    # -- learning --------------------------------------------------------
    def observe(self, algorithm, spec, cost_ratio=None,
                iterations_ratio=None) -> Correction:
        """Fold one observed/predicted ratio pair into the store.

        Either ratio may be None (unobservable for this trace -- e.g.
        the iterations ratio of a segment that never converged).
        """
        if cost_ratio is None and iterations_ratio is None:
            return self.correction(algorithm, spec)
        key = self._key(algorithm, cluster_signature(spec))
        a = self.alpha

        def fold(factor, count, ratio):
            if ratio is None or ratio <= 0:
                return factor, count
            ratio = _clamp(ratio)
            if count == 0:
                # The identity start is a zero-evidence prior; the first
                # real observation replaces it outright, otherwise a
                # single large mis-estimate takes 1/alpha traces to
                # surface in the corrected costs.
                return ratio, 1
            return _clamp((1 - a) * factor + a * ratio), count + 1

        with self._lock:
            current = self._corrections.get(key, Correction())
            cost, cost_n = fold(
                current.cost_factor, current.cost_observations, cost_ratio
            )
            iters, iters_n = fold(
                current.iterations_factor, current.iterations_observations,
                iterations_ratio,
            )
            updated = Correction(
                cost_factor=cost,
                iterations_factor=iters,
                cost_observations=cost_n,
                iterations_observations=iters_n,
            )
            self._corrections[key] = updated
            self.version += 1
            return dataclasses.replace(updated)

    def record_segment(self, segment, spec) -> bool:
        """Learn from one executed plan segment.

        A segment yields a cost ratio (observed vs predicted
        per-iteration seconds); a segment that converged additionally
        yields an iterations ratio (observed vs predicted iterations to
        target) -- segments cut short by a switch or the iteration cap
        say nothing about where the curve would have ended.  Returns
        True when anything was folded in.
        """
        if segment.iterations < 2:
            return False
        # Segment ratios are relative to *calibrated* predictions;
        # compose the factors that were applied back in so the store
        # always learns the absolute observed/base-model factor (a
        # calibrated prediction observing ratio ~1 must reinforce the
        # current factor, not decay it toward 1).
        cost_ratio = None
        if segment.predicted_per_iteration_s > 0:
            cost_ratio = segment.cost_ratio * segment.applied_cost_factor
        iterations_ratio = None
        if segment.converged and segment.predicted_iterations > 0:
            iterations_ratio = (
                segment.iterations / segment.predicted_iterations
                * segment.applied_iterations_factor
            )
        if cost_ratio is None and iterations_ratio is None:
            return False
        self.observe(
            segment.algorithm, spec,
            cost_ratio=cost_ratio,
            iterations_ratio=iterations_ratio,
        )
        return True

    def record_trace(self, trace, spec) -> int:
        """Learn from every segment of an execution trace."""
        return sum(
            self.record_segment(segment, spec) for segment in trace.segments
        )

    # -- persistence -----------------------------------------------------
    def to_dict(self) -> dict:
        with self._lock:
            return {
                "alpha": self.alpha,
                "version": self.version,
                "corrections": {
                    key: value.to_dict()
                    for key, value in self._corrections.items()
                },
            }

    @classmethod
    def from_dict(cls, payload, path=None) -> "CalibrationStore":
        store = cls(path=path, alpha=payload.get("alpha", DEFAULT_ALPHA))
        store.version = int(payload.get("version", 0))
        store._corrections = {
            key: Correction.from_dict(value)
            for key, value in payload.get("corrections", {}).items()
        }
        return store

    def save(self, path=None) -> str:
        """Persist to ``path`` (default: the store's own path)."""
        target = path or self.path
        if target is None:
            raise ValueError("no path to save the calibration store to")
        payload = self.to_dict()
        tmp = f"{target}.tmp"
        with open(tmp, "w") as handle:
            json.dump(payload, handle, indent=2)
        os.replace(tmp, target)
        return target

    @classmethod
    def open(cls, path=None, alpha=DEFAULT_ALPHA) -> "CalibrationStore":
        """Load the store at ``path`` if it exists, else a fresh one.

        ``path=None`` yields a purely in-memory store.
        """
        if path and os.path.exists(path):
            with open(path) as handle:
                return cls.from_dict(json.load(handle), path=path)
        return cls(path=path, alpha=alpha)

    def summary(self) -> str:
        with self._lock:
            if not self._corrections:
                return "calibration store: empty"
            lines = [
                f"calibration store: {len(self._corrections)} key(s), "
                f"version {self.version}"
            ]
            for key in sorted(self._corrections):
                c = self._corrections[key]
                lines.append(
                    f"  {key}: cost x{c.cost_factor:.3f}, "
                    f"iterations x{c.iterations_factor:.3f} "
                    f"({c.observations} obs)"
                )
            return "\n".join(lines)
