"""Mid-flight re-optimization: adaptive plan execution.

The one-shot optimizer picks a plan from speculative curve fits and a
static cost model, then pays for any mis-estimate until convergence.
:class:`AdaptiveTrainer` closes the loop at runtime:

1. optimize as usual and start executing the chosen plan with a
   :class:`~repro.runtime.telemetry.ConvergenceMonitor` attached;
2. the monitor refits the observed error curve every K iterations and
   compares convergence *and* per-iteration cost against the optimizer's
   predictions;
3. on divergence the executor stops gracefully (model state intact),
   the trainer re-runs plan selection over the *remaining* error budget
   -- remaining iterations per algorithm from the curves, observed
   per-iteration cost folded in for the running algorithm -- and resumes
   training under the winning plan from the current weights **and the
   current optimizer state**: the exported
   :class:`~repro.gd.state.OptimizerState` (step-schedule position,
   updater buffers, RNG stream, ...) is passed through the cross-plan
   transfer policy (:meth:`OptimizerState.transfer_to`) and imported by
   the next segment, so the MLlib ``beta/sqrt(i)`` schedule continues at
   global iteration ``k + 1`` instead of restarting with a giant
   ``beta/sqrt(1)`` step that undoes banked progress.

Every run produces an :class:`~repro.runtime.trace.ExecutionTrace`;
when a :class:`~repro.runtime.calibration.CalibrationStore` is supplied
the trace is folded into it, so the *next* optimization starts from
corrected estimates.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.executor import execute_plan
from repro.core.plan_space import enumerate_plans
from repro.core.result import PlanCostEstimate
from repro.errors import EstimationError
from repro.runtime.calibration import cluster_signature, workload_signature
from repro.runtime.telemetry import AdaptiveSettings, ConvergenceMonitor
from repro.runtime.trace import ExecutionTrace, SwitchEvent, segment_from_result


@dataclasses.dataclass
class AdaptiveResult:
    """Outcome of one adaptive training run."""

    #: The initial OptimizationReport (pre-switch decisions).
    report: object
    #: TrainResult of the final plan segment.
    result: object
    #: Full structured telemetry of the run.
    trace: ExecutionTrace
    #: Simulated seconds of the whole run (speculation + all segments).
    sim_seconds: float

    @property
    def weights(self):
        return self.result.weights

    @property
    def converged(self) -> bool:
        return self.result.converged

    @property
    def iterations(self) -> int:
        return self.trace.total_iterations

    @property
    def switched(self) -> bool:
        return self.trace.switched

    def summary(self) -> str:
        return self.trace.summary()


def remaining_iterations(curve, current_delta, target_tolerance) -> int:
    """Iterations a curve needs to go from ``current_delta`` to target.

    Reads both positions off the same fitted curve, so a systematically
    optimistic/pessimistic fit cancels out of the difference.
    """
    if not np.isfinite(current_delta) or current_delta <= target_tolerance:
        return 1
    total = curve.iterations_for(target_tolerance)
    done = curve.iterations_for(current_delta)
    return max(1, total - done)


class AdaptiveTrainer:
    """Optimize, execute, monitor, and re-optimize mid-flight.

    ``optimizer`` is a configured :class:`~repro.core.optimizer.GDOptimizer`
    (its engine carries the simulated clock across segments).
    ``calibration`` optionally receives the run's execution trace.

    ``carry_state`` (default True) carries the full
    :class:`~repro.gd.state.OptimizerState` across segments -- schedule
    position, updater buffers, RNG stream -- applying the cross-plan
    transfer policy on every switch.  ``carry_state=False`` reproduces
    the legacy weights-only behaviour (every segment restarts the step
    schedule at iteration 1 and zeroes its buffers); it exists for A/B
    measurement of the carry-over fix, not for production use.
    """

    def __init__(self, optimizer, settings=None, calibration=None,
                 carry_state=True):
        self.optimizer = optimizer
        self.settings = settings or AdaptiveSettings()
        self.calibration = calibration
        self.carry_state = bool(carry_state)

    # ------------------------------------------------------------------
    def train(self, dataset, training, fixed_iterations=None,
              report=None) -> AdaptiveResult:
        """Adaptively train to ``training.tolerance``.

        ``report`` may carry a precomputed OptimizationReport (e.g. from
        the serving layer's plan cache) so no re-speculation happens; by
        default the trainer optimizes first, charging speculation wall
        time into the simulated clock like ``GDOptimizer.train``.
        """
        optimizer, engine = self.optimizer, self.optimizer.engine
        run_start = engine.clock
        if report is None:
            report = optimizer.optimize(
                dataset, training, fixed_iterations=fixed_iterations
            )
            report.speculation_sim_s += report.charge_speculation(engine)

        estimates = report.iteration_estimates
        trace = ExecutionTrace(
            workload=dataset.stats.name,
            cluster_signature=cluster_signature(engine.spec),
            tolerance=training.tolerance,
        )
        chosen = report.chosen
        weights = None
        carried_state = None
        entry_notes = []
        switches_left = self.settings.max_switches
        iteration_budget = (
            int(fixed_iterations) if fixed_iterations is not None
            else training.max_iter
        )
        done_iterations = 0
        result = None

        while True:
            remaining = iteration_budget - done_iterations
            monitor = self._monitor(chosen, estimates, training,
                                    monitoring=switches_left > 0,
                                    iteration_offset=done_iterations)
            segment_training = self._segment_training(
                training, remaining, run_start
            )
            result = execute_plan(
                engine, dataset, chosen.plan, segment_training,
                monitor=monitor, initial_weights=weights,
                initial_state=carried_state,
            )
            segment = segment_from_result(
                result, chosen,
                observed_per_iteration_s=monitor.observed_per_iteration_s(),
                state_transfer=entry_notes,
            )
            trace.segments.append(segment)
            done_iterations += result.iterations
            # Fold the observation in *now*, not at the end of the run:
            # a later re-optimization in this same run must remember
            # what this segment taught about its algorithm's true cost,
            # or it will happily switch straight back to it.  The
            # workload signature routes it to the two-level key, so this
            # dataset's own corrections take over once enough traces
            # accumulate.
            if self.calibration is not None:
                self.calibration.record_segment(
                    segment, engine.spec,
                    workload=workload_signature(dataset.stats),
                )

            if not result.stopped_by_monitor:
                break
            remaining = iteration_budget - done_iterations
            if remaining < 1 or switches_left < 1:
                break
            weights = result.weights
            carried_state = result.state if self.carry_state else None
            new_chosen = self._reoptimize(
                dataset, training, estimates, chosen, monitor, result,
                remaining, run_start,
            )
            if new_chosen is None or new_chosen.plan == chosen.plan:
                # No better plan for the remaining budget: carry on with
                # the current one (full state continuity -- same plan,
                # nothing to transfer) and stop second-guessing it.
                switches_left = 0
                entry_notes = (
                    ["full optimizer state carried (same plan resumed)"]
                    if carried_state is not None else []
                )
                if new_chosen is not None:
                    chosen = new_chosen
                continue
            switches_left -= 1
            if carried_state is not None:
                # Cross-plan switch: apply the transfer policy (offset
                # always carries, matching buffers carry, SVRG anchor
                # recomputes) and record what it decided in the trace.
                carried_state = carried_state.transfer_to(
                    new_chosen.plan.algorithm
                )
                entry_notes = list(carried_state.notes)
            else:
                entry_notes = []
            trace.switches.append(SwitchEvent(
                iteration=done_iterations,
                from_plan=str(chosen.plan),
                to_plan=str(new_chosen.plan),
                reason=monitor.reason or "divergence",
                clock=float(engine.clock),
            ))
            chosen = new_chosen

        return AdaptiveResult(
            report=report,
            result=result,
            trace=trace,
            sim_seconds=float(engine.clock - run_start),
        )

    # ------------------------------------------------------------------
    def _monitor(self, chosen, estimates, training, monitoring,
                 iteration_offset=0):
        """A ConvergenceMonitor for one segment (telemetry-only when
        switching is exhausted).  ``iteration_offset`` -- global
        iterations completed before the segment -- aligns the error-space
        check with the from-scratch speculated curve."""
        curve = None
        if estimates is not None:
            estimate = estimates.get(chosen.plan.algorithm)
            curve = estimate.curve if estimate is not None else None
        if not monitoring:
            # Record telemetry but never trip: thresholds unreachable.
            return ConvergenceMonitor(
                target_tolerance=training.tolerance,
                speculated_curve=None,
                predicted_iterations=None,
                predicted_per_iteration_s=None,
                settings=self.settings,
            )
        return ConvergenceMonitor(
            target_tolerance=training.tolerance,
            speculated_curve=curve,
            predicted_iterations=chosen.estimated_iterations,
            predicted_per_iteration_s=chosen.per_iteration_s,
            settings=self.settings,
            iteration_offset=iteration_offset,
        )

    def _segment_training(self, training, remaining_budget, run_start):
        """The TrainingSpec for one segment: remaining iteration budget,
        and the remaining slice of the simulated time budget (the
        executor measures its budget from each segment's own start, so
        every segment must be handed what is actually left)."""
        time_budget = training.time_budget_s
        if time_budget is not None:
            elapsed = self.optimizer.engine.clock - run_start
            # Keep it positive: TrainingSpec validates > 0, and a spent
            # budget should stop after the next iteration, not crash.
            time_budget = max(time_budget - elapsed, 1e-9)
        return dataclasses.replace(
            training,
            max_iter=max(1, int(remaining_budget)),
            time_budget_s=time_budget,
        )

    def _corrections(self, dataset=None) -> dict:
        """Corrections from the trainer's store (optimizer's otherwise),
        preferring the dataset's workload-specific key when given."""
        store = self.calibration or self.optimizer.calibration
        if store is None:
            return {}
        workload = (
            workload_signature(dataset.stats) if dataset is not None else None
        )
        return {
            alg: store.correction(
                alg, self.optimizer.engine.spec, workload=workload
            )
            for alg in self.optimizer.algorithms
        }

    # ------------------------------------------------------------------
    def _reoptimize(self, dataset, training, estimates, current, monitor,
                    result, remaining_budget, run_start):
        """Re-run plan selection over the remaining error budget.

        Returns the winning :class:`PlanCostEstimate` (plan == current's
        means "stay the course"), or None when selection is impossible.
        """
        optimizer = self.optimizer
        plans = enumerate_plans(optimizer.algorithms, optimizer.batch_sizes)
        if not plans:
            return None
        current_delta = result.final_delta
        corrections = self._corrections(dataset)

        iters_for = {}
        iter_factors = {}
        for alg in optimizer.algorithms:
            iters_for[alg], iter_factors[alg] = self._remaining_for(
                alg, estimates, current, monitor, current_delta,
                training, remaining_budget, corrections,
            )

        iterations = [iters_for[plan.algorithm] for plan in plans]
        batch = optimizer.cost_model.estimate_batch(
            plans, dataset.stats, iterations
        )
        factors = np.array([
            corrections[p.algorithm].cost_factor if corrections else 1.0
            for p in plans
        ])
        # Fold the live observation in: we *know* what the running
        # algorithm's iterations cost on this cluster, so its plans are
        # re-priced by observed/base rather than by any model guess.
        observed = monitor.observed_per_iteration_s()
        if observed is not None and observed > 0:
            try:
                idx = list(batch.plans).index(current.plan)
            except ValueError:  # pragma: no cover - plan space is stable
                idx = -1
            if idx >= 0 and batch.per_iteration_s[idx] > 0:
                live = observed / float(batch.per_iteration_s[idx])
                for i, plan in enumerate(batch.plans):
                    if plan.algorithm == current.plan.algorithm:
                        factors[i] = live

        per_iteration_s = batch.per_iteration_s * factors
        total_s = batch.one_time_s + batch.iterations * per_iteration_s

        feasible = np.ones(len(plans), dtype=bool)
        if training.time_budget_s is not None:
            elapsed = optimizer.engine.clock - run_start
            time_left = training.time_budget_s - elapsed
            feasible = total_s <= time_left
            if not feasible.any():
                # Nothing fits anyway; stay on the current plan rather
                # than raising mid-training.
                return None
        order = np.argsort(total_s)
        best = next(int(i) for i in order if feasible[i])
        breakdown = batch.breakdown(best)
        if factors[best] != 1.0:
            breakdown["calibration:cost_factor"] = float(factors[best])
        best_iter_factor = iter_factors[plans[best].algorithm]
        if best_iter_factor != 1.0:
            breakdown["calibration:iterations_factor"] = float(
                best_iter_factor
            )
        return PlanCostEstimate(
            plan=plans[best],
            estimated_iterations=int(iterations[best]),
            one_time_s=float(batch.one_time_s[best]),
            per_iteration_s=float(per_iteration_s[best]),
            total_s=float(total_s[best]),
            breakdown=breakdown,
            feasible=True,
        )

    @staticmethod
    def _remaining_for(alg, estimates, current, monitor, current_delta,
                       training, remaining_budget, corrections):
        """(remaining iterations, applied correction factor) for one
        algorithm."""
        curve = None
        factor = 1.0
        if alg == current.plan.algorithm:
            if monitor.refit_curve is not None:
                # The live refit already reflects reality; no correction.
                curve = monitor.refit_curve
            elif not monitor.curve_diverged and estimates is not None \
                    and estimates.get(alg) is not None:
                # Cost-triggered stop: the speculated curve is still
                # credible.  (A curve-triggered stop without a usable
                # refit falls through to the pessimistic budget below.)
                curve = estimates[alg].curve
        elif estimates is not None and estimates.get(alg) is not None:
            curve = estimates[alg].curve
            factor = (
                corrections[alg].iterations_factor if corrections else 1.0
            )
        if curve is None:
            return max(1, int(remaining_budget)), 1.0
        try:
            remaining = remaining_iterations(
                curve, current_delta, training.tolerance
            )
        except EstimationError:
            return max(1, int(remaining_budget)), 1.0
        remaining = max(1, int(round(remaining * factor)))
        return min(remaining, max(1, int(remaining_budget))), factor
