"""Mid-flight re-optimization: adaptive plan execution.

The one-shot optimizer picks a plan from speculative curve fits and a
static cost model, then pays for any mis-estimate until convergence.
:class:`AdaptiveTrainer` closes the loop at runtime:

1. optimize as usual and start executing the chosen plan with a
   :class:`~repro.runtime.telemetry.ConvergenceMonitor` attached;
2. the monitor refits the observed error curve every K iterations and
   compares convergence *and* per-iteration cost against the optimizer's
   predictions;
3. on divergence the executor stops gracefully (model state intact),
   the trainer re-runs plan selection over the *remaining* error budget
   -- remaining iterations per algorithm from the curves, observed
   per-iteration cost folded in for the running algorithm -- and resumes
   training under the winning plan from the current weights **and the
   current optimizer state**: the exported
   :class:`~repro.gd.state.OptimizerState` (step-schedule position,
   updater buffers, RNG stream, ...) is passed through the cross-plan
   transfer policy (:meth:`OptimizerState.transfer_to`) and imported by
   the next segment, so the MLlib ``beta/sqrt(i)`` schedule continues at
   global iteration ``k + 1`` instead of restarting with a giant
   ``beta/sqrt(1)`` step that undoes banked progress.

Every run produces an :class:`~repro.runtime.trace.ExecutionTrace`;
when a :class:`~repro.runtime.calibration.CalibrationStore` is supplied
the trace is folded into it, so the *next* optimization starts from
corrected estimates.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.core.executor import execute_plan
from repro.core.plan_space import enumerate_plans
from repro.core.result import PlanCostEstimate
from repro.errors import EstimationError, PlanError
from repro.gd.state import OptimizerState
from repro.obs import span
from repro.runtime.calibration import cluster_signature, workload_signature
from repro.runtime.telemetry import AdaptiveSettings, ConvergenceMonitor
from repro.runtime.trace import (
    ExecutionTrace,
    PlanSegment,
    SwitchEvent,
    segment_from_result,
)


@dataclasses.dataclass(frozen=True)
class JobBudget:
    """Per-lease preemption budget of one :meth:`AdaptiveTrainer.train`
    call.

    A preemptible job is deliberately sliced across processes: each
    lease runs at most ``max_iterations`` training iterations and/or
    ``max_seconds`` wall-clock seconds, then stops gracefully with a
    ``preempted`` checkpoint that the next lease resumes bit-identically
    from.  Both limits are *per call*, not per job -- the job-wide
    iteration budget stays ``TrainingSpec.max_iter``.
    """

    max_iterations: int | None = None
    max_seconds: float | None = None

    def __post_init__(self):
        # PlanError (a ReproError), not ValueError: budgets are built
        # from user request lines, and the CLI's per-request error
        # handling must catch a bad one instead of killing the server.
        if self.max_iterations is not None and self.max_iterations < 1:
            raise PlanError("budget max_iterations must be >= 1")
        if self.max_seconds is not None and self.max_seconds <= 0:
            raise PlanError("budget max_seconds must be positive")


@dataclasses.dataclass
class ResumePoint:
    """Where a previous lease of a training job left off.

    Everything :meth:`AdaptiveTrainer.train` needs to continue a run in
    a fresh process exactly where a checkpoint stopped it: the model
    weights, the exported :class:`~repro.gd.state.OptimizerState`, the
    plan being executed (its :class:`PlanCostEstimate`, so monitoring
    and segment records keep their predictions), the accumulated
    :class:`~repro.runtime.trace.ExecutionTrace` (segment history --
    switch accounting and trajectory continuity), and the global
    iteration count already banked.
    """

    weights: object
    state: object
    chosen: PlanCostEstimate
    trace: ExecutionTrace
    done_iterations: int
    #: Remaining mid-flight switch allowance; None derives it from the
    #: trace's switch events (a "stay the course" decision that zeroed
    #: it is persisted explicitly).
    switches_left: int | None = None


@dataclasses.dataclass
class TrainerCheckpoint:
    """One checkpointable moment of a training run.

    Emitted through ``on_checkpoint`` at every cadence boundary, plan
    switch, graceful preemption and completion; the service layer
    persists it as a :class:`~repro.service.checkpoint.JobCheckpoint`.
    ``status`` is ``"running"`` (more work to do), ``"preempted"`` (the
    lease budget stopped the run) or ``"done"`` (converged or out of
    iteration budget).
    """

    status: str
    weights: object
    state: object
    chosen: PlanCostEstimate
    trace: ExecutionTrace
    done_iterations: int
    switches_left: int


class _LeaseMonitor:
    """Wraps a segment monitor with the lease's preemption budget.

    Delegates everything to the inner monitor (telemetry, divergence
    verdicts, refits); additionally requests a graceful stop once this
    lease has executed ``budget.max_iterations`` iterations or run for
    ``budget.max_seconds`` wall seconds.  ``preempted`` distinguishes a
    budget stop from a divergence stop -- the trainer checkpoints and
    returns instead of re-optimizing.
    """

    def __init__(self, inner, budget, executed_before, lease_start):
        self._inner = inner
        self._budget = budget
        self._executed_before = int(executed_before)
        self._lease_start = lease_start
        self.preempted = False
        self.preempt_reason = None

    def on_iteration(self, iteration, delta, clock) -> bool:
        stop = bool(self._inner.on_iteration(iteration, delta, clock))
        executed = self._executed_before + iteration
        budget = self._budget
        if (budget.max_iterations is not None
                and executed >= budget.max_iterations):
            self.preempted = True
            self.preempt_reason = (
                f"lease budget exhausted: {executed} iterations this lease "
                f"(max {budget.max_iterations})"
            )
        elif (budget.max_seconds is not None
                and time.perf_counter() - self._lease_start
                >= budget.max_seconds):
            self.preempted = True
            self.preempt_reason = (
                f"lease budget exhausted: {budget.max_seconds:g}s "
                "wall clock"
            )
        return stop or self.preempted

    def __getattr__(self, name):
        return getattr(self._inner, name)


@dataclasses.dataclass
class AdaptiveResult:
    """Outcome of one adaptive training run."""

    #: The initial OptimizationReport (pre-switch decisions).
    report: object
    #: TrainResult of the final plan segment.
    result: object
    #: Full structured telemetry of the run.
    trace: ExecutionTrace
    #: Simulated seconds of the whole run (speculation + all segments).
    sim_seconds: float
    #: True when a :class:`JobBudget` stopped this lease before the job
    #: finished -- resume from the ``preempted`` checkpoint to continue.
    preempted: bool = False

    @property
    def weights(self):
        return self.result.weights

    @property
    def converged(self) -> bool:
        return self.result.converged

    @property
    def iterations(self) -> int:
        return self.trace.total_iterations

    @property
    def switched(self) -> bool:
        return self.trace.switched

    def summary(self) -> str:
        return self.trace.summary()


def remaining_iterations(curve, current_delta, target_tolerance) -> int:
    """Iterations a curve needs to go from ``current_delta`` to target.

    Reads both positions off the same fitted curve, so a systematically
    optimistic/pessimistic fit cancels out of the difference.
    """
    if not np.isfinite(current_delta) or current_delta <= target_tolerance:
        return 1
    total = curve.iterations_for(target_tolerance)
    done = curve.iterations_for(current_delta)
    return max(1, total - done)


class AdaptiveTrainer:
    """Optimize, execute, monitor, and re-optimize mid-flight.

    ``optimizer`` is a configured :class:`~repro.core.optimizer.GDOptimizer`
    (its engine carries the simulated clock across segments).
    ``calibration`` optionally receives the run's execution trace.

    ``learned`` optionally receives the same per-segment observations
    as a :class:`~repro.learned.mixed.MixedCostModel` (or bare
    :class:`~repro.learned.model.ResidualModel`): each executed segment
    becomes a training example (an online refit), and every convergence
    refit that fitted a *different* error-curve family than configured
    casts a curve-family vote -- the feedback that eventually flips
    ``SpeculationSettings.model`` for that algorithm.

    ``carry_state`` (default True) carries the full
    :class:`~repro.gd.state.OptimizerState` across segments -- schedule
    position, updater buffers, RNG stream -- applying the cross-plan
    transfer policy on every switch.  ``carry_state=False`` reproduces
    the legacy weights-only behaviour (every segment restarts the step
    schedule at iteration 1 and zeroes its buffers); it exists for A/B
    measurement of the carry-over fix, not for production use.
    """

    def __init__(self, optimizer, settings=None, calibration=None,
                 carry_state=True, learned=None):
        self.optimizer = optimizer
        self.settings = settings or AdaptiveSettings()
        self.calibration = calibration
        self.carry_state = bool(carry_state)
        self.learned = learned

    # ------------------------------------------------------------------
    def train(self, dataset, training, fixed_iterations=None,
              report=None, resume=None, checkpoint_every=None,
              budget=None, on_checkpoint=None) -> AdaptiveResult:
        """Adaptively train to ``training.tolerance``.

        ``report`` may carry a precomputed OptimizationReport (e.g. from
        the serving layer's plan cache) so no re-speculation happens; by
        default the trainer optimizes first, charging speculation wall
        time into the simulated clock like ``GDOptimizer.train``.

        **Durable-job hooks.**  ``resume`` (a :class:`ResumePoint`)
        continues a previous lease's run bit-identically instead of
        starting fresh (with ``resume`` set, a missing ``report`` is
        *not* recomputed -- the resumed plan is already decided).
        ``on_checkpoint`` receives a :class:`TrainerCheckpoint` at every
        ``checkpoint_every``-iteration cadence boundary (global
        iterations, exported mid-segment without perturbing the run),
        at every plan switch, on preemption and on completion.
        ``budget`` (a :class:`JobBudget`) bounds *this call*: when it
        runs out the lease stops gracefully, writes a ``preempted``
        checkpoint and returns ``AdaptiveResult.preempted``.
        """
        optimizer, engine = self.optimizer, self.optimizer.engine
        run_start = engine.clock
        if report is None and resume is None:
            report = optimizer.optimize(
                dataset, training, fixed_iterations=fixed_iterations
            )
            report.speculation_sim_s += report.charge_speculation(engine)

        estimates = report.iteration_estimates if report is not None else None
        iteration_budget = (
            int(fixed_iterations) if fixed_iterations is not None
            else training.max_iter
        )
        if resume is not None:
            trace = resume.trace
            chosen = resume.chosen
            weights = np.asarray(resume.weights, dtype=float)
            carried_state = (
                OptimizerState.from_dict(resume.state)
                if isinstance(resume.state, dict) else resume.state
            )
            done_iterations = int(resume.done_iterations)
            switches_left = (
                max(0, self.settings.max_switches - len(trace.switches))
                if resume.switches_left is None
                else int(resume.switches_left)
            )
            entry_notes = [
                f"resumed from checkpoint at global iteration "
                f"{done_iterations}"
            ]
        else:
            trace = ExecutionTrace(
                workload=dataset.stats.name,
                cluster_signature=cluster_signature(engine.spec),
                tolerance=training.tolerance,
            )
            chosen = report.chosen
            weights = None
            carried_state = None
            entry_notes = []
            switches_left = self.settings.max_switches
            done_iterations = 0
        lease_start = time.perf_counter()
        lease_executed = 0
        preempted = False
        result = None

        while True:
            remaining = iteration_budget - done_iterations
            monitor = self._monitor(chosen, estimates, training,
                                    monitoring=switches_left > 0,
                                    iteration_offset=done_iterations)
            if budget is not None:
                monitor = _LeaseMonitor(
                    monitor, budget, lease_executed, lease_start
                )
            segment_training = self._segment_training(
                training, remaining, run_start
            )
            with span(
                "plan_segment",
                algorithm=chosen.plan.algorithm,
                plan=str(chosen.plan),
                start_iteration=done_iterations,
            ) as segment_span:
                result = execute_plan(
                    engine, dataset, chosen.plan, segment_training,
                    monitor=monitor, initial_weights=weights,
                    initial_state=carried_state,
                    checkpoint_every=(
                        checkpoint_every if on_checkpoint is not None
                        else None
                    ),
                    checkpoint_callback=self._cadence_callback(
                        on_checkpoint, trace, chosen, monitor, engine,
                        done_iterations, entry_notes, switches_left,
                    ),
                )
                segment_span.set("iterations", int(result.iterations))
                segment_span.set("converged", bool(result.converged))
                segment_span.set(
                    "stopped_by_monitor", bool(result.stopped_by_monitor)
                )
            segment = segment_from_result(
                result, chosen,
                observed_per_iteration_s=monitor.observed_per_iteration_s(),
                state_transfer=entry_notes,
            )
            trace.segments.append(segment)
            done_iterations += result.iterations
            lease_executed += result.iterations
            # Fold the observation in *now*, not at the end of the run:
            # a later re-optimization in this same run must remember
            # what this segment taught about its algorithm's true cost,
            # or it will happily switch straight back to it.  The
            # workload signature routes it to the two-level key, so this
            # dataset's own corrections take over once enough traces
            # accumulate.
            if self.calibration is not None:
                self.calibration.record_segment(
                    segment, engine.spec,
                    workload=workload_signature(dataset.stats),
                )
            if self.learned is not None:
                # The same observation, as a learned-model training
                # example: an online refit, so the *next* optimize call
                # already ranks with what this segment taught.
                self.learned.observe_segment(
                    segment, dataset.stats, engine.spec,
                    epsilon=training.tolerance,
                    batch_size=self.optimizer.batch_sizes.get(
                        segment.algorithm
                    ),
                )
                refit = monitor.refit_curve
                if refit is not None and refit.model != (
                    self.settings.curve_model
                ):
                    # The configured family keeps losing to another on
                    # live error sequences; vote it in so speculation
                    # eventually fits that family for this algorithm.
                    self.learned.vote_curve_family(
                        segment.algorithm, refit.model
                    )

            remaining = iteration_budget - done_iterations
            if not result.stopped_by_monitor or remaining < 1:
                # Natural end -- converged, timed out, or the job-wide
                # iteration budget is spent.  The budget check must win
                # over a simultaneous lease preemption: a lease that
                # runs out exactly on the job's last iteration has
                # *finished* the job, and stamping it "preempted" would
                # make the next lease run past max_iter.
                self._emit(on_checkpoint, "done", result, chosen, trace,
                           done_iterations, switches_left)
                break
            if getattr(monitor, "preempted", False):
                preempted = True
                self._emit(on_checkpoint, "preempted", result, chosen,
                           trace, done_iterations, switches_left)
                break
            if switches_left < 1:
                self._emit(on_checkpoint, "done", result, chosen, trace,
                           done_iterations, switches_left)
                break
            weights = result.weights
            carried_state = result.state if self.carry_state else None
            with span(
                "reoptimize", from_plan=str(chosen.plan)
            ) as reopt_span:
                new_chosen = self._reoptimize(
                    dataset, training, estimates, chosen, monitor, result,
                    remaining, run_start,
                )
                reopt_span.set(
                    "to_plan",
                    str(new_chosen.plan) if new_chosen is not None else None,
                )
                reopt_span.set(
                    "switched",
                    new_chosen is not None
                    and new_chosen.plan != chosen.plan,
                )
            if new_chosen is None or new_chosen.plan == chosen.plan:
                # No better plan for the remaining budget: carry on with
                # the current one (full state continuity -- same plan,
                # nothing to transfer) and stop second-guessing it.
                switches_left = 0
                entry_notes = (
                    ["full optimizer state carried (same plan resumed)"]
                    if carried_state is not None else []
                )
                if new_chosen is not None:
                    chosen = new_chosen
                self._emit(on_checkpoint, "running", result, chosen, trace,
                           done_iterations, switches_left,
                           state=carried_state)
                continue
            switches_left -= 1
            if carried_state is not None:
                # Cross-plan switch: apply the transfer policy (offset
                # always carries, matching buffers carry, SVRG anchor
                # recomputes) and record what it decided in the trace.
                carried_state = carried_state.transfer_to(
                    new_chosen.plan.algorithm
                )
                entry_notes = list(carried_state.notes)
            else:
                entry_notes = []
            trace.switches.append(SwitchEvent(
                iteration=done_iterations,
                from_plan=str(chosen.plan),
                to_plan=str(new_chosen.plan),
                reason=monitor.reason or "divergence",
                clock=float(engine.clock),
            ))
            chosen = new_chosen
            # Switch-boundary checkpoint: the state to persist is the
            # *transferred* one the next segment will import, under the
            # *new* plan -- exactly what a resume must replay.
            self._emit(on_checkpoint, "running", result, chosen, trace,
                       done_iterations, switches_left, state=carried_state)

        return AdaptiveResult(
            report=report,
            result=result,
            trace=trace,
            sim_seconds=float(engine.clock - run_start),
            preempted=preempted,
        )

    # ------------------------------------------------------------------
    _UNSET = object()

    def _emit(self, on_checkpoint, status, result, chosen, trace,
              done_iterations, switches_left, state=_UNSET) -> None:
        """Hand one segment-boundary checkpoint to ``on_checkpoint``."""
        if on_checkpoint is None:
            return
        on_checkpoint(TrainerCheckpoint(
            status=status,
            weights=result.weights,
            state=result.state if state is self._UNSET else state,
            chosen=chosen,
            trace=trace,
            done_iterations=int(done_iterations),
            switches_left=int(switches_left),
        ))

    def _cadence_callback(self, on_checkpoint, trace, chosen, monitor,
                          engine, done_before, entry_notes, switches_left):
        """The executor-level mid-segment checkpoint hook for one
        segment (None when no ``on_checkpoint`` is attached).

        The snapshot's trace ends in a ``partial`` segment -- the
        in-flight prefix built from the monitor's telemetry -- so a
        crash after this checkpoint loses no banked trajectory: the
        resumed run keeps the prefix as history and continues after it.
        """
        if on_checkpoint is None:
            return None
        segment_clock_start = engine.clock
        breakdown = chosen.breakdown or {}

        def callback(global_iteration, weights, state):
            partial = PlanSegment(
                plan=str(chosen.plan),
                algorithm=chosen.plan.algorithm,
                predicted_iterations=int(chosen.estimated_iterations),
                predicted_per_iteration_s=float(chosen.per_iteration_s),
                predicted_total_s=float(chosen.total_s),
                applied_cost_factor=float(
                    breakdown.get("calibration:cost_factor", 1.0)
                ),
                applied_iterations_factor=float(
                    breakdown.get("calibration:iterations_factor", 1.0)
                ),
                iterations=int(global_iteration - done_before),
                sim_seconds=float(engine.clock - segment_clock_start),
                converged=False,
                stopped_by_monitor=False,
                observed_per_iteration_s=float(
                    monitor.observed_per_iteration_s() or 0.0
                ),
                deltas=[float(d) for d in monitor.deltas],
                state=state.to_dict(),
                state_transfer=list(entry_notes),
                partial=True,
            )
            on_checkpoint(TrainerCheckpoint(
                status="running",
                weights=weights,
                state=state,
                chosen=chosen,
                trace=trace.with_partial(partial),
                done_iterations=int(global_iteration),
                switches_left=int(switches_left),
            ))

        return callback

    # ------------------------------------------------------------------
    def _monitor(self, chosen, estimates, training, monitoring,
                 iteration_offset=0):
        """A ConvergenceMonitor for one segment (telemetry-only when
        switching is exhausted).  ``iteration_offset`` -- global
        iterations completed before the segment -- aligns the error-space
        check with the from-scratch speculated curve."""
        curve = None
        if estimates is not None:
            estimate = estimates.get(chosen.plan.algorithm)
            curve = estimate.curve if estimate is not None else None
        if not monitoring:
            # Record telemetry but never trip: thresholds unreachable.
            return ConvergenceMonitor(
                target_tolerance=training.tolerance,
                speculated_curve=None,
                predicted_iterations=None,
                predicted_per_iteration_s=None,
                settings=self.settings,
            )
        return ConvergenceMonitor(
            target_tolerance=training.tolerance,
            speculated_curve=curve,
            predicted_iterations=chosen.estimated_iterations,
            predicted_per_iteration_s=chosen.per_iteration_s,
            settings=self.settings,
            iteration_offset=iteration_offset,
        )

    def _segment_training(self, training, remaining_budget, run_start):
        """The TrainingSpec for one segment: remaining iteration budget,
        and the remaining slice of the simulated time budget (the
        executor measures its budget from each segment's own start, so
        every segment must be handed what is actually left)."""
        time_budget = training.time_budget_s
        if time_budget is not None:
            elapsed = self.optimizer.engine.clock - run_start
            # Keep it positive: TrainingSpec validates > 0, and a spent
            # budget should stop after the next iteration, not crash.
            time_budget = max(time_budget - elapsed, 1e-9)
        return dataclasses.replace(
            training,
            max_iter=max(1, int(remaining_budget)),
            time_budget_s=time_budget,
        )

    def _corrections(self, dataset=None) -> dict:
        """Corrections from the trainer's store (optimizer's otherwise),
        preferring the dataset's workload-specific key when given."""
        store = self.calibration or self.optimizer.calibration
        if store is None:
            return {}
        workload = (
            workload_signature(dataset.stats) if dataset is not None else None
        )
        return {
            alg: store.correction(
                alg, self.optimizer.engine.spec, workload=workload
            )
            for alg in self.optimizer.algorithms
        }

    # ------------------------------------------------------------------
    def _reoptimize(self, dataset, training, estimates, current, monitor,
                    result, remaining_budget, run_start):
        """Re-run plan selection over the remaining error budget.

        Returns the winning :class:`PlanCostEstimate` (plan == current's
        means "stay the course"), or None when selection is impossible.
        """
        optimizer = self.optimizer
        plans = enumerate_plans(optimizer.algorithms, optimizer.batch_sizes)
        if not plans:
            return None
        current_delta = result.final_delta
        corrections = self._corrections(dataset)

        iters_for = {}
        iter_factors = {}
        for alg in optimizer.algorithms:
            iters_for[alg], iter_factors[alg] = self._remaining_for(
                alg, estimates, current, monitor, current_delta,
                training, remaining_budget, corrections,
            )

        iterations = [iters_for[plan.algorithm] for plan in plans]
        batch = optimizer.cost_model.estimate_batch(
            plans, dataset.stats, iterations
        )
        factors = np.array([
            corrections[p.algorithm].cost_factor if corrections else 1.0
            for p in plans
        ])
        # Fold the live observation in: we *know* what the running
        # algorithm's iterations cost on this cluster, so its plans are
        # re-priced by observed/base rather than by any model guess.
        observed = monitor.observed_per_iteration_s()
        if observed is not None and observed > 0:
            try:
                idx = list(batch.plans).index(current.plan)
            except ValueError:  # pragma: no cover - plan space is stable
                idx = -1
            if idx >= 0 and batch.per_iteration_s[idx] > 0:
                live = observed / float(batch.per_iteration_s[idx])
                for i, plan in enumerate(batch.plans):
                    if plan.algorithm == current.plan.algorithm:
                        factors[i] = live

        per_iteration_s = batch.per_iteration_s * factors
        total_s = batch.one_time_s + batch.iterations * per_iteration_s

        feasible = np.ones(len(plans), dtype=bool)
        if training.time_budget_s is not None:
            elapsed = optimizer.engine.clock - run_start
            time_left = training.time_budget_s - elapsed
            feasible = total_s <= time_left
            if not feasible.any():
                # Nothing fits anyway; stay on the current plan rather
                # than raising mid-training.
                return None
        order = np.argsort(total_s)
        best = next(int(i) for i in order if feasible[i])
        breakdown = batch.breakdown(best)
        if factors[best] != 1.0:
            breakdown["calibration:cost_factor"] = float(factors[best])
        best_iter_factor = iter_factors[plans[best].algorithm]
        if best_iter_factor != 1.0:
            breakdown["calibration:iterations_factor"] = float(
                best_iter_factor
            )
        return PlanCostEstimate(
            plan=plans[best],
            estimated_iterations=int(iterations[best]),
            one_time_s=float(batch.one_time_s[best]),
            per_iteration_s=float(per_iteration_s[best]),
            total_s=float(total_s[best]),
            breakdown=breakdown,
            feasible=True,
        )

    @staticmethod
    def _remaining_for(alg, estimates, current, monitor, current_delta,
                       training, remaining_budget, corrections):
        """(remaining iterations, applied correction factor) for one
        algorithm."""
        curve = None
        factor = 1.0
        if alg == current.plan.algorithm:
            if monitor.refit_curve is not None:
                # The live refit already reflects reality; no correction.
                curve = monitor.refit_curve
            elif not monitor.curve_diverged and estimates is not None \
                    and estimates.get(alg) is not None:
                # Cost-triggered stop: the speculated curve is still
                # credible.  (A curve-triggered stop without a usable
                # refit falls through to the pessimistic budget below.)
                curve = estimates[alg].curve
        elif estimates is not None and estimates.get(alg) is not None:
            curve = estimates[alg].curve
            factor = (
                corrections[alg].iterations_factor if corrections else 1.0
            )
        if curve is None:
            return max(1, int(remaining_budget)), 1.0
        try:
            remaining = remaining_iterations(
                curve, current_delta, training.tolerance
            )
        except EstimationError:
            return max(1, int(remaining_budget)), 1.0
        remaining = max(1, int(round(remaining * factor)))
        return min(remaining, max(1, int(remaining_budget))), factor
