"""A deliberately wrong cost model, for adaptive-runtime evaluation.

:class:`PerturbedCostModel` scales the per-iteration cost of chosen
algorithms by fixed factors.  A factor < 1 makes the optimizer
*underestimate* an algorithm (it gets picked and then under-delivers);
a factor > 1 makes the optimizer avoid it.  The adaptive runtime's job
is to notice and undo exactly this kind of systematic error, so the
experiments, benchmarks and tests use this model as the controlled
fault injection.
"""

from __future__ import annotations

import numpy as np

from repro.core.cost_model import CostModel


class PerturbedCostModel(CostModel):
    """CostModel whose per-iteration costs are scaled per algorithm.

    ``factors`` maps algorithm name -> multiplier applied to every
    per-iteration cost component of that algorithm's plans (one-time
    costs are untouched).  Unlisted algorithms are costed faithfully.
    """

    def __init__(self, spec, factors):
        super().__init__(spec)
        self.factors = {str(k): float(v) for k, v in dict(factors).items()}
        if any(f <= 0 for f in self.factors.values()):
            raise ValueError("perturbation factors must be positive")

    def _factor(self, plan) -> float:
        return self.factors.get(plan.algorithm, 1.0)

    def per_iteration_cost(self, plan, stats) -> dict:
        base = super().per_iteration_cost(plan, stats)
        factor = self._factor(plan)
        if factor == 1.0:
            return base
        return {phase: seconds * factor for phase, seconds in base.items()}

    def estimate_batch(self, plans, stats, iterations):
        # Build from an unperturbed base model: the batch path evaluates
        # full-batch components through self.per_iteration_cost(), which
        # this class already scales -- going through super() would apply
        # the factor twice (and smear one full-batch algorithm's factor
        # over all of them).
        batch = CostModel(self.spec).estimate_batch(plans, stats, iterations)
        if not len(batch):
            return batch
        factors = np.array([self._factor(plan) for plan in batch.plans])
        if np.all(factors == 1.0):
            return batch
        batch.per_iteration_s = batch.per_iteration_s * factors
        batch.total_s = (
            batch.one_time_s + batch.iterations * batch.per_iteration_s
        )
        batch.components = {
            name: (mask, values * factors if name.startswith("iter:")
                   else values)
            for name, (mask, values) in batch.components.items()
        }
        return batch
