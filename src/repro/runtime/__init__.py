"""Adaptive runtime: telemetry, calibration, mid-flight re-optimization.

The one-shot optimizer of the paper never looks back at a running plan;
this package adds the feedback loop:

* :mod:`~repro.runtime.trace` -- structured :class:`ExecutionTrace`
  telemetry recorded from plan executions;
* :mod:`~repro.runtime.telemetry` -- executor monitors (pure recording,
  and the divergence-detecting :class:`ConvergenceMonitor`);
* :mod:`~repro.runtime.calibration` -- the :class:`CalibrationStore` of
  learned per-(algorithm, cluster) correction factors, persisted to disk;
* :mod:`~repro.runtime.adaptive` -- the :class:`AdaptiveTrainer` that
  re-runs plan selection over the remaining error budget and switches
  plans without losing model state;
* :mod:`~repro.runtime.perturb` -- controlled cost-model fault injection
  for evaluating all of the above.
"""

from repro.runtime.adaptive import (
    AdaptiveResult,
    AdaptiveTrainer,
    JobBudget,
    ResumePoint,
    TrainerCheckpoint,
    remaining_iterations,
)
from repro.runtime.calibration import (
    CalibrationStore,
    Correction,
    cluster_signature,
    workload_signature,
)
from repro.runtime.perturb import PerturbedCostModel
from repro.runtime.telemetry import (
    AdaptiveSettings,
    ConvergenceMonitor,
    TelemetryRecorder,
)
from repro.gd.state import OptimizerState
from repro.runtime.trace import (
    TRACE_FORMAT,
    ExecutionTrace,
    IterationRecord,
    PlanSegment,
    SwitchEvent,
    segment_from_result,
)

__all__ = [
    "AdaptiveResult",
    "AdaptiveSettings",
    "AdaptiveTrainer",
    "CalibrationStore",
    "ConvergenceMonitor",
    "Correction",
    "ExecutionTrace",
    "IterationRecord",
    "JobBudget",
    "OptimizerState",
    "PerturbedCostModel",
    "PlanSegment",
    "ResumePoint",
    "TRACE_FORMAT",
    "SwitchEvent",
    "TelemetryRecorder",
    "TrainerCheckpoint",
    "cluster_signature",
    "remaining_iterations",
    "segment_from_result",
    "workload_signature",
]
