"""Durable training jobs: the :class:`CheckpointStore`.

PR 4 made :class:`~repro.gd.state.OptimizerState` a bit-identical,
JSON-round-trippable snapshot -- but it only lived inside one process: a
killed ``repro serve`` still lost all training progress.  This module
persists it.  A *training job* is a named (``job_id``) train() request
whose progress -- model weights, optimizer state, execution trace, the
plan decision that is being executed -- is checkpointed through the same
pluggable :class:`~repro.service.backends.CacheBackend` machinery as the
plan store (JSON file / SQLite, versioned format, corrupt entries
degrade to a cold start).  A fresh process pointed at the same store
resumes a killed or preempted job *mid-plan*, bit-identically: the
resumed trajectory equals the uninterrupted one, weights and deltas.

Two store-level mechanisms make jobs safe to share:

* **Leases.**  :meth:`CheckpointStore.acquire` takes an advisory,
  expiring lease on a job via the backend's atomic check-and-set
  (:meth:`CacheBackend.update` -- the JSON flock / SQLite
  ``BEGIN IMMEDIATE`` path), so two processes pointed at the same store
  cannot double-run a job: the second caller gets a
  :class:`JobLeaseError` instead of silently duplicating work.  Leases
  expire (``lease_ttl_s``) so a crashed owner's job becomes resumable
  without manual cleanup; every checkpoint write refreshes the writer's
  lease.
* **Versioned entries.**  Every checkpoint carries
  :data:`CHECKPOINT_FORMAT`; an unreadable or future-format entry is
  reported and treated as absent (the job restarts cold) -- never
  half-decoded.

The service layer (:meth:`OptimizerService.train` with ``job_id=``)
drives this store; nothing here knows about datasets or engines.

**Write cost.**  A checkpoint serializes the job's accumulated
trajectory (the execution trace grows with every iteration), and the
JSON backend additionally rewrites its whole file per write -- so
checkpoint cost grows with run length.  For long runs, pick a cadence
proportional to the work you can afford to replay (``checkpoint_every``
is iterations *between* durability points, not a free knob) and prefer
the SQLite backend, whose writes are per-entry.
"""

from __future__ import annotations

import dataclasses
import time
import uuid
import warnings

from repro.obs import span
from repro.service.backends import open_backend
from repro.service.serialize import PlanStoreError

#: Format version of one persisted job checkpoint.  Bump when the
#: payload shape changes incompatibly; old entries are then reported and
#: skipped at load time (the job restarts cold, never resumes wrongly).
CHECKPOINT_FORMAT = 1

#: Default lease time-to-live: a crashed owner's job becomes resumable
#: after this many wall seconds without a checkpoint write.  Kept short
#: relative to typical checkpoint cadences (every write refreshes the
#: lease) so a hard-killed server's jobs are not stranded long -- a
#: restarted server can only pick them up once the dead owner's lease
#: expires.
DEFAULT_LEASE_TTL_S = 60.0


class CheckpointError(PlanStoreError):
    """A job checkpoint could not be decoded or used."""


class JobLeaseError(CheckpointError):
    """The job is actively leased by another owner (double-run guard)."""


def new_owner_token() -> str:
    """A unique lease-owner identity for one train() call."""
    return uuid.uuid4().hex


@dataclasses.dataclass
class JobCheckpoint:
    """One persisted snapshot of a training job.

    ``weights``/``state``/``chosen``/``trace`` are stored in their
    plain-JSON forms (lists and dicts) so any backend can hold them as
    text; ``plan_entry`` is the full plan-store entry
    (:func:`~repro.service.serialize.entry_to_dict`) of the pricing
    decision, so a resuming process re-enters warm -- it never
    re-speculates a job that is sitting on disk.  ``request`` is an
    optional caller-supplied descriptor (the CLI stores the parsed
    request line) that lets a restarted server *re-issue* the job
    without being handed the original request again.
    """

    job_id: str
    #: ``queued`` (submitted, no lease has run it yet), ``running`` (in
    #: flight), ``preempted`` (lease budget stopped it), ``done``
    #: (converged or out of iteration budget).
    status: str
    #: Workload fingerprint the job is bound to; a resume under a
    #: different fingerprint is refused (same job id, different work).
    fingerprint: str
    #: Model vector as a float list; None for a lease stub that has not
    #: checkpointed any progress yet (resume starts fresh).
    weights: list | None = None
    #: :class:`~repro.gd.state.OptimizerState` dict at the checkpoint.
    state: dict | None = None
    #: Serialized :class:`PlanCostEstimate` being executed.
    chosen: dict | None = None
    #: Serialized :class:`~repro.runtime.trace.ExecutionTrace` so far.
    trace: dict | None = None
    #: Global training iterations banked by previous leases.
    done_iterations: int = 0
    #: Remaining mid-flight switch allowance at the checkpoint.
    switches_left: int | None = None
    #: Whether the job runs under the adaptive runtime.  Part of the
    #: job's identity: a resume under the opposite flag would half-apply
    #: it (the persisted switch allowance would keep monitoring alive),
    #: so the service resumes with the checkpointed mode and warns.
    adaptive: bool = False
    #: Plan-store entry of the pricing decision (report + stamps).
    plan_entry: dict | None = None
    #: Caller-supplied request descriptor (e.g. a parsed CLI request
    #: line) enabling restart-time re-issue; opaque to the store.
    request: dict | None = None
    #: Advisory lease ``{"owner": str, "expires_at": unix_s}`` or None.
    lease: dict | None = None
    #: Audit trail of every lease that made progress on this job: one
    #: ``{"owner", "worker", "start_iteration", "end_iteration",
    #: "status"}`` record per lease, appended by the job layer and
    #: updated on every checkpoint write of that lease.  Consecutive
    #: records must chain (each start equals the previous end) -- a gap
    #: means lost work, an overlap means a duplicated execution -- which
    #: is what the fleet chaos suite audits.
    history: list = dataclasses.field(default_factory=list)
    #: Unix seconds of the last checkpoint write.
    written_at: float | None = None

    @property
    def resumable(self) -> bool:
        """True when the checkpoint holds actual training progress."""
        return self.weights is not None and self.chosen is not None

    def leased_by_other(self, owner, now) -> bool:
        """True when a different owner holds an unexpired lease."""
        return (
            self.lease is not None
            and self.lease.get("owner") != owner
            and float(self.lease.get("expires_at", 0.0)) > now
        )

    # -- serialisation ---------------------------------------------------
    def to_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["checkpoint_format"] = CHECKPOINT_FORMAT
        return payload

    @classmethod
    def from_dict(cls, payload) -> "JobCheckpoint":
        """Decode one checkpoint; raises :class:`CheckpointError` on a
        format mismatch or structural damage (callers degrade to a cold
        start, they never trust a partial decode)."""
        try:
            fmt = payload["checkpoint_format"]
            if fmt != CHECKPOINT_FORMAT:
                raise CheckpointError(
                    f"job checkpoint format {fmt!r} != supported "
                    f"{CHECKPOINT_FORMAT}; checkpoint ignored"
                )
            known = {f.name for f in dataclasses.fields(cls)}
            return cls(**{
                k: v for k, v in payload.items() if k in known
            })
        except CheckpointError:
            raise
        except Exception as exc:
            raise CheckpointError(
                f"malformed job checkpoint: {exc}"
            ) from exc


class CheckpointStore:
    """Durable ``job_id -> JobCheckpoint`` store over a CacheBackend.

    ``path`` picks the backend by extension exactly like the plan store
    (``.db``/``.sqlite*`` -> SQLite, anything else -> JSON); an explicit
    ``backend`` wins.  A checkpoint store and a plan store must not
    share one file -- their entries carry different format markers and
    compaction keeps both apart, but the stores' key spaces (job ids vs
    workload fingerprints) have no collision guarantee.

    All lease arbitration goes through the backend's atomic
    :meth:`~repro.service.backends.CacheBackend.update`, so it holds
    across *processes*, not just threads.  ``clock`` is injectable for
    deterministic lease-expiry tests.
    """

    def __init__(self, backend=None, path=None,
                 lease_ttl_s=DEFAULT_LEASE_TTL_S, clock=None):
        if backend is None:
            if path is None:
                raise ValueError(
                    "CheckpointStore needs a backend or a path"
                )
            backend = open_backend(path)
        self.backend = backend
        self.lease_ttl_s = float(lease_ttl_s)
        self._clock = clock or time.time

    @property
    def path(self):
        return self.backend.path

    # -- decode helpers --------------------------------------------------
    def _decode(self, job_id, payload, warn=True):
        if payload is None:
            return None
        try:
            return JobCheckpoint.from_dict(payload)
        except CheckpointError as exc:
            if warn:
                warnings.warn(
                    f"job checkpoint {job_id!r} is unusable ({exc}); "
                    "treating the job as fresh", stacklevel=3,
                )
            return None

    # -- reads -----------------------------------------------------------
    def load(self, job_id) -> JobCheckpoint | None:
        """The job's checkpoint, or None (missing or undecodable)."""
        return self._decode(job_id, self.backend.get(job_id))

    def jobs(self) -> dict:
        """``{job_id: JobCheckpoint}`` for every decodable entry.

        Worker heartbeat records (``{"kind": "worker", ...}`` entries a
        fleet worker parks next to the checkpoints it drains) share the
        store but are not jobs; they are skipped without a warning.
        """
        out = {}
        for job_id, payload in self.backend.load().items():
            if isinstance(payload, dict) and payload.get("kind") == "worker":
                continue
            checkpoint = self._decode(job_id, payload)
            if checkpoint is not None:
                out[job_id] = checkpoint
        return out

    def pending(self) -> dict:
        """Jobs a restarted server or a fleet worker should pick up:
        submitted-but-never-run (``queued``) jobs, and interrupted jobs
        with banked progress."""
        return {
            job_id: checkpoint
            for job_id, checkpoint in self.jobs().items()
            if (checkpoint.status == "queued"
                or (checkpoint.status in ("running", "preempted")
                    and checkpoint.resumable))
        }

    # -- submission ------------------------------------------------------
    def submit(self, job_id, request) -> JobCheckpoint:
        """Enqueue a job by descriptor, without executing anything.

        Writes a ``queued`` stub carrying ``request`` (a dict with at
        least ``dataset``, the same shape as a parsed request line) so
        any fleet worker pointed at this store can claim and run the
        job.  Idempotent: re-submitting a job that already exists in any
        state returns the existing checkpoint untouched -- submission
        can be retried without resetting progress or outcomes.
        """
        if not isinstance(request, dict) or "dataset" not in request:
            raise CheckpointError(
                f"job {job_id!r} needs a request descriptor with a "
                "'dataset' key; workers could not re-issue it otherwise"
            )
        box = {}

        def enqueue(payload):
            existing = self._decode(job_id, payload)
            if existing is not None:
                box["checkpoint"] = existing
                return payload  # idempotent re-submission
            record = JobCheckpoint(
                job_id=job_id, status="queued", fingerprint="",
                request=dict(request), written_at=self._clock(),
            )
            box["checkpoint"] = record
            return record.to_dict()

        with span("job_submit", job_id=job_id):
            self.backend.update(job_id, enqueue)
        return box["checkpoint"]

    # -- leases ----------------------------------------------------------
    def acquire(self, job_id, owner) -> JobCheckpoint | None:
        """Atomically lease ``job_id`` for ``owner``.

        Returns the job's current checkpoint (None for a fresh job).
        Raises :class:`JobLeaseError` when a different owner holds an
        unexpired lease -- the double-run guard.  An undecodable
        existing entry is overwritten by a fresh lease stub (corrupt
        checkpoints degrade to a cold start, they never block a job
        forever).
        """
        now = self._clock()
        box = {}

        with span("lease_acquire", job_id=job_id, owner=owner) as lease_span:
            existing = self._acquire(job_id, owner, now, box)
            lease_span.set("resumed", existing is not None)
            return existing

    def _acquire(self, job_id, owner, now, box):
        def take(payload):
            existing = self._decode(job_id, payload)
            if existing is not None and existing.leased_by_other(owner, now):
                raise JobLeaseError(
                    f"job {job_id!r} is leased by another owner until "
                    f"{existing.lease['expires_at']:.0f} "
                    "(unix seconds); refusing to double-run it"
                )
            box["existing"] = existing
            record = existing if existing is not None else JobCheckpoint(
                job_id=job_id, status="running", fingerprint="",
            )
            record.lease = {
                "owner": owner,
                "expires_at": now + self.lease_ttl_s,
            }
            return record.to_dict()

        self.backend.update(job_id, take)
        return box["existing"]

    def save(self, checkpoint, owner=None) -> None:
        """Persist one checkpoint (and refresh ``owner``'s lease).

        Raises :class:`JobLeaseError` when another owner has taken the
        job in the meantime (this writer's lease expired): a zombie
        lease-loser must stop rather than clobber the new owner's
        progress.  Unlike plan-store writes this is *not* best-effort --
        a job that cannot checkpoint has lost its durability guarantee,
        so the error propagates.
        """
        now = self._clock()
        checkpoint.written_at = now

        def write(payload):
            current = self._decode(checkpoint.job_id, payload, warn=False)
            if owner is not None and current is not None \
                    and current.leased_by_other(owner, now):
                raise JobLeaseError(
                    f"lost the lease on job {checkpoint.job_id!r}: another "
                    "owner holds it; aborting this writer"
                )
            checkpoint.lease = (
                {"owner": owner, "expires_at": now + self.lease_ttl_s}
                if owner is not None else None
            )
            return checkpoint.to_dict()

        with span(
            "checkpoint_write",
            job_id=checkpoint.job_id,
            status=checkpoint.status,
            done_iterations=int(checkpoint.done_iterations or 0),
        ):
            self.backend.update(checkpoint.job_id, write)

    def release(self, job_id, owner) -> None:
        """Drop ``owner``'s lease (other owners' leases are untouched)."""
        def drop(payload):
            if payload is None:
                return None
            lease = payload.get("lease") if isinstance(payload, dict) else None
            if lease is not None and lease.get("owner") == owner:
                payload = dict(payload)
                payload["lease"] = None
            return payload

        with span("lease_release", job_id=job_id, owner=owner):
            self.backend.update(job_id, drop)

    # -- maintenance -----------------------------------------------------
    def delete(self, job_id) -> None:
        self.backend.delete(job_id)

    def close(self) -> None:
        self.backend.close()

    def __len__(self) -> int:
        return len(self.backend)
