"""Concurrent optimizer serving layer (plan cache + persistence).

The one-shot :class:`~repro.core.optimizer.GDOptimizer` answers a single
query; this package turns it into a component that serves *many* users
across *many* processes, in explicit layers:

* :mod:`repro.service.core` -- :class:`OptimizerService`: caches
  optimization reports per workload fingerprint, coalesces concurrent
  identical requests (cold computes and recalibration re-costs alike),
  and -- via the pluggable :class:`CacheBackend` plan store -- persists
  every decision so a restarted service starts warm;
* :mod:`repro.service.jobs` -- the execution layer: ``train()``,
  durable checkpointed jobs, budgets and leases;
* :mod:`repro.service.requests` -- the request/result dataclasses;
* :mod:`repro.service.frontend` -- the protocol tier: request-line
  parsing, the :class:`Dispatcher` shared by ``repro serve`` stdin and
  socket modes, and the admission-controlled :class:`SocketFrontend`;
* :mod:`repro.service.metrics` -- the :class:`MetricsRegistry` counters
  /gauges/timers threaded through all of the above;
* :mod:`repro.service.remote` -- the fleet's network boundary: the
  ``repro store`` line-protocol server (:class:`StoreServer`) and the
  :class:`RemoteBackend`/:class:`ShardedBackend` clients behind
  ``tcp://host:port/namespace`` store paths;
* :mod:`repro.service.worker` -- the ``repro worker`` drain/steal loop
  (:class:`FleetWorker`), per-job progress/ETA derivation, and the
  lease-history exactly-once audit;
* :mod:`repro.service.storetools` -- offline store inspection and
  compaction (``repro cache``).

``repro.service.service`` remains as a compatibility shim for pre-split
imports.
"""

from repro.service.backends import (
    CacheBackend,
    JsonFileBackend,
    MemoryBackend,
    SqliteBackend,
    open_backend,
)
from repro.service.cache import CacheStats, PlanCache, approx_nbytes
from repro.service.checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointError,
    CheckpointStore,
    JobCheckpoint,
    JobLeaseError,
)
from repro.service.core import OptimizerService
from repro.service.fingerprint import freeze, workload_fingerprint
from repro.service.frontend import (
    Dispatcher,
    SocketFrontend,
    WireRequest,
    iter_request_lines,
    parse_request_line,
    parse_wire_line,
)
from repro.service.metrics import MetricsRegistry
from repro.service.remote import (
    RemoteBackend,
    RemoteStoreError,
    ShardedBackend,
    StoreServer,
    open_remote_backend,
    parse_store_url,
    shard_index,
)
from repro.service.requests import (
    JobProgress,
    ServiceRequest,
    ServiceResult,
    TrainServiceResult,
    normalize_request,
)
from repro.service.serialize import (
    PlanStoreError,
    entry_from_dict,
    entry_to_dict,
    report_from_dict,
    report_to_dict,
)
from repro.service.storetools import compact_store, inspect_store
from repro.service.worker import (
    FleetWorker,
    audit_lease_history,
    job_progress,
    job_progress_records,
    read_heartbeats,
    write_heartbeat,
)

__all__ = [
    "CHECKPOINT_FORMAT",
    "CacheBackend",
    "CacheStats",
    "CheckpointError",
    "CheckpointStore",
    "Dispatcher",
    "FleetWorker",
    "JobCheckpoint",
    "JobLeaseError",
    "JobProgress",
    "JsonFileBackend",
    "MemoryBackend",
    "MetricsRegistry",
    "OptimizerService",
    "PlanCache",
    "PlanStoreError",
    "RemoteBackend",
    "RemoteStoreError",
    "ServiceRequest",
    "ServiceResult",
    "ShardedBackend",
    "SocketFrontend",
    "SqliteBackend",
    "StoreServer",
    "TrainServiceResult",
    "WireRequest",
    "approx_nbytes",
    "audit_lease_history",
    "compact_store",
    "entry_from_dict",
    "entry_to_dict",
    "freeze",
    "inspect_store",
    "iter_request_lines",
    "job_progress",
    "job_progress_records",
    "normalize_request",
    "open_backend",
    "open_remote_backend",
    "parse_request_line",
    "parse_store_url",
    "parse_wire_line",
    "read_heartbeats",
    "report_from_dict",
    "report_to_dict",
    "shard_index",
    "workload_fingerprint",
    "write_heartbeat",
]
