"""Concurrent optimizer serving layer (plan cache + persistence).

The one-shot :class:`~repro.core.optimizer.GDOptimizer` answers a single
query; this package turns it into a component that serves *many* users
across *many* processes: :class:`OptimizerService` caches optimization
reports per workload fingerprint, coalesces concurrent identical
requests (cold computes and recalibration re-costs alike), fans a batch
of requests over a thread pool, and -- via the pluggable
:class:`CacheBackend` plan store -- persists every decision so a
restarted service starts warm.
"""

from repro.service.backends import (
    CacheBackend,
    JsonFileBackend,
    MemoryBackend,
    SqliteBackend,
    compact_store,
    inspect_store,
    open_backend,
)
from repro.service.cache import CacheStats, PlanCache, approx_nbytes
from repro.service.checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointError,
    CheckpointStore,
    JobCheckpoint,
    JobLeaseError,
)
from repro.service.fingerprint import freeze, workload_fingerprint
from repro.service.serialize import (
    PlanStoreError,
    entry_from_dict,
    entry_to_dict,
    report_from_dict,
    report_to_dict,
)
from repro.service.service import (
    JobProgress,
    OptimizerService,
    ServiceRequest,
    ServiceResult,
    TrainServiceResult,
)

__all__ = [
    "CHECKPOINT_FORMAT",
    "CacheBackend",
    "CacheStats",
    "CheckpointError",
    "CheckpointStore",
    "JobCheckpoint",
    "JobLeaseError",
    "JobProgress",
    "JsonFileBackend",
    "MemoryBackend",
    "OptimizerService",
    "PlanCache",
    "PlanStoreError",
    "ServiceRequest",
    "ServiceResult",
    "SqliteBackend",
    "TrainServiceResult",
    "approx_nbytes",
    "compact_store",
    "entry_from_dict",
    "entry_to_dict",
    "freeze",
    "inspect_store",
    "open_backend",
    "report_from_dict",
    "report_to_dict",
    "workload_fingerprint",
]
