"""Concurrent optimizer serving layer (plan cache + request coalescing).

The one-shot :class:`~repro.core.optimizer.GDOptimizer` answers a single
query; this package turns it into a component that serves *many* users:
:class:`OptimizerService` caches optimization reports per workload
fingerprint, coalesces concurrent identical requests, and fans a batch of
requests over a thread pool.
"""

from repro.service.cache import CacheStats, PlanCache, approx_nbytes
from repro.service.fingerprint import freeze, workload_fingerprint
from repro.service.service import (
    OptimizerService,
    ServiceRequest,
    ServiceResult,
    TrainServiceResult,
)

__all__ = [
    "CacheStats",
    "PlanCache",
    "approx_nbytes",
    "freeze",
    "workload_fingerprint",
    "OptimizerService",
    "ServiceRequest",
    "ServiceResult",
    "TrainServiceResult",
]
