"""Concurrent optimizer serving layer (plan cache + persistence).

The one-shot :class:`~repro.core.optimizer.GDOptimizer` answers a single
query; this package turns it into a component that serves *many* users
across *many* processes, in explicit layers:

* :mod:`repro.service.core` -- :class:`OptimizerService`: caches
  optimization reports per workload fingerprint, coalesces concurrent
  identical requests (cold computes and recalibration re-costs alike),
  and -- via the pluggable :class:`CacheBackend` plan store -- persists
  every decision so a restarted service starts warm;
* :mod:`repro.service.jobs` -- the execution layer: ``train()``,
  durable checkpointed jobs, budgets and leases;
* :mod:`repro.service.requests` -- the request/result dataclasses;
* :mod:`repro.service.frontend` -- the protocol tier: request-line
  parsing, the :class:`Dispatcher` shared by ``repro serve`` stdin and
  socket modes, and the admission-controlled :class:`SocketFrontend`;
* :mod:`repro.service.metrics` -- the :class:`MetricsRegistry` counters
  /gauges/timers threaded through all of the above;
* :mod:`repro.service.storetools` -- offline store inspection and
  compaction (``repro cache``).

``repro.service.service`` remains as a compatibility shim for pre-split
imports.
"""

from repro.service.backends import (
    CacheBackend,
    JsonFileBackend,
    MemoryBackend,
    SqliteBackend,
    open_backend,
)
from repro.service.cache import CacheStats, PlanCache, approx_nbytes
from repro.service.checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointError,
    CheckpointStore,
    JobCheckpoint,
    JobLeaseError,
)
from repro.service.core import OptimizerService
from repro.service.fingerprint import freeze, workload_fingerprint
from repro.service.frontend import (
    Dispatcher,
    SocketFrontend,
    WireRequest,
    iter_request_lines,
    parse_request_line,
    parse_wire_line,
)
from repro.service.metrics import MetricsRegistry
from repro.service.requests import (
    JobProgress,
    ServiceRequest,
    ServiceResult,
    TrainServiceResult,
    normalize_request,
)
from repro.service.serialize import (
    PlanStoreError,
    entry_from_dict,
    entry_to_dict,
    report_from_dict,
    report_to_dict,
)
from repro.service.storetools import compact_store, inspect_store

__all__ = [
    "CHECKPOINT_FORMAT",
    "CacheBackend",
    "CacheStats",
    "CheckpointError",
    "CheckpointStore",
    "Dispatcher",
    "JobCheckpoint",
    "JobLeaseError",
    "JobProgress",
    "JsonFileBackend",
    "MemoryBackend",
    "MetricsRegistry",
    "OptimizerService",
    "PlanCache",
    "PlanStoreError",
    "ServiceRequest",
    "ServiceResult",
    "SocketFrontend",
    "SqliteBackend",
    "TrainServiceResult",
    "WireRequest",
    "approx_nbytes",
    "compact_store",
    "entry_from_dict",
    "entry_to_dict",
    "freeze",
    "inspect_store",
    "iter_request_lines",
    "normalize_request",
    "open_backend",
    "parse_request_line",
    "parse_wire_line",
    "report_from_dict",
    "report_to_dict",
    "workload_fingerprint",
]
