"""JSON-serializable form of cached optimizer decisions.

The plan cache's value is everything a later process needs to *not*
repeat work: the chosen plan, the full candidate ranking, and -- most
importantly -- the speculation artifacts (fitted error curves and the
raw ``(iteration, error)`` observations behind them).  With those
persisted, a restarted service can

* serve a previously seen workload without touching the optimizer at
  all (fresh entry), or
* re-cost it from the persisted :class:`IterationsEstimate` objects when
  the calibration store moved on (stale entry) -- calibrated estimates
  without ever re-running speculative GD trials.

Everything here is plain-JSON (dicts, lists, floats, strings), so any
:class:`~repro.service.backends.CacheBackend` can store entries as text.
Numpy arrays (the speculation error observations) become nested lists
and are restored as ``float`` arrays.

**Versioning.**  Every entry carries ``entry_format``
(:data:`ENTRY_FORMAT`).  Deserialization refuses entries written by a
different format version -- the caller treats them like any other
unreadable entry and falls back to computing fresh.  The calibration
stamp (``calibration_digest``) is orthogonal: a readable entry whose
stamp no longer matches the live calibration state is *re-costed*, not
discarded.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.core.curve_fit import FittedCurve
from repro.core.iterations import IterationsEstimate
from repro.core.plans import GDPlan
from repro.core.result import OptimizationReport, PlanCostEstimate
from repro.errors import ReproError
from repro.runtime.calibration import Correction

#: Format version of one serialized plan-store entry.  Bump whenever the
#: payload shape changes incompatibly; old entries are then skipped at
#: load time (cold compute for those workloads, never a wrong answer).
#:
#: Version 2 coincides with the optimizer-state carry-over runtime
#: (``runtime.trace.TRACE_FORMAT`` 2): adaptive executions now continue
#: step schedules and updater buffers across plan switches, so the
#: iteration/cost predictions cached by format-1 services were priced
#: against restart semantics -- serving them would feed the calibration
#: loop observed/predicted ratios computed under a different execution
#: model.  Old entries cold-compute once and re-enter at format 2.
ENTRY_FORMAT = 2


class PlanStoreError(ReproError):
    """A persisted plan-store entry could not be decoded."""


# ---------------------------------------------------------------------------
# encode
# ---------------------------------------------------------------------------
def plan_to_dict(plan) -> dict:
    return {
        "algorithm": plan.algorithm,
        "transform_mode": plan.transform_mode,
        "sampling": plan.sampling,
        "batch_size": plan.batch_size,
    }


def curve_to_dict(curve) -> dict:
    return {
        "model": curve.model,
        "params": [float(p) for p in curve.params],
        "r2": float(curve.r2),
        "n_points": int(curve.n_points),
    }


def estimate_to_dict(estimate) -> dict:
    return {
        "algorithm": estimate.algorithm,
        "target_tolerance": float(estimate.target_tolerance),
        "estimated_iterations": int(estimate.estimated_iterations),
        "curve": curve_to_dict(estimate.curve),
        "speculation_errors": np.asarray(
            estimate.speculation_errors, dtype=float
        ).tolist(),
        "speculation_iterations": int(estimate.speculation_iterations),
        "speculation_wall_s": float(estimate.speculation_wall_s),
        "observed_directly": bool(estimate.observed_directly),
    }


def candidate_to_dict(candidate) -> dict:
    return {
        "plan": plan_to_dict(candidate.plan),
        "estimated_iterations": int(candidate.estimated_iterations),
        "one_time_s": float(candidate.one_time_s),
        "per_iteration_s": float(candidate.per_iteration_s),
        "total_s": float(candidate.total_s),
        "breakdown": {k: float(v) for k, v in candidate.breakdown.items()},
        "feasible": bool(candidate.feasible),
    }


def report_to_dict(report) -> dict:
    """Serialize one :class:`OptimizationReport` to plain JSON types."""
    return {
        "chosen": candidate_to_dict(report.chosen),
        "candidates": [candidate_to_dict(c) for c in report.candidates],
        "iteration_estimates": (
            None if report.iteration_estimates is None else {
                alg: estimate_to_dict(est)
                for alg, est in report.iteration_estimates.items()
            }
        ),
        "optimizer_wall_s": float(report.optimizer_wall_s),
        "speculation_sim_s": float(report.speculation_sim_s),
        "corrections": (
            None if report.corrections is None else {
                alg: dataclasses.asdict(c)
                for alg, c in report.corrections.items()
            }
        ),
    }


def entry_to_dict(report, calibration_version, calibration_digest,
                  written_at=None) -> dict:
    """One persisted plan-store entry: report + its pricing stamp.

    The stamp is the calibration store's *state digest* at pricing time
    (:meth:`CalibrationStore.state_digest`): unlike the version counter
    it is comparable across store lifetimes and across processes, so a
    restarted (or sibling) service recognises exactly whether the entry
    was priced under the correction factors it currently serves.  The
    version rides along for human inspection of the store file.

    ``written_at`` (unix seconds, default: now) lets the disk tier age
    entries out: the in-memory :class:`~repro.service.cache.PlanCache`
    always had a TTL, but persisted entries used to live forever.  It is
    an additive format-2 field -- entries written before it existed
    decode with ``written_at=None`` and are treated as un-ageable.
    """
    return {
        "entry_format": ENTRY_FORMAT,
        "calibration_version": int(calibration_version),
        "calibration_digest": str(calibration_digest),
        "written_at": float(time.time() if written_at is None else written_at),
        "report": report_to_dict(report),
    }


# ---------------------------------------------------------------------------
# decode
# ---------------------------------------------------------------------------
def plan_from_dict(payload) -> GDPlan:
    return GDPlan(
        algorithm=payload["algorithm"],
        transform_mode=payload["transform_mode"],
        sampling=payload["sampling"],
        batch_size=payload["batch_size"],
    )


def curve_from_dict(payload) -> FittedCurve:
    return FittedCurve(
        model=payload["model"],
        params=tuple(float(p) for p in payload["params"]),
        r2=float(payload["r2"]),
        n_points=int(payload["n_points"]),
    )


def estimate_from_dict(payload) -> IterationsEstimate:
    return IterationsEstimate(
        algorithm=payload["algorithm"],
        target_tolerance=float(payload["target_tolerance"]),
        estimated_iterations=int(payload["estimated_iterations"]),
        curve=curve_from_dict(payload["curve"]),
        speculation_errors=np.asarray(
            payload["speculation_errors"], dtype=float
        ),
        speculation_iterations=int(payload["speculation_iterations"]),
        speculation_wall_s=float(payload["speculation_wall_s"]),
        observed_directly=bool(payload["observed_directly"]),
    )


def candidate_from_dict(payload) -> PlanCostEstimate:
    return PlanCostEstimate(
        plan=plan_from_dict(payload["plan"]),
        estimated_iterations=int(payload["estimated_iterations"]),
        one_time_s=float(payload["one_time_s"]),
        per_iteration_s=float(payload["per_iteration_s"]),
        total_s=float(payload["total_s"]),
        breakdown=dict(payload["breakdown"]),
        feasible=bool(payload["feasible"]),
    )


def report_from_dict(payload) -> OptimizationReport:
    estimates = payload["iteration_estimates"]
    corrections = payload["corrections"]
    return OptimizationReport(
        chosen=candidate_from_dict(payload["chosen"]),
        candidates=[candidate_from_dict(c) for c in payload["candidates"]],
        iteration_estimates=(
            None if estimates is None else {
                alg: estimate_from_dict(est)
                for alg, est in estimates.items()
            }
        ),
        optimizer_wall_s=float(payload["optimizer_wall_s"]),
        speculation_sim_s=float(payload["speculation_sim_s"]),
        corrections=(
            None if corrections is None else {
                alg: Correction.from_dict(c)
                for alg, c in corrections.items()
            }
        ),
    )


def entry_from_dict(payload) -> tuple:
    """Decode one entry; returns ``(report, calibration_version,
    calibration_digest, written_at)`` where ``written_at`` is None for
    entries persisted before the stamp existed (they never age out).

    Raises :class:`PlanStoreError` on a format-version mismatch or any
    structural problem -- the caller skips the entry (cold compute),
    it never trusts a partially decoded one.
    """
    try:
        fmt = payload["entry_format"]
        if fmt != ENTRY_FORMAT:
            raise PlanStoreError(
                f"plan-store entry format {fmt!r} != supported "
                f"{ENTRY_FORMAT}; entry ignored"
            )
        written_at = payload.get("written_at")
        return (
            report_from_dict(payload["report"]),
            int(payload["calibration_version"]),
            str(payload["calibration_digest"]),
            None if written_at is None else float(written_at),
        )
    except PlanStoreError:
        raise
    except Exception as exc:
        raise PlanStoreError(
            f"malformed plan-store entry: {exc}"
        ) from exc
