"""Offline store maintenance: inspect and compact store files.

These are the read-side/maintenance tools behind ``repro cache``: they
open a plan-store or checkpoint-store file through the same
:func:`~repro.service.backends.open_backend` machinery the service uses,
but never run inside a serving process -- they moved out of
:mod:`repro.service.backends` so the backend module stays about the
storage engines themselves.  Both names remain importable from their
old home (``from repro.service.backends import inspect_store``).
"""

from __future__ import annotations

import time

from repro.service.backends import open_backend


def inspect_store(path, clock=None) -> dict:
    """Structured summary of one store file (``repro cache`` backs this).

    Classifies every entry as a plan-cache entry (``entry_format``), a
    job checkpoint (``checkpoint_format``) or unknown, and reports
    per-kind counts, format-version histograms, age statistics (from the
    ``written_at`` stamps) and job statuses.  Read-only.
    """
    now = (clock or time.time)()
    backend = open_backend(path)
    try:
        entries = backend.load()
        report = {
            "path": str(path),
            "backend": backend.name,
            "entries": len(entries),
            "plans": {"count": 0, "formats": {}, "ages_s": []},
            "jobs": {"count": 0, "formats": {}, "ages_s": [], "statuses": {}},
            "unknown": 0,
        }
        for payload in entries.values():
            if not isinstance(payload, dict):
                report["unknown"] += 1
                continue
            if "entry_format" in payload:
                bucket = report["plans"]
                fmt = payload.get("entry_format")
            elif "checkpoint_format" in payload:
                bucket = report["jobs"]
                fmt = payload.get("checkpoint_format")
                status = str(payload.get("status"))
                bucket["statuses"][status] = (
                    bucket["statuses"].get(status, 0) + 1
                )
            else:
                report["unknown"] += 1
                continue
            bucket["count"] += 1
            bucket["formats"][str(fmt)] = bucket["formats"].get(str(fmt), 0) + 1
            written = payload.get("written_at")
            if isinstance(written, (int, float)):
                bucket["ages_s"].append(max(0.0, now - float(written)))
        return report
    finally:
        backend.close()


def compact_store(path, ttl_s=None, drop_done_jobs=False, clock=None) -> dict:
    """Rewrite a store keeping only the entries worth keeping.

    Dropped: entries that fail to decode under the current formats
    (undecodable leftovers of old versions would never be served, only
    re-skipped on every load), plan entries older than ``ttl_s`` (when
    given), and -- with ``drop_done_jobs`` -- checkpoints of jobs that
    already finished.  Runs as one atomic whole-store RMW
    (:meth:`CacheBackend.mutate_all`), so compacting a *live* store
    cannot discard checkpoints or leases a concurrent writer lands
    mid-compaction.  Returns ``{"kept": n, "dropped": n}``.
    """
    from repro.service.checkpoint import JobCheckpoint
    from repro.service.serialize import PlanStoreError, entry_from_dict

    now = (clock or time.time)()
    counts = {}

    def keep_worthy(entries) -> dict:
        kept = {}
        for key, payload in entries.items():
            if not isinstance(payload, dict):
                continue
            if "checkpoint_format" in payload:
                try:
                    checkpoint = JobCheckpoint.from_dict(payload)
                except PlanStoreError:
                    continue
                if drop_done_jobs and checkpoint.status == "done":
                    continue
            else:
                try:
                    _, _, _, written_at = entry_from_dict(payload)
                except PlanStoreError:
                    continue
                if (
                    ttl_s is not None
                    and written_at is not None
                    and now - written_at > ttl_s
                ):
                    continue
            kept[key] = payload
        counts["kept"] = len(kept)
        counts["dropped"] = len(entries) - len(kept)
        return kept

    backend = open_backend(path)
    try:
        backend.mutate_all(keep_worthy)
        return dict(counts)
    finally:
        backend.close()
