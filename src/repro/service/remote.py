"""The fleet layer's network boundary: a remote ``CacheBackend``.

Everything the single-box service persists -- plan entries, job
checkpoints, leases -- goes through the :class:`CacheBackend` interface,
so the way to share state across machines is to put *that interface* on
the wire, not to invent a new storage model.  Two halves:

* :class:`StoreServer` -- the ``repro store`` process: a line-protocol
  TCP server over any local backend (memory / JSON / SQLite).  One JSON
  object per line in, one out.  Ops mirror the backend contract
  (``get``/``put``/``delete``/``scan``/``replace``/``clear``) plus the
  two things a *network* RMW needs that a callback cannot provide:
  per-key **versions** and a ``cas`` op (put-if-version, with a client
  transaction id so a retried CAS whose first attempt actually landed is
  recognized as applied instead of double-applied).  A ``jobs`` op
  reports per-job progress/ETA and worker heartbeats straight from the
  stored checkpoints.
* :class:`RemoteBackend` -- the client: implements the full
  :class:`CacheBackend` contract over that protocol, with
  retry/timeout/exponential backoff on transport faults.
  :meth:`RemoteBackend.update` runs the caller's ``fn`` locally inside
  a versioned-CAS loop, so job leases arbitrate exactly as they do over
  flock/SQLite -- the losing writer re-reads the winner's completed
  write, and ``fn``'s own refusals (:class:`JobLeaseError`) propagate
  untouched.

Keys are partitioned into **namespaces** (one server can hold a plan
store, a checkpoint store and a calibration blob without key
collisions), and a namespace can be **range-sharded** across N store
processes by fingerprint prefix (:func:`shard_index`);
:class:`ShardedBackend` routes per-key ops to the owning shard.

:func:`open_remote_backend` parses the ``tcp://host:port/namespace``
scheme (``host:port,host:port,.../ns`` for a shard set) that
:func:`~repro.service.backends.open_backend` dispatches here, so
``--cache``, ``--checkpoint`` and calibration paths point at shared
state with zero call-site changes.

**Durability contract.**  Same as every backend: :meth:`load` never
raises (an unreachable store warns and returns ``{}`` -- the service
starts cold), while :meth:`update` *does* raise after retries are
exhausted, because leases and checkpoints must not silently lose their
durability guarantee.
"""

from __future__ import annotations

import hashlib
import json
import re
import socket
import threading
import time
import uuid
import warnings

from repro.service.backends import STORE_FORMAT, CacheBackend, open_backend

#: Protocol version spoken by StoreServer/RemoteBackend; a client can
#: check it via ``ping``.  Bump on incompatible frame changes.
WIRE_FORMAT = 1

#: Default cap on one protocol frame (request or response line).  A
#: frame over the limit gets a structured ``frame_too_large`` error and
#: the connection is closed -- past the cap the line boundary cannot be
#: trusted, so resynchronizing would risk misreading the next frame.
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Namespace the URL form ``tcp://host:port`` (no path) maps to.
DEFAULT_NAMESPACE = "default"

#: Client defaults: per-call socket timeout, transport retry attempts,
#: and the exponential backoff between them.
DEFAULT_TIMEOUT_S = 10.0
DEFAULT_RETRIES = 4
DEFAULT_BACKOFF_S = 0.05
MAX_BACKOFF_S = 1.0

#: CAS attempts before update() gives up (contention, not failure --
#: each attempt re-reads the current value, so livelock would need a
#: writer storm sustained past this count).
MAX_CAS_ATTEMPTS = 64

_NAMESPACE_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: Separator between namespace and key inside the server's flat inner
#: backend.  Namespaces cannot contain ``:`` (see the regex), so
#: splitting at the first occurrence is unambiguous.
_NS_SEP = "::"

#: Server errors the client retries (transient by construction: the
#: faulty-backend window passes, the next attempt may succeed).  Frame
#: and protocol errors are deterministic -- retrying them only hides
#: the bug -- and ``cas_conflict`` is contention, handled by the CAS
#: loop, not the transport layer.
_RETRYABLE_ERRORS = {"server_error"}


class RemoteStoreError(RuntimeError):
    """A remote store call failed past the client's retry budget."""


# ----------------------------------------------------------------------
# fingerprint-range sharding
# ----------------------------------------------------------------------
def shard_point(key) -> int:
    """Map a store key onto the 32-bit fingerprint range.

    Workload fingerprints are hex digests, so their leading 8 hex chars
    *are* a uniform point in ``[0, 2^32)`` -- range-partitioning on it
    splits the fingerprint space into contiguous slabs.  Non-hex keys
    (job ids, heartbeat records) are hashed onto the same range so every
    key has exactly one owner shard.
    """
    head = str(key)[:8].lower()
    if len(head) == 8 and all(c in "0123456789abcdef" for c in head):
        return int(head, 16)
    digest = hashlib.sha1(str(key).encode("utf-8")).hexdigest()
    return int(digest[:8], 16)


def shard_index(key, count) -> int:
    """The shard (``0..count-1``) owning ``key`` under a ``count``-way
    range split of the fingerprint space."""
    count = max(1, int(count))
    return min(count - 1, (shard_point(key) * count) >> 32)


# ----------------------------------------------------------------------
# URL scheme
# ----------------------------------------------------------------------
def parse_store_url(url):
    """``tcp://host:port[,host:port...][/namespace]`` ->
    ``([(host, port), ...], namespace)``."""
    text = str(url)
    if not text.startswith("tcp://"):
        raise ValueError(f"not a tcp:// store URL: {url!r}")
    rest = text[len("tcp://"):]
    hosts_part, _, namespace = rest.partition("/")
    namespace = namespace or DEFAULT_NAMESPACE
    if not _NAMESPACE_RE.match(namespace):
        raise ValueError(
            f"invalid store namespace {namespace!r}: expected 1-64 chars "
            "of [A-Za-z0-9._-] starting with a letter or digit"
        )
    endpoints = []
    for part in hosts_part.split(","):
        host, sep, port = part.strip().rpartition(":")
        if not sep or not host:
            raise ValueError(
                f"store endpoint {part!r} must look like host:port"
            )
        try:
            endpoints.append((host, int(port)))
        except ValueError:
            raise ValueError(
                f"store endpoint {part!r} has a non-numeric port"
            ) from None
    if not endpoints:
        raise ValueError(f"store URL {url!r} names no endpoints")
    return endpoints, namespace


def open_remote_backend(url, **options) -> CacheBackend:
    """A :class:`RemoteBackend` (or, for a multi-endpoint URL, a
    :class:`ShardedBackend`) for one ``tcp://`` store URL."""
    endpoints, namespace = parse_store_url(url)
    if len(endpoints) == 1:
        host, port = endpoints[0]
        return RemoteBackend(host, port, namespace=namespace, **options)
    return ShardedBackend([
        RemoteBackend(host, port, namespace=namespace, **options)
        for host, port in endpoints
    ])


# ----------------------------------------------------------------------
# the server
# ----------------------------------------------------------------------
class StoreServer:
    """``repro store``: a line-protocol TCP server over a local backend.

    All mutations serialize under one lock, which is what makes the
    ``cas`` op an honest check-and-set: the version check and the write
    are one critical section.  Versions start at 1 for entries that
    already exist in the underlying file and increase by exactly 1 per
    mutation (puts, CAS writes, deletes alike), so an audit that reads
    versions across a write storm must see a strictly monotone sequence
    per key.  Deleted keys keep their version counter -- a reused key
    resumes counting instead of restarting at 1, so stale CAS attempts
    from before the delete still lose.

    ``shard=(index, count)`` makes the server *refuse* keys outside its
    fingerprint range (``wrong_shard``) instead of silently holding
    strays a sibling shard would never find.
    """

    def __init__(self, backend=None, path=None, host="127.0.0.1", port=0,
                 shard=None, max_frame_bytes=MAX_FRAME_BYTES, clock=None):
        if backend is None:
            backend = open_backend(path) if path else None
        if backend is None:
            from repro.service.backends import MemoryBackend

            backend = MemoryBackend()
        self.backend = backend
        self.host = host
        self.port = port
        self.shard = None
        if shard is not None:
            index, count = int(shard[0]), int(shard[1])
            if not 0 <= index < count:
                raise ValueError(f"shard index {index} not in 0..{count - 1}")
            self.shard = (index, count)
        self.max_frame_bytes = max(1024, int(max_frame_bytes))
        self._clock = clock or time.time
        self._lock = threading.Lock()
        #: Per internal key: mutation counter (monotone, survives
        #: deletes for the server's lifetime).
        self._versions = {}
        #: Per internal key: last applied CAS transaction id, so a
        #: client retrying a CAS that actually landed (fail-after-write)
        #: gets "applied" instead of a double-apply.
        self._applied_txns = {}
        #: Per namespace: whole-namespace mutation counter backing the
        #: optimistic ``replace`` (mutate_all) path.
        self._ns_versions = {}
        self._listener = None
        self._accept_thread = None
        self._stop = threading.Event()
        self._clients = set()
        self._clients_lock = threading.Lock()
        self.frames_served = 0

    # -- lifecycle -------------------------------------------------------
    def start(self) -> int:
        """Bind, listen and serve in background threads; returns the
        bound port (useful with ``port=0``)."""
        self._listener = socket.create_server(
            (self.host, self.port), reuse_port=False
        )
        self.port = self._listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="store-accept", daemon=True
        )
        self._accept_thread.start()
        return self.port

    def stop(self) -> None:
        self._stop.set()
        if self._listener is not None:
            # Closing a listening socket does not interrupt a blocked
            # accept() on every platform; a throwaway connection wakes
            # it so the accept loop observes _stop and exits now
            # instead of timing out the join below.
            try:
                host = self.host if self.host not in ("", "0.0.0.0") \
                    else "127.0.0.1"
                with socket.create_connection((host, self.port),
                                              timeout=1.0):
                    pass
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        with self._clients_lock:
            clients = list(self._clients)
        for client in clients:
            try:
                client.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                client.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        self.backend.close()

    def wait(self) -> None:
        """Block until the server is stopped."""
        while not self._stop.wait(timeout=0.5):
            pass

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc_info):
        self.stop()

    # -- connection handling ---------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                client, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            with self._clients_lock:
                self._clients.add(client)
            threading.Thread(
                target=self._serve_connection, args=(client,),
                name="store-conn", daemon=True,
            ).start()

    def _serve_connection(self, client) -> None:
        try:
            reader = client.makefile("rb")
            writer = client.makefile("wb")
            while True:
                # readline(limit) returns at most limit bytes; a chunk
                # that fills the limit without a newline is an oversized
                # frame -- reject it and drop the connection, because
                # past the cap the next line boundary is unknowable.
                raw = reader.readline(self.max_frame_bytes + 1)
                if not raw:
                    return  # clean EOF
                if len(raw) > self.max_frame_bytes and not raw.endswith(b"\n"):
                    self._send(writer, {
                        "ok": False, "error": "frame_too_large",
                        "detail": (
                            f"frame exceeds {self.max_frame_bytes} bytes; "
                            "closing connection"
                        ),
                    })
                    return
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                self._send(writer, self._handle_frame(line))
        except (OSError, ValueError):
            pass  # connection torn down mid-frame
        finally:
            with self._clients_lock:
                self._clients.discard(client)
            try:
                client.close()
            except OSError:
                pass

    def _send(self, writer, response) -> None:
        try:
            writer.write(json.dumps(response, default=str).encode("utf-8"))
            writer.write(b"\n")
            writer.flush()
        except (OSError, ValueError):
            pass  # client went away; nothing to tell it

    # -- frame dispatch --------------------------------------------------
    def _handle_frame(self, line) -> dict:
        self.frames_served += 1
        try:
            frame = json.loads(line)
        except ValueError as exc:
            return {"ok": False, "error": "bad_frame",
                    "detail": f"invalid JSON frame: {exc}"}
        if not isinstance(frame, dict):
            return {"ok": False, "error": "bad_frame",
                    "detail": "frame must be a JSON object"}
        op = frame.get("op")
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) \
            else None
        if handler is None:
            return {"ok": False, "error": "bad_request",
                    "detail": f"unknown op {op!r}"}
        try:
            return handler(frame)
        except (KeyError, TypeError, ValueError) as exc:
            return {"ok": False, "error": "bad_request",
                    "detail": f"{type(exc).__name__}: {exc}"}
        except Exception as exc:  # noqa: BLE001 - the store must live
            return {"ok": False, "error": "server_error",
                    "detail": f"{type(exc).__name__}: {exc}"}

    # -- key plumbing ----------------------------------------------------
    @staticmethod
    def _namespace(frame) -> str:
        namespace = frame.get("ns", DEFAULT_NAMESPACE)
        if not isinstance(namespace, str) or not _NAMESPACE_RE.match(namespace):
            raise ValueError(f"invalid namespace {namespace!r}")
        return namespace

    @staticmethod
    def _key(frame) -> str:
        key = frame["key"]
        if not isinstance(key, str) or not key:
            raise ValueError(f"key must be a non-empty string, got {key!r}")
        return key

    def _wrong_shard(self, key):
        if self.shard is None:
            return None
        index, count = self.shard
        owner = shard_index(key, count)
        if owner == index:
            return None
        return {
            "ok": False, "error": "wrong_shard",
            "detail": (
                f"key {key!r} belongs to shard {owner}/{count}, "
                f"this store is shard {index}/{count}"
            ),
            "shard": owner,
        }

    def _ikey(self, namespace, key) -> str:
        return f"{namespace}{_NS_SEP}{key}"

    def _version(self, ikey) -> int:
        version = self._versions.get(ikey)
        if version is None:
            # An entry inherited from the underlying file (written
            # before this server existed) starts its history at 1.
            # Mutating ops must call this *before* touching the backend
            # (see _bump), or the key's own first write would be
            # mistaken for an inherited entry.
            version = 1 if self.backend.get(ikey) is not None else 0
            self._versions[ikey] = version
        return version

    def _bump(self, namespace, ikey) -> int:
        # Assumes the pre-mutation version is already cached: every
        # mutating op snapshots _version(ikey) before writing, so the
        # write itself cannot shift the baseline.
        version = self._version(ikey) + 1
        self._versions[ikey] = version
        self._ns_versions[namespace] = self._ns_versions.get(namespace, 0) + 1
        return version

    def _ns_entries(self, namespace) -> dict:
        prefix = f"{namespace}{_NS_SEP}"
        return {
            ikey[len(prefix):]: value
            for ikey, value in self.backend.load().items()
            if ikey.startswith(prefix)
        }

    # -- ops -------------------------------------------------------------
    def _op_ping(self, frame) -> dict:
        return {
            "ok": True, "server": "repro-store",
            "wire_format": WIRE_FORMAT, "store_format": STORE_FORMAT,
            "backend": self.backend.name,
            **({"shard": list(self.shard)} if self.shard else {}),
        }

    def _op_get(self, frame) -> dict:
        namespace, key = self._namespace(frame), self._key(frame)
        rejected = self._wrong_shard(key)
        if rejected is not None:
            return rejected
        with self._lock:
            value = self.backend.get(self._ikey(namespace, key))
            version = self._version(self._ikey(namespace, key))
        return {"ok": True, "value": value, "version": version}

    def _op_put(self, frame) -> dict:
        namespace, key = self._namespace(frame), self._key(frame)
        rejected = self._wrong_shard(key)
        if rejected is not None:
            return rejected
        with self._lock:
            ikey = self._ikey(namespace, key)
            self._version(ikey)  # snapshot pre-write history
            self.backend.store(ikey, frame["value"])
            return {"ok": True, "version": self._bump(namespace, ikey)}

    def _op_delete(self, frame) -> dict:
        namespace, key = self._namespace(frame), self._key(frame)
        rejected = self._wrong_shard(key)
        if rejected is not None:
            return rejected
        with self._lock:
            ikey = self._ikey(namespace, key)
            self._version(ikey)  # snapshot pre-delete history
            existed = self.backend.get(ikey) is not None
            if existed:
                self.backend.delete(ikey)
                self._bump(namespace, ikey)
            return {"ok": True, "deleted": existed,
                    "version": self._version(ikey)}

    def _op_cas(self, frame) -> dict:
        """Put-if-version: the network form of ``CacheBackend.update``.

        ``expect`` is the version the client read (0 for "absent with no
        history"); ``value: null`` deletes.  ``txn`` makes retries after
        a lost response idempotent: if this exact transaction already
        applied, the reply says so instead of double-applying.
        """
        namespace, key = self._namespace(frame), self._key(frame)
        rejected = self._wrong_shard(key)
        if rejected is not None:
            return rejected
        expect = int(frame.get("expect", 0))
        txn = frame.get("txn")
        with self._lock:
            ikey = self._ikey(namespace, key)
            if txn is not None and self._applied_txns.get(ikey) == txn:
                return {"ok": True, "version": self._version(ikey),
                        "applied": True, "replayed": True}
            current = self._version(ikey)
            if current != expect:
                return {"ok": False, "error": "cas_conflict",
                        "version": current, "expect": expect}
            if frame.get("value") is None:
                if self.backend.get(ikey) is not None:
                    self.backend.delete(ikey)
            else:
                self.backend.store(ikey, frame["value"])
            version = self._bump(namespace, ikey)
            if txn is not None:
                self._applied_txns[ikey] = txn
            return {"ok": True, "version": version, "applied": True}

    def _op_scan(self, frame) -> dict:
        namespace = self._namespace(frame)
        with self._lock:
            return {
                "ok": True,
                "entries": self._ns_entries(namespace),
                "ns_version": self._ns_versions.get(namespace, 0),
            }

    def _op_replace(self, frame) -> dict:
        """Swap a whole namespace.  With ``expect_ns`` it is the
        optimistic whole-store CAS behind the client's ``mutate_all`` --
        a concurrent writer bumps the namespace version and the replace
        loses cleanly instead of discarding the writer's entry."""
        namespace = self._namespace(frame)
        entries = frame.get("entries")
        if not isinstance(entries, dict):
            raise ValueError("replace needs an 'entries' object")
        expect_ns = frame.get("expect_ns")
        with self._lock:
            current = self._ns_versions.get(namespace, 0)
            if expect_ns is not None and int(expect_ns) != current:
                return {"ok": False, "error": "cas_conflict",
                        "ns_version": current, "expect": int(expect_ns)}
            for key in self._ns_entries(namespace):
                if key not in entries:
                    ikey = self._ikey(namespace, key)
                    self._version(ikey)  # snapshot pre-delete history
                    self.backend.delete(ikey)
                    self._bump(namespace, ikey)
            for key, value in entries.items():
                ikey = self._ikey(namespace, str(key))
                self._version(ikey)  # snapshot pre-write history
                self.backend.store(ikey, value)
                self._bump(namespace, ikey)
            return {"ok": True,
                    "ns_version": self._ns_versions.get(namespace, 0)}

    def _op_clear(self, frame) -> dict:
        namespace = self._namespace(frame)
        with self._lock:
            for key in self._ns_entries(namespace):
                ikey = self._ikey(namespace, key)
                self._version(ikey)  # snapshot pre-delete history
                self.backend.delete(ikey)
                self._bump(namespace, ikey)
            return {"ok": True}

    def _op_jobs(self, frame) -> dict:
        """Per-job progress/ETA and worker heartbeats for a namespace,
        decoded straight from the stored checkpoints -- the store is
        where the fleet's shared truth lives, so it can answer without
        any worker being up."""
        from repro.service.worker import job_progress_records

        namespace = self._namespace(frame)
        with self._lock:
            entries = self._ns_entries(namespace)
        jobs, workers = job_progress_records(entries, now=self._clock())
        return {"ok": True, "jobs": jobs, "workers": workers}


# ----------------------------------------------------------------------
# the client
# ----------------------------------------------------------------------
class RemoteBackend(CacheBackend):
    """The full :class:`CacheBackend` contract over one ``repro store``.

    One pooled connection, guarded by a lock (callers on many threads
    serialize; the store's critical sections are tiny).  Transport
    faults -- timeouts, resets, a store restarting -- are retried with
    exponential backoff and a fresh connection per attempt;
    deterministic protocol errors are not.

    :meth:`update` is a versioned-CAS loop: read value+version, run the
    caller's ``fn`` locally, write back if-version-unchanged, retry on
    conflict from the winner's value.  Each CAS carries a transaction
    id, so a retry after a lost response cannot double-apply ``fn``.
    """

    name = "remote"

    def __init__(self, host, port, namespace=DEFAULT_NAMESPACE,
                 timeout_s=DEFAULT_TIMEOUT_S, retries=DEFAULT_RETRIES,
                 backoff_s=DEFAULT_BACKOFF_S,
                 max_frame_bytes=MAX_FRAME_BYTES, sleep=None):
        if not _NAMESPACE_RE.match(namespace):
            raise ValueError(f"invalid store namespace {namespace!r}")
        self.host = host
        self.port = int(port)
        self.namespace = namespace
        self.path = f"tcp://{host}:{port}/{namespace}"
        self.timeout_s = float(timeout_s)
        self.retries = max(0, int(retries))
        self.backoff_s = float(backoff_s)
        self.max_frame_bytes = int(max_frame_bytes)
        self._sleep = sleep or time.sleep
        self._lock = threading.Lock()
        self._sock = None
        self._reader = None
        self._writer = None

    # -- transport -------------------------------------------------------
    def _connect(self) -> None:
        if self._sock is not None:
            return
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout_s
        )
        self._sock = sock
        self._reader = sock.makefile("rb")
        self._writer = sock.makefile("wb")

    def _disconnect(self) -> None:
        for handle in (self._reader, self._writer, self._sock):
            if handle is not None:
                try:
                    handle.close()
                except OSError:
                    pass
        self._sock = self._reader = self._writer = None

    def _roundtrip(self, payload) -> dict:
        self._connect()
        self._writer.write(payload)
        self._writer.flush()
        raw = self._reader.readline(self.max_frame_bytes + 1)
        if not raw:
            raise ConnectionResetError("store closed the connection")
        response = json.loads(raw.decode("utf-8"))
        if not isinstance(response, dict):
            raise ValueError(f"non-object response: {response!r}")
        return response

    def _call(self, frame) -> dict:
        """One store op with transport retry/backoff.

        Returns the response for ``ok`` responses and ``cas_conflict``
        (the CAS loop's signal, not a failure); raises
        :class:`RemoteStoreError` for anything else once the retry
        budget is spent.
        """
        payload = json.dumps(
            {**frame, "ns": self.namespace}, default=str
        ).encode("utf-8") + b"\n"
        last_error = None
        for attempt in range(self.retries + 1):
            if attempt:
                self._sleep(min(
                    MAX_BACKOFF_S, self.backoff_s * (2 ** (attempt - 1))
                ))
            try:
                with self._lock:
                    response = self._roundtrip(payload)
            except (OSError, ValueError) as exc:
                with self._lock:
                    self._disconnect()
                last_error = f"{type(exc).__name__}: {exc}"
                continue
            if response.get("ok") or response.get("error") == "cas_conflict":
                return response
            if response.get("error") in _RETRYABLE_ERRORS:
                last_error = response.get("detail", response.get("error"))
                continue
            raise RemoteStoreError(
                f"store {self.path} refused {frame.get('op')!r}: "
                f"{response.get('error')}: {response.get('detail')}"
            )
        raise RemoteStoreError(
            f"store {self.path} unreachable after "
            f"{self.retries + 1} attempt(s) ({frame.get('op')!r}): "
            f"{last_error}"
        )

    # -- CacheBackend ----------------------------------------------------
    def load(self) -> dict:
        try:
            response = self._call({"op": "scan"})
        except RemoteStoreError as exc:
            warnings.warn(
                f"remote store {self.path} is unreachable ({exc}); "
                "starting cold", stacklevel=3,
            )
            return {}
        entries = response.get("entries")
        return dict(entries) if isinstance(entries, dict) else {}

    def get(self, key):
        try:
            return self._call({"op": "get", "key": key}).get("value")
        except RemoteStoreError:
            return None

    def get_versioned(self, key) -> tuple:
        """``(value, version)`` -- the read half of a CAS cycle."""
        response = self._call({"op": "get", "key": key})
        return response.get("value"), int(response.get("version", 0))

    def store(self, key, entry) -> None:
        self._call({"op": "put", "key": key, "value": entry})

    def update(self, key, fn):
        for _ in range(MAX_CAS_ATTEMPTS):
            value, version = self.get_versioned(key)
            entry = fn(value)
            response = self._call({
                "op": "cas", "key": key, "value": entry,
                "expect": version, "txn": uuid.uuid4().hex,
            })
            if response.get("ok"):
                return entry
            # cas_conflict: a concurrent writer won; re-read and re-run
            # fn on the winner's value -- exactly the flock/IMMEDIATE
            # serialization order, just optimistic.
        raise RemoteStoreError(
            f"store {self.path}: update({key!r}) lost "
            f"{MAX_CAS_ATTEMPTS} consecutive CAS races; giving up"
        )

    def replace(self, entries) -> None:
        self._call({"op": "replace", "entries": dict(entries)})

    def mutate_all(self, fn) -> dict:
        for _ in range(MAX_CAS_ATTEMPTS):
            response = self._call({"op": "scan"})
            entries = response.get("entries") or {}
            ns_version = int(response.get("ns_version", 0))
            entries = dict(fn(dict(entries)))
            outcome = self._call({
                "op": "replace", "entries": entries,
                "expect_ns": ns_version,
            })
            if outcome.get("ok"):
                return entries
        raise RemoteStoreError(
            f"store {self.path}: mutate_all lost "
            f"{MAX_CAS_ATTEMPTS} consecutive namespace races; giving up"
        )

    def delete(self, key) -> None:
        self._call({"op": "delete", "key": key})

    def clear(self) -> None:
        self._call({"op": "clear"})

    def close(self) -> None:
        with self._lock:
            self._disconnect()

    def ping(self) -> dict:
        """The store's identity frame (reachability check)."""
        return self._call({"op": "ping"})

    def jobs(self) -> dict:
        """The store's job-progress/heartbeat report for this
        namespace (the ``jobs`` wire verb's data source)."""
        return self._call({"op": "jobs"})

    def __len__(self) -> int:
        return len(self.load())


class ShardedBackend(CacheBackend):
    """Route one namespace across N stores by fingerprint range.

    Per-key ops (get/put/delete/update) go to the owning shard, so CAS
    atomicity is exactly the single-shard guarantee.  Whole-store reads
    merge every shard's scan; ``replace``/``mutate_all`` partition the
    entries back out.  The whole-store paths are atomic per shard, not
    across shards -- compaction over a live sharded store can interleave
    with writers on *other* shards, which is safe because entries never
    move between shards (the range map is a pure function of the key).
    """

    name = "sharded"

    def __init__(self, shards):
        if not shards:
            raise ValueError("ShardedBackend needs at least one shard")
        self.shards = list(shards)
        self.path = ",".join(
            getattr(shard, "path", None) or "?" for shard in self.shards
        )

    def _shard(self, key) -> CacheBackend:
        return self.shards[shard_index(key, len(self.shards))]

    def load(self) -> dict:
        entries = {}
        for shard in self.shards:
            entries.update(shard.load())
        return entries

    def get(self, key):
        return self._shard(key).get(key)

    def store(self, key, entry) -> None:
        self._shard(key).store(key, entry)

    def update(self, key, fn):
        return self._shard(key).update(key, fn)

    def replace(self, entries) -> None:
        count = len(self.shards)
        split = [{} for _ in range(count)]
        for key, entry in entries.items():
            split[shard_index(key, count)][key] = entry
        for shard, part in zip(self.shards, split):
            shard.replace(part)

    def mutate_all(self, fn) -> dict:
        # One optimistic RMW per shard: fn sees and returns the full
        # merged map, but each shard only swaps its own range, so a
        # lost race on shard k retries shard k alone.
        count = len(self.shards)
        merged = {}
        for index, shard in enumerate(self.shards):
            def shard_slice(entries, index=index):
                whole = dict(self.load())
                whole.update(entries)
                kept = fn(whole)
                return {
                    key: value for key, value in kept.items()
                    if shard_index(key, count) == index
                }
            merged.update(shard.mutate_all(shard_slice))
        return merged

    def delete(self, key) -> None:
        self._shard(key).delete(key)

    def clear(self) -> None:
        for shard in self.shards:
            shard.clear()

    def close(self) -> None:
        for shard in self.shards:
            shard.close()

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)
