"""The optimizer core of the service: plan cache, stamping, persistence.

:class:`OptimizerService` sits above :class:`~repro.core.optimizer.GDOptimizer`
and turns the one-shot optimizer into a serving component: many callers,
many workloads, repeated queries.  Three mechanisms make the hot path
cheap:

* a **plan cache** (:mod:`repro.service.cache`) keyed by a fingerprint of
  ``(DatasetStats, TrainingSpec, ClusterSpec)`` plus the service's own
  configuration, so a repeated workload skips re-speculation and
  re-costing entirely;
* **request coalescing** -- concurrent requests for the same fingerprint
  share one computation instead of racing to duplicate it;
* the **vectorized cost model** and **parallel speculation** underneath
  (:meth:`CostModel.estimate_batch`,
  :meth:`SpeculativeEstimator.estimate_all` with
  ``speculation_workers="auto"``; plain ``SpeculativeEstimator`` use
  elsewhere stays sequential and fully reproducible).

Each computed request runs on a fresh :class:`SimulatedCluster` so the
simulated clock of one caller never leaks into another -- the service
object itself holds no per-request mutable state outside the cache and
the calibration store.

This module is the *lookup/pricing* layer of the service; execution
(train, durable jobs, budgets) lives in :mod:`repro.service.jobs`, the
request/result shapes in :mod:`repro.service.requests`, and the network
protocol in :mod:`repro.service.frontend`.  Operational counters live in
a :class:`~repro.service.metrics.MetricsRegistry` shared by all three
layers; the legacy counter attributes (``service.computed`` etc.) are
read-only views over it.

The **adaptive runtime** (:mod:`repro.runtime`) plugs in here: every
service owns a :class:`~repro.runtime.calibration.CalibrationStore`
(optionally disk-persisted), :meth:`OptimizerService.train` executes the
chosen plan on a per-caller engine clone (adaptively, if asked) and
folds the resulting execution trace back into the store, and cached
plans remember which calibration version priced them -- a stale entry is
*re-costed* from its cached speculation results instead of being thrown
away, so repeated workloads get calibrated answers without ever
re-speculating.  Re-costs go through the same coalescing table as cold
computes, so concurrent callers never duplicate one.

A **persistent plan store** (:mod:`repro.service.backends`) extends all
of this across process restarts: with ``cache_path`` (or an explicit
``cache_backend``) every cached decision -- report, speculation
artifacts, calibration stamp -- is written through to disk and reloaded
on startup, so ``repro serve --cache plans.json`` restarted answers
previously seen workloads warm.
"""

from __future__ import annotations

import contextvars
import dataclasses
import threading
import time
import warnings
from concurrent.futures import Future, ThreadPoolExecutor

from repro.cluster import ClusterSpec, SimulatedCluster
from repro.core.iterations import SpeculationSettings, SpeculativeEstimator
from repro.core.optimizer import GDOptimizer
from repro.gd.registry import CORE_ALGORITHMS
from repro.learned import MixedCostModel, ResidualModel
from repro.obs import span
from repro.runtime import CalibrationStore
from repro.service.backends import open_backend
from repro.service.cache import PlanCache
from repro.service.checkpoint import CheckpointStore
from repro.service.fingerprint import workload_fingerprint
from repro.service.jobs import TrainingJobs
from repro.service.metrics import MetricsRegistry
from repro.service.requests import ServiceResult, normalize_request
from repro.service.serialize import (
    PlanStoreError,
    entry_from_dict,
    entry_to_dict,
)


@dataclasses.dataclass
class _CachedPlan:
    """One plan-cache value: a report plus its pricing stamp.

    ``calibration_digest`` is the calibration store's *content digest*
    (:meth:`CalibrationStore.state_digest`) at the moment the report
    was priced -- a fingerprint of the correction factors themselves,
    not a counter, so it stays comparable across restarts and across
    processes sharing one store.  A lookup whose stamp does not match
    the live digest is *stale*: the service re-costs it from the
    report's cached ``iteration_estimates`` (no re-speculation) and
    re-stamps it.  The same stamp is what a persistent backend stores,
    so a restarted service applies the identical staleness rule to
    warm-loaded entries (``calibration_version`` rides along for
    inspection).
    """

    report: object
    calibration_version: int
    calibration_digest: str


def _as_mixed_model(learned):
    """Normalise the ``learned`` constructor argument.

    Accepts None, a ready :class:`MixedCostModel`, or a bare
    :class:`ResidualModel` (wrapped with default gating).
    """
    if learned is None or isinstance(learned, MixedCostModel):
        return learned
    return MixedCostModel(learned)


def _counter(metric, doc):
    """A read-only attribute view over one metrics-registry counter."""
    def get(self):
        return self.metrics.value(metric)
    get.__doc__ = doc
    return property(get)


class OptimizerService(TrainingJobs):
    """Concurrent, caching facade over the cost-based GD optimizer.

    **Cache stamping.**  Every cached decision is stored with the
    :class:`~repro.runtime.calibration.CalibrationStore` version it was
    priced against.  A hit whose stamp equals the live version is served
    as-is; a hit whose stamp trails it is *re-costed* from the entry's
    cached speculation artifacts (cheap vectorized costing, no
    speculative GD runs) and re-stamped.  The stamp is read *before*
    pricing, so a calibration update racing a computation leaves the
    entry stale rather than silently current.

    **Eviction.**  The in-memory :class:`~repro.service.cache.PlanCache`
    composes LRU entry-count (``cache_size``), byte-budget
    (``cache_max_bytes``) and TTL (``cache_ttl_s``) eviction; eviction
    only affects the in-memory tier -- entries in a persistent backend
    (``cache_path`` / ``cache_backend``) outlive it and reload on the
    next construction.

    **Calibration factors.**  The shared store learns multiplicative
    cost/iteration corrections from adaptive :meth:`train` traces, keyed
    two-level (workload-specific with algorithm-level fallback).  Every
    optimizer this service builds prices plans through those factors, so
    one tenant's observed mis-estimates correct every tenant's future
    estimates on the same cluster.

    **Concurrency.**  Identical concurrent requests coalesce onto one
    computation (cold computes and recalibration re-costs alike); each
    computed request runs on a fresh :class:`SimulatedCluster` so no
    simulated state leaks between callers.
    """

    def __init__(
        self,
        spec=None,
        seed=0,
        speculation=None,
        algorithms=CORE_ALGORITHMS,
        batch_sizes=None,
        cache_size=256,
        speculation_workers="auto",
        cache_ttl_s=None,
        cache_max_bytes=None,
        calibration=None,
        calibration_path=None,
        learned=None,
        learned_path=None,
        adaptive_settings=None,
        cost_model=None,
        cache_path=None,
        cache_backend=None,
        store_ttl_s=None,
        checkpoint_path=None,
        checkpoint_store=None,
        lease_ttl_s=300.0,
        metrics=None,
    ):
        self.spec = spec or ClusterSpec()
        self.seed = seed
        self.speculation = speculation or SpeculationSettings()
        self.algorithms = tuple(algorithms)
        self.batch_sizes = dict(batch_sizes or {})
        self.speculation_workers = speculation_workers
        self.cache = PlanCache(
            cache_size, max_bytes=cache_max_bytes, ttl_s=cache_ttl_s
        )
        #: Operational counters/gauges/timers for every service layer
        #: (:class:`~repro.service.metrics.MetricsRegistry`); pass one in
        #: to share a registry with a front-end, or read it back through
        #: the legacy counter attributes (``service.computed`` ...).
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Learned cost/iteration corrections; loaded from
        #: ``calibration_path`` when it exists, so a restarted service
        #: starts calibrated.  Adaptive train() traces feed it.
        self.calibration = (
            calibration
            if calibration is not None
            else CalibrationStore.open(calibration_path)
        )
        #: Optional :class:`~repro.learned.mixed.MixedCostModel` (or a
        #: bare :class:`~repro.learned.model.ResidualModel`, wrapped
        #: with default gating): blends learned residual predictions
        #: into every plan ranking this service computes.  Its state
        #: digest joins the calibration digest in cache-entry stamps,
        #: so stale learned predictions trigger a recost, not a blind
        #: reuse.  ``learned_path`` is the convenience form (loads a
        #: persisted ResidualModel when the file exists).
        self.learned = _as_mixed_model(
            learned if learned is not None
            else ResidualModel.open(learned_path) if learned_path
            else None
        )
        self.adaptive_settings = adaptive_settings
        #: Optional CostModel shared by every optimizer this service
        #: builds (cost models are stateless).  Used to inject e.g. a
        #: PerturbedCostModel when evaluating the adaptive runtime.
        self.cost_model = cost_model
        #: Optional :class:`~repro.service.backends.CacheBackend`: every
        #: cached decision is written through to it, and its entries
        #: warm-start the in-memory cache here at construction -- a
        #: restarted service answers previously seen workloads without
        #: re-speculating.  ``cache_path`` is the convenience form
        #: (extension picks JSON vs SQLite, see
        #: :func:`~repro.service.backends.open_backend`).
        self.backend = (
            cache_backend if cache_backend is not None
            else open_backend(cache_path) if cache_path else None
        )
        #: Disk-tier TTL (seconds): persisted plan entries older than
        #: this age out on warm-load and on read-through -- they are
        #: deleted from the backend, not just skipped (the in-memory
        #: PlanCache always expired; the disk tier used to live forever).
        self.store_ttl_s = store_ttl_s
        #: Durable training-job checkpoints
        #: (:class:`~repro.service.checkpoint.CheckpointStore`); None
        #: disables the job API.  ``checkpoint_path`` is the convenience
        #: form (same extension rules as the plan store).
        self.checkpoints = (
            checkpoint_store if checkpoint_store is not None
            else CheckpointStore(path=checkpoint_path,
                                 lease_ttl_s=lease_ttl_s)
            if checkpoint_path else None
        )
        #: Identity stamped into checkpoint lease-history records when
        #: this service runs inside a ``repro worker`` process (the
        #: worker loop sets it); None for plain in-process services.
        self.worker_id = None
        self._inflight = {}
        self._inflight_lock = threading.Lock()
        #: Entries restored from the persistent backend at startup.
        self.warm_loaded = self._load_persisted()

    # Legacy counter attributes, now read-only views over the shared
    # metrics registry (one writer path, one source of truth).
    requests = _counter(
        "service.requests", "optimize() requests answered (any source).")
    computed = _counter(
        "service.computed", "Requests that speculated from scratch.")
    hits = _counter(
        "service.hits", "Requests served straight from the plan cache.")
    coalesced = _counter(
        "service.coalesced",
        "Requests that piggybacked on a concurrent identical one.")
    recalibrated = _counter(
        "service.recalibrated",
        "Stale entries re-costed from cached speculation.")
    trained = _counter(
        "service.trained", "train() requests executed.")
    jobs_started = _counter(
        "service.jobs_started", "Durable job leases started cold.")
    jobs_resumed = _counter(
        "service.jobs_resumed", "Durable job leases resumed mid-plan.")
    jobs_preempted = _counter(
        "service.jobs_preempted", "Job leases stopped by their budget.")
    jobs_completed = _counter(
        "service.jobs_completed", "Job leases that ran to completion.")
    expired_persisted = _counter(
        "service.expired_persisted",
        "Persisted plan entries aged out by store_ttl_s.")

    # ------------------------------------------------------------------
    def _load_persisted(self) -> int:
        """Warm-start the in-memory cache from the persistent backend.

        Unreadable or format-incompatible entries are skipped (those
        workloads compute cold); entries stamped with a calibration
        version the live store has moved past load normally and are
        re-costed from their persisted speculation on first use -- the
        same staleness rule as in-memory entries.
        """
        if self.backend is None:
            return 0
        loaded = 0
        for key, payload in self.backend.load().items():
            try:
                report, version, digest, written_at = entry_from_dict(payload)
            except PlanStoreError as exc:
                warnings.warn(
                    f"skipping persisted plan {key[:12]}...: {exc}",
                    stacklevel=2,
                )
                continue
            if self._store_expired(written_at):
                self._expire_persisted(key)
                continue
            self.cache.put(key, _CachedPlan(report, version, digest))
            loaded += 1
        return loaded

    def _store_expired(self, written_at) -> bool:
        """True when a persisted entry has outlived ``store_ttl_s``
        (entries without a stamp -- written before it existed -- never
        age out; they still recost on calibration drift)."""
        return (
            self.store_ttl_s is not None
            and written_at is not None
            and time.time() - written_at > self.store_ttl_s
        )

    def _expire_persisted(self, key) -> None:
        """Age one entry out of the disk tier (best effort)."""
        self.metrics.inc("service.expired_persisted")
        try:
            self.backend.delete(key)
        except Exception as exc:
            warnings.warn(
                f"plan store delete failed ({exc}); "
                "expired entry left behind", stacklevel=2,
            )

    def _pricing_digest(self) -> str:
        """Digest of the full pricing state entries are stamped with.

        The calibration digest alone for a plain service; with a
        learned model its state digest joins it, so refits/votes that
        would change the blended ranking invalidate stamps exactly like
        calibration drift does (recost, never blind reuse).  Services
        without a learned model keep the plain calibration digest, so
        their persisted stamps stay interchangeable with older builds.
        """
        digest = self.calibration.state_digest()
        if self.learned is not None:
            digest = f"{digest}+{self.learned.state_digest()}"
        return digest

    def _stamp_current(self, entry) -> bool:
        """True when the entry was priced against the correction state
        the live store serves right now.  Content comparison, not
        counter comparison: every pristine store digests identically
        (which is what lets a calibration-free restart serve warm-loaded
        entries as plain hits), and two stores that evolved different
        histories never collide."""
        return entry.calibration_digest == self._pricing_digest()

    def _lookup(self, key):
        """Cache lookup with backend read-through.

        An entry the in-memory cache evicted (size/TTL bounds) or never
        loaded still exists in the persistent store; fetch and promote
        it rather than re-speculating a workload that is sitting on
        disk."""
        entry = self.cache.get(key)
        if entry is not None or self.backend is None:
            return entry
        try:
            payload = self.backend.get(key)
            if payload is None:
                return None
            report, version, digest, written_at = entry_from_dict(payload)
        except PlanStoreError:
            return None  # incompatible entry: compute cold
        except Exception as exc:
            warnings.warn(
                f"plan store read failed ({exc}); computing cold",
                stacklevel=2,
            )
            return None
        if self._store_expired(written_at):
            self._expire_persisted(key)
            return None
        entry = _CachedPlan(report, version, digest)
        self.cache.put(key, entry)
        return entry

    def _cache_restored(self, key, report, version, digest) -> None:
        """Re-seed the in-memory cache with an entry restored from a
        job checkpoint (the job layer's half of :meth:`_lookup`)."""
        self.cache.put(key, _CachedPlan(report, version, digest))

    def _persist(self, key, cached) -> None:
        """Write one cache entry through to the backend (best effort:
        a failing store must degrade persistence, not requests)."""
        if self.backend is None:
            return
        try:
            self.backend.store(
                key,
                entry_to_dict(cached.report, cached.calibration_version,
                              cached.calibration_digest),
            )
        except Exception as exc:
            warnings.warn(
                f"plan store write failed ({exc}); "
                "entry is served from memory only", stacklevel=2,
            )

    def close(self) -> None:
        """Release the persistent backends (write-through means there
        is nothing to flush)."""
        if self.backend is not None:
            self.backend.close()
        if self.checkpoints is not None:
            self.checkpoints.close()

    # ------------------------------------------------------------------
    def fingerprint(self, dataset, training, fixed_iterations=None,
                    algorithms=None, batch_sizes=None) -> str:
        """Cache key of one workload under this service's configuration.

        With ``fixed_iterations`` the optimizer's answer depends only on
        ``(DatasetStats, TrainingSpec, ClusterSpec)``; without it,
        speculation runs GD on the *actual* data, so the physical
        content digest joins the key -- two datasets with coinciding
        statistics but different data must not share a report.
        """
        return workload_fingerprint(
            dataset.stats,
            training,
            self.spec,
            data_digest=(
                None if fixed_iterations is not None
                else dataset.content_digest()
            ),
            representation=dataset.representation,
            algorithms=(
                self.algorithms if algorithms is None else tuple(algorithms)
            ),
            batch_sizes=(
                self.batch_sizes if batch_sizes is None else dict(batch_sizes)
            ),
            fixed_iterations=fixed_iterations,
            speculation=self.speculation,
            speculation_workers=self.speculation_workers,
            seed=self.seed,
        )

    def _make_optimizer(self, algorithms=None, batch_sizes=None,
                        engine=None) -> GDOptimizer:
        """A fresh optimizer for one computation (on a fresh simulated
        cluster unless the caller supplies its own engine clone)."""
        if engine is None:
            engine = SimulatedCluster(self.spec, seed=self.seed)
        estimator = SpeculativeEstimator(
            self.speculation,
            seed=self.seed,
            max_workers=self.speculation_workers,
            # Settled curve-family votes steer each algorithm's error
            # curve fits (SpeculationSettings.model, per algorithm).
            model_overrides=(
                self.learned.curve_families()
                if self.learned is not None else None
            ),
        )
        return GDOptimizer(
            engine,
            estimator=estimator,
            algorithms=self.algorithms if algorithms is None else algorithms,
            batch_sizes=(
                self.batch_sizes if batch_sizes is None else batch_sizes
            ),
            cost_model=self.cost_model,
            calibration=self.calibration,
            learned=self.learned,
        )

    # ------------------------------------------------------------------
    def optimize(self, dataset, training, fixed_iterations=None,
                 algorithms=None, batch_sizes=None) -> ServiceResult:
        """Answer one optimize() request, from cache when possible.

        Identical concurrent requests coalesce onto a single computation
        -- for cold computes *and* for recalibration re-costs: a stale
        cache entry is re-priced exactly once however many callers see
        it go stale together; everyone gets the same report object.
        """
        start = time.perf_counter()
        self.metrics.inc("service.requests")
        with span("fingerprint"):
            key = self.fingerprint(
                dataset, training, fixed_iterations, algorithms, batch_sizes
            )

        with span("cache_lookup") as lookup_span:
            entry = self._lookup(key)
            hit = entry is not None and self._stamp_current(entry)
            lookup_span.set("hit", hit)
            lookup_span.set("stale", entry is not None and not hit)
        if hit:
            self.metrics.inc("service.hits")
            wall_s = time.perf_counter() - start
            self.metrics.observe("service.optimize_s", wall_s)
            return ServiceResult(
                report=entry.report,
                fingerprint=key,
                cache_hit=True,
                coalesced=False,
                wall_s=wall_s,
            )

        # A miss, or a stale entry (the calibration store learned
        # something since it was priced).  Both routes go through the
        # in-flight table, so concurrent identical requests share one
        # computation instead of duplicating it.
        self.metrics.inc("service.misses")
        with self._inflight_lock:
            future = self._inflight.get(key)
            owner = future is None
            if owner:
                future = Future()
                self._inflight[key] = future

        if not owner:
            with span("coalesced_wait"):
                report, recalibrated = future.result()
            self.metrics.inc("service.coalesced")
            wall_s = time.perf_counter() - start
            self.metrics.observe("service.optimize_s", wall_s)
            return ServiceResult(
                report=report,
                fingerprint=key,
                cache_hit=False,
                coalesced=True,
                wall_s=wall_s,
                recalibrated=recalibrated,
            )

        try:
            # Stamp with the calibration state the report is priced
            # against, read before optimizing -- a concurrent
            # calibration update while this computation runs must leave
            # the entry stale (the next request must re-cost again, not
            # serve part-stale numbers).
            version = self.calibration.version
            digest = self._pricing_digest()
            # A stale entry is re-costed from its cached speculation
            # results -- calibrated estimates with no re-speculation; a
            # plain miss speculates from scratch.
            recalibrated = entry is not None
            with span("recost" if recalibrated else "compute_plan"):
                report = self._make_optimizer(
                    algorithms, batch_sizes
                ).optimize(
                    dataset,
                    training,
                    fixed_iterations=fixed_iterations,
                    iteration_estimates=(
                        entry.report.iteration_estimates
                        if recalibrated else None
                    ),
                )
        except BaseException as exc:
            # Waiters coalesced onto this computation see the same error.
            future.set_exception(exc)
            with self._inflight_lock:
                self._inflight.pop(key, None)
            raise
        # Populate the cache *before* dropping the in-flight entry, so a
        # concurrent identical request always finds one of the two.
        cached = _CachedPlan(report, version, digest)
        self.cache.put(key, cached)
        self._persist(key, cached)
        future.set_result((report, recalibrated))
        with self._inflight_lock:
            self._inflight.pop(key, None)
        self.metrics.inc(
            "service.recalibrated" if recalibrated else "service.computed"
        )
        wall_s = time.perf_counter() - start
        self.metrics.observe("service.optimize_s", wall_s)
        return ServiceResult(
            report=report,
            fingerprint=key,
            cache_hit=False,
            coalesced=False,
            wall_s=wall_s,
            recalibrated=recalibrated,
        )

    def save_calibration(self, path=None) -> str | None:
        """Persist the calibration store (no-op without a path)."""
        if path is None and self.calibration.path is None:
            return None
        return self.calibration.save(path)

    # ------------------------------------------------------------------
    def optimize_many(self, requests, max_workers=None) -> list:
        """Serve a batch of requests concurrently; order is preserved.

        ``requests`` is an iterable of :class:`ServiceRequest`,
        ``(dataset, training)`` pairs, or
        ``(dataset, training, fixed_iterations)`` triples.
        """
        normalized = [normalize_request(r) for r in requests]
        if not normalized:
            return []
        if max_workers is None:
            max_workers = min(8, len(normalized))
        max_workers = max(1, min(max_workers, len(normalized)))
        if max_workers == 1 or len(normalized) == 1:
            return [
                self.optimize(r.dataset, r.training, r.fixed_iterations,
                              r.algorithms, r.batch_sizes)
                for r in normalized
            ]
        with ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="optimize"
        ) as pool:
            # copy_context() keeps an ambient trace on the pool threads.
            futures = [
                pool.submit(
                    contextvars.copy_context().run,
                    self.optimize, r.dataset, r.training, r.fixed_iterations,
                    r.algorithms, r.batch_sizes,
                )
                for r in normalized
            ]
            return [f.result() for f in futures]

    # Kept as a static method for pre-split callers; new code should use
    # repro.service.requests.normalize_request directly.
    _normalize = staticmethod(normalize_request)

    # ------------------------------------------------------------------
    def cache_stats(self):
        return self.cache.stats()

    def stats_summary(self) -> str:
        stats = self.cache.stats()
        text = (
            f"{stats.summary()}; {self.requests} requests "
            f"({self.computed} computed, {self.coalesced} coalesced, "
            f"{self.recalibrated} recalibrated)"
        )
        if self.trained:
            text += f"; {self.trained} trained"
        if self.calibration.observations:
            text += f"; calibration v{self.calibration.version}"
        if self.backend is not None:
            text += (
                f"; plan store: {self.backend.name}"
                f" ({self.warm_loaded} warm-loaded"
                + (f", {self.expired_persisted} aged out"
                   if self.expired_persisted else "")
                + ")"
            )
        jobs = self.jobs_started + self.jobs_resumed
        if jobs:
            text += (
                f"; {jobs} job lease(s) "
                f"({self.jobs_resumed} resumed, "
                f"{self.jobs_preempted} preempted, "
                f"{self.jobs_completed} completed)"
            )
        return text
