"""The training/job layer of the optimizer service.

:class:`TrainingJobs` is the mixin that gives
:class:`~repro.service.core.OptimizerService` its execution surface:
``train()`` (optimize through the plan cache, then execute on a
per-caller engine clone), ``train_many()`` batching, and the durable
checkpointed-job machinery (``job_id=`` leases, budget preemption,
crash/resume).  It owns no state of its own -- everything it touches
(cache, backends, calibration, checkpoint store, metrics) is constructed
by the core's ``__init__``; the split is purely structural so the plan
cache/lookup layer and the execution layer can be read and changed
independently.
"""

from __future__ import annotations

import contextvars
import time
import warnings
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.cluster import SimulatedCluster
from repro.core.executor import execute_plan
from repro.core.result import TrainResult
from repro.gd.state import OptimizerState
from repro.obs import span
from repro.runtime import (
    AdaptiveSettings,
    AdaptiveTrainer,
    ExecutionTrace,
    ResumePoint,
)
from repro.service.checkpoint import (
    CheckpointError,
    JobCheckpoint,
    new_owner_token,
)
from repro.service.requests import (
    JobProgress,
    ServiceResult,
    TrainServiceResult,
    normalize_request,
)
from repro.service.serialize import (
    PlanStoreError,
    candidate_from_dict,
    candidate_to_dict,
    entry_from_dict,
    entry_to_dict,
)


class TrainingJobs:
    """Train/execute methods mixed into the OptimizerService core."""

    # ------------------------------------------------------------------
    def train(self, dataset, training, fixed_iterations=None,
              algorithms=None, batch_sizes=None, adaptive=False,
              adaptive_settings=None, operators=None,
              engine=None, job_id=None, checkpoint_every=None,
              budget=None, job_request=None) -> TrainServiceResult:
        """Optimize (through the plan cache), then execute the plan.

        Execution runs on a **per-caller engine clone** -- a fresh
        :class:`SimulatedCluster` per request (or the caller's own via
        ``engine``), so one caller's simulated clock, cache residency
        and metrics never leak into another's.

        With ``adaptive=True`` the plan runs under the adaptive runtime:
        convergence/cost monitoring, mid-flight re-optimization, and the
        resulting :class:`~repro.runtime.trace.ExecutionTrace` is folded
        into this service's calibration store -- subsequent requests for
        the same workload are then re-costed from cached speculation
        with the learned corrections (never re-speculated).

        A ``budget`` (:class:`~repro.runtime.JobBudget`) bounds the run
        even without a ``job_id``: the request executes under the
        runtime's lease monitor (no mid-flight switching unless
        ``adaptive``) and comes back with ``result.preempted`` when the
        budget stops it early.  This is what per-request deadlines from
        the front-end map into.

        **Durable jobs.**  With ``job_id`` the request becomes a
        checkpointed, preemptible job against this service's
        :class:`~repro.service.checkpoint.CheckpointStore`
        (``checkpoint_path=``): progress -- weights, optimizer state,
        execution trace, the plan decision -- is persisted every
        ``checkpoint_every`` global iterations and at every graceful
        stop, under an advisory lease so sibling processes cannot
        double-run the job.  A ``budget`` bounds this lease; when it
        runs out the call returns with ``job.preempted`` and a fresh
        process (same store, same request, same ``job_id``) resumes
        mid-plan, bit-identically, without re-speculating.  A job that
        already finished returns its stored outcome without executing
        anything.  ``job_request`` optionally attaches a caller-level
        request descriptor to the checkpoints (the CLI stores the parsed
        request line, which is how a restarted server re-issues
        in-flight jobs).
        """
        if job_id is not None:
            if operators is not None:
                raise CheckpointError(
                    "durable jobs cannot run custom operator bundles: "
                    "a resuming process could not reconstruct them from "
                    "the checkpoint; drop operators= or job_id="
                )
            return self._train_job(
                dataset, training, fixed_iterations, algorithms,
                batch_sizes, adaptive, adaptive_settings, job_id,
                checkpoint_every, budget, job_request,
            )
        optimization = self.optimize(
            dataset, training, fixed_iterations, algorithms, batch_sizes
        )
        if engine is None:
            engine = SimulatedCluster(self.spec, seed=self.seed)
        report = optimization.report
        if not optimization.cache_hit and not optimization.recalibrated:
            # This request paid for speculation: reflect it in the
            # caller's simulated clock (sample collection + trial wall),
            # like GDOptimizer.train does.  Cached/recalibrated requests
            # skip it -- that saving is the point of the plan cache.
            report.charge_speculation(engine, include_sample_collection=True)

        if adaptive or budget is not None:
            trainer = AdaptiveTrainer(
                self._make_optimizer(algorithms, batch_sizes, engine=engine),
                settings=(
                    (adaptive_settings or self.adaptive_settings)
                    if adaptive
                    # A budget without adaptive= runs the same
                    # single-plan execution as plain train(): telemetry
                    # and the lease monitor only, no switching.
                    else AdaptiveSettings(max_switches=0)
                ),
                calibration=self.calibration if adaptive else None,
                learned=self.learned if adaptive else None,
            )
            adaptive_result = trainer.train(
                dataset, training, fixed_iterations=fixed_iterations,
                report=report, budget=budget,
            )
            result, trace = adaptive_result.result, adaptive_result.trace
        else:
            adaptive_result = None
            trace = None
            with span(
                "plan_segment",
                algorithm=report.chosen_plan.algorithm,
                plan=str(report.chosen_plan),
                start_iteration=0,
            ) as segment_span:
                result = execute_plan(
                    engine, dataset, report.chosen_plan, training, operators
                )
                segment_span.set("iterations", int(result.iterations))
                segment_span.set("converged", bool(result.converged))
        self.metrics.inc("service.trained")
        return TrainServiceResult(
            optimization=optimization,
            result=result,
            trace=trace,
            adaptive=adaptive_result,
        )

    # ------------------------------------------------------------------
    def _report_from_entry(self, key, plan_entry):
        """Restore a job's pricing report from its checkpointed
        plan-store entry (and re-seed the plan cache/store with it), or
        None when the entry is unusable.

        The entry is re-persisted *verbatim* -- original calibration
        stamp, original ``written_at`` -- so a resume neither mislabels
        old pricing as freshly calibrated (the stamp staleness rule
        must keep firing) nor rejuvenates an entry the disk-tier TTL
        should age out.
        """
        if plan_entry is None:
            return None
        try:
            report, version, digest, _ = entry_from_dict(plan_entry)
        except PlanStoreError as exc:
            warnings.warn(
                f"job plan entry is unusable ({exc}); re-optimizing",
                stacklevel=3,
            )
            return None
        self._cache_restored(key, report, version, digest)
        if self.backend is not None:
            try:
                self.backend.store(key, plan_entry)
            except Exception as exc:
                warnings.warn(
                    f"plan store write failed ({exc}); "
                    "entry is served from memory only", stacklevel=2,
                )
        return report

    def _finished_job_result(self, job_id, key, checkpoint, report,
                             start) -> TrainServiceResult:
        """The stored outcome of a job that already ran to completion
        (idempotent re-submission: nothing executes, nothing
        re-speculates)."""
        trace = ExecutionTrace.from_dict(checkpoint.trace)
        chosen = candidate_from_dict(checkpoint.chosen)
        last = trace.segments[-1] if trace.segments else None
        result = TrainResult(
            plan=chosen.plan,
            weights=np.asarray(checkpoint.weights, dtype=float),
            iterations=trace.total_iterations,
            converged=trace.converged,
            deltas=np.asarray(last.deltas if last else [], dtype=float),
            sim_seconds=trace.sim_seconds,
            phase_seconds=dict(last.phase_seconds) if last else {},
            metrics={},
            state=(
                OptimizerState.from_dict(checkpoint.state)
                if checkpoint.state is not None else None
            ),
        )
        return TrainServiceResult(
            optimization=ServiceResult(
                report=report,
                fingerprint=key,
                cache_hit=True,
                coalesced=False,
                wall_s=time.perf_counter() - start,
            ),
            result=result,
            trace=trace,
            job=JobProgress(
                job_id=job_id,
                status="done",
                resumed=True,
                preempted=False,
                done_iterations=int(checkpoint.done_iterations),
                already_done=True,
            ),
        )

    def _train_job(self, dataset, training, fixed_iterations, algorithms,
                   batch_sizes, adaptive, adaptive_settings, job_id,
                   checkpoint_every, budget,
                   job_request) -> TrainServiceResult:
        """One lease of a durable training job (see :meth:`train`)."""
        if self.checkpoints is None:
            raise CheckpointError(
                f"train(job_id={job_id!r}) needs a checkpoint store; "
                "construct the service with checkpoint_path= or "
                "checkpoint_store="
            )
        start = time.perf_counter()
        key = self.fingerprint(
            dataset, training, fixed_iterations, algorithms, batch_sizes
        )
        owner = new_owner_token()
        # The lease is the double-run guard: acquired atomically through
        # the backend (flock / BEGIN IMMEDIATE), raising JobLeaseError
        # when a sibling process actively holds the job.
        checkpoint = self.checkpoints.acquire(job_id, owner)
        try:
            if checkpoint is not None and checkpoint.fingerprint \
                    and checkpoint.fingerprint != key:
                raise CheckpointError(
                    f"job {job_id!r} is bound to workload "
                    f"{checkpoint.fingerprint[:12]}..., but this request "
                    f"fingerprints as {key[:12]}...; refusing to resume a "
                    "different workload under the same job id"
                )
            if checkpoint is not None and checkpoint.status == "done" \
                    and checkpoint.resumable:
                report = self._report_from_entry(key, checkpoint.plan_entry)
                if report is not None:
                    self.metrics.inc("service.requests")
                else:
                    # Undecodable plan entry: re-optimize (warm via the
                    # plan store when possible) so every downstream
                    # consumer still gets a real report.
                    report = self.optimize(
                        dataset, training, fixed_iterations, algorithms,
                        batch_sizes,
                    ).report
                return self._finished_job_result(
                    job_id, key, checkpoint, report, start
                )

            resume = None
            restored_entry = False
            if checkpoint is not None and checkpoint.resumable:
                if bool(checkpoint.adaptive) != bool(adaptive):
                    # The mode is part of the job, not of the lease: a
                    # non-adaptive resume of an adaptive job would keep
                    # the persisted switch allowance monitoring while
                    # feeding no calibration (and vice versa would pin
                    # a job that was promised switching).
                    warnings.warn(
                        f"job {job_id!r} was started with "
                        f"adaptive={bool(checkpoint.adaptive)}; resuming "
                        f"with that mode (requested adaptive={adaptive})",
                        stacklevel=3,
                    )
                    adaptive = bool(checkpoint.adaptive)
                # Resume mid-plan: the checkpoint carries the pricing
                # decision, so nothing re-speculates -- not even when
                # the plan store was lost.
                report = self._report_from_entry(key, checkpoint.plan_entry)
                restored_entry = report is not None
                resume = ResumePoint(
                    weights=checkpoint.weights,
                    state=checkpoint.state,
                    chosen=candidate_from_dict(checkpoint.chosen),
                    trace=ExecutionTrace.from_dict(checkpoint.trace),
                    done_iterations=checkpoint.done_iterations,
                    switches_left=checkpoint.switches_left,
                )
                if report is not None:
                    optimization = ServiceResult(
                        report=report,
                        fingerprint=key,
                        cache_hit=True,
                        coalesced=False,
                        wall_s=time.perf_counter() - start,
                    )
                    self.metrics.inc("service.requests")
                else:
                    # The checkpointed pricing decision is unusable:
                    # re-optimize for the report (the training itself
                    # still resumes from the checkpointed plan/state).
                    optimization = self.optimize(
                        dataset, training, fixed_iterations, algorithms,
                        batch_sizes,
                    )
                    report = optimization.report
                self.metrics.inc("service.jobs_resumed")
            else:
                optimization = self.optimize(
                    dataset, training, fixed_iterations, algorithms,
                    batch_sizes,
                )
                report = optimization.report
                self.metrics.inc("service.jobs_started")

            engine = SimulatedCluster(self.spec, seed=self.seed)
            if resume is None and not optimization.cache_hit \
                    and not optimization.recalibrated:
                report.charge_speculation(
                    engine, include_sample_collection=True
                )
            if restored_entry:
                # Carry the checkpointed entry verbatim: its original
                # calibration stamp must keep driving the staleness
                # rule, and its original written_at must keep driving
                # disk-tier aging.  Only freshly optimized reports get
                # a fresh stamp.
                plan_entry = checkpoint.plan_entry
            else:
                plan_entry = entry_to_dict(
                    report, self.calibration.version,
                    self._pricing_digest(),
                )

            trainer = AdaptiveTrainer(
                self._make_optimizer(algorithms, batch_sizes, engine=engine),
                settings=(
                    (adaptive_settings or self.adaptive_settings)
                    if adaptive
                    # Non-adaptive jobs run the same single-plan
                    # execution as plain train(): telemetry only, no
                    # mid-flight switching.
                    else AdaptiveSettings(max_switches=0)
                ),
                calibration=self.calibration if adaptive else None,
                learned=self.learned if adaptive else None,
            )

            # This lease's entry in the job's audit trail: carried
            # forward from the previous checkpoint and extended on every
            # write, so the persisted history records exactly which
            # owner executed which iteration range.  The chaos suite's
            # exactly-once check is that these ranges chain without gap
            # or overlap.
            lease_record = {
                "owner": owner,
                "worker": self.worker_id,
                "start_iteration": int(
                    resume.done_iterations if resume is not None else 0
                ),
                "end_iteration": int(
                    resume.done_iterations if resume is not None else 0
                ),
                "status": "running",
            }
            history = list(checkpoint.history) if checkpoint is not None \
                else []
            history.append(lease_record)

            def persist(snapshot):
                # NOT best-effort: a job that cannot checkpoint has lost
                # its durability guarantee, so store errors propagate
                # (they also release the lease in the finally below).
                lease_record["end_iteration"] = int(snapshot.done_iterations)
                lease_record["status"] = snapshot.status
                self.checkpoints.save(JobCheckpoint(
                    job_id=job_id,
                    status=snapshot.status,
                    fingerprint=key,
                    weights=np.asarray(
                        snapshot.weights, dtype=float
                    ).tolist(),
                    state=(
                        snapshot.state.to_dict()
                        if snapshot.state is not None else None
                    ),
                    chosen=candidate_to_dict(snapshot.chosen),
                    trace=snapshot.trace.to_dict(),
                    done_iterations=snapshot.done_iterations,
                    switches_left=snapshot.switches_left,
                    adaptive=adaptive,
                    plan_entry=plan_entry,
                    request=job_request,
                    history=history,
                ), owner=owner)

            adaptive_result = trainer.train(
                dataset, training, fixed_iterations=fixed_iterations,
                report=report, resume=resume,
                checkpoint_every=checkpoint_every, budget=budget,
                on_checkpoint=persist,
            )
        finally:
            self.checkpoints.release(job_id, owner)

        self.metrics.inc("service.trained")
        if adaptive_result.preempted:
            self.metrics.inc("service.jobs_preempted")
        else:
            self.metrics.inc("service.jobs_completed")
        return TrainServiceResult(
            optimization=optimization,
            result=adaptive_result.result,
            trace=adaptive_result.trace,
            adaptive=adaptive_result if adaptive else None,
            job=JobProgress(
                job_id=job_id,
                status=(
                    "preempted" if adaptive_result.preempted else "done"
                ),
                resumed=resume is not None,
                preempted=adaptive_result.preempted,
                done_iterations=adaptive_result.trace.total_iterations,
            ),
        )

    # ------------------------------------------------------------------
    def train_many(self, requests, max_workers=None, adaptive=False,
                   adaptive_settings=None) -> list:
        """Serve a batch of train() requests concurrently; order preserved.

        Same request forms as :meth:`optimize_many`; every request
        executes on its own engine clone, so concurrent training runs
        stay isolated.
        """
        normalized = [normalize_request(r) for r in requests]
        if not normalized:
            return []
        if max_workers is None:
            max_workers = min(8, len(normalized))
        max_workers = max(1, min(max_workers, len(normalized)))

        def one(request):
            return self.train(
                request.dataset, request.training, request.fixed_iterations,
                request.algorithms, request.batch_sizes,
                adaptive=adaptive, adaptive_settings=adaptive_settings,
                job_id=request.job_id,
                checkpoint_every=request.checkpoint_every,
                budget=request.budget,
                job_request=request.job_request,
            )

        if max_workers == 1 or len(normalized) == 1:
            return [one(r) for r in normalized]
        with ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="train"
        ) as pool:
            # copy_context() keeps an ambient trace on the pool threads.
            futures = [
                pool.submit(contextvars.copy_context().run, one, r)
                for r in normalized
            ]
            return [f.result() for f in futures]
