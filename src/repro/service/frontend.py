"""The protocol front-end of the optimizer service.

This module is the serving tier the paper's "declarative GD service"
story needs above :class:`~repro.service.core.OptimizerService`: parse a
request line, dispatch it to the optimizer core, and -- for the socket
server -- decide *whether to accept it at all*.  Three pieces:

* **Line parsing** (:func:`parse_request_line`, :func:`parse_wire_line`)
  -- the CLI's ``<dataset> key=value ...`` grammar, extended on the wire
  with JSON-object lines and wire-only keys: ``verb`` (``optimize`` /
  ``train`` / ``enqueue`` -- park a durable job for the worker fleet --
  / ``metrics`` / ``trace`` / ``jobs``), ``tenant`` (quota accounting),
  ``deadline_s`` (per-request deadline) and ``trace_id`` (adopt a
  client-chosen trace id, or name the trace the ``trace`` verb reads).
* **Dispatch** (:class:`Dispatcher`) -- turns one parsed request into
  one structured response dict, catching request errors into
  ``{"ok": false, "error": ...}`` instead of letting them kill a serve
  loop.  The stdin loop (``repro serve``) and the socket server share
  this path, so a malformed line behaves identically on both.
* **Admission control** (:class:`SocketFrontend`) -- a thread-pool TCP
  server speaking JSON lines, with a bounded admission count
  (load-shedding above ``shed_after``), per-tenant max-inflight quotas,
  and per-request deadlines that map into
  :class:`~repro.runtime.JobBudget` ``max_seconds`` so a deadline does
  not just reject queued work -- it preempts running work gracefully,
  checkpoint included.

Rejections are cheap and structured (``overloaded`` /
``quota_exceeded`` / ``deadline_exceeded``), which is the point of
admission control: under overload the server sheds load in O(1) instead
of queueing unboundedly and timing everyone out.
"""

from __future__ import annotations

import dataclasses
import json
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.errors import ReproError
from repro.obs import TraceRecorder, emit_span, render_tree
from repro.obs.recorder import valid_trace_id
from repro.service.metrics import MetricsRegistry

#: Request-line keys coerced to int / float; the rest stay strings.
_INT_KEYS = {"max_iter", "batch", "fixed_iterations", "seed",
             "checkpoint_every", "lease_iterations"}
_FLOAT_KEYS = {"epsilon", "time_budget", "step", "l2", "lease_seconds"}
_STR_KEYS = {"task", "algorithm", "convergence", "job_id"}
_ALL_KEYS = _INT_KEYS | _FLOAT_KEYS | _STR_KEYS

#: Wire-only keys: protocol envelope, never part of the optimizer
#: request (they must not reach ML4all.optimize/train kwargs).
_WIRE_KEYS = {"verb", "tenant", "deadline_s", "id", "trace_id"}
_VERBS = {"optimize", "train", "enqueue", "metrics", "trace", "jobs"}

#: Verbs that carry no optimizer request: ``metrics``/``jobs`` report
#: server/fleet state, ``trace`` looks a recorded trace up.
_NO_REQUEST_VERBS = {"metrics", "trace", "jobs"}

#: Tenant used when a request does not name one.
DEFAULT_TENANT = "default"


def _coerce(key, value):
    """Coerce one request value to its declared type (int/float/str)."""
    try:
        if key in _INT_KEYS:
            return int(value)
        if key in _FLOAT_KEYS:
            return float(value)
        return str(value)
    except (TypeError, ValueError):
        raise ReproError(f"invalid value for {key}: {value!r}") from None


def parse_request_line(line) -> dict:
    """Parse one ``<dataset> key=value ...`` request line."""
    tokens = line.split()
    if not tokens or "=" in tokens[0]:
        raise ReproError(
            f"request line must start with a dataset reference: {line!r}"
        )
    request = {"dataset": tokens[0]}
    for token in tokens[1:]:
        key, sep, value = token.partition("=")
        if not sep or not key or not value:
            raise ReproError(f"expected key=value, got {token!r}")
        if key not in _ALL_KEYS:
            raise ReproError(
                f"unknown request key {key!r}; expected one of "
                f"{sorted(_ALL_KEYS)}"
            )
        request[key] = _coerce(key, value)
    return request


def iter_request_lines(handle):
    """Yield parsed request dicts from a line stream, skipping comments."""
    for line in handle:
        line = line.split("#", 1)[0].strip()
        if line:
            yield parse_request_line(line)


@dataclasses.dataclass(frozen=True)
class WireRequest:
    """One parsed protocol line: envelope plus optimizer request."""

    #: ``optimize`` / ``train`` / ``enqueue`` / ``metrics`` / ``trace``
    #: / ``jobs``; None means "server default" (train mode, or a line
    #: naming a job_id, trains).
    verb: str | None
    #: The optimizer request dict (None for ``metrics``).
    request: dict | None
    #: Tenant the per-tenant inflight quota accounts this request to.
    tenant: str = DEFAULT_TENANT
    #: Relative deadline in seconds; maps into JobBudget.max_seconds.
    deadline_s: float | None = None
    #: Opaque client correlation id, echoed on the response.
    id: object = None
    #: Client-supplied trace id (adopted for the request's trace); for
    #: the ``trace`` verb, the trace to look up.
    trace_id: str | None = None


def _split_envelope(pairs) -> tuple:
    """Split ``(key, value)`` pairs into (envelope dict, request dict)."""
    wire, request = {}, {}
    for key, value in pairs:
        if key in _WIRE_KEYS:
            wire[key] = value
        elif key == "dataset":
            request[key] = str(value)
        elif key in _ALL_KEYS:
            request[key] = _coerce(key, value)
        else:
            raise ReproError(
                f"unknown request key {key!r}; expected one of "
                f"{sorted(_ALL_KEYS | _WIRE_KEYS | {'dataset'})}"
            )
    verb = wire.get("verb")
    if verb is not None:
        verb = str(verb)
        if verb not in _VERBS:
            raise ReproError(
                f"unknown verb {verb!r}; expected one of {sorted(_VERBS)}"
            )
    deadline = wire.get("deadline_s")
    if deadline is not None:
        try:
            deadline = float(deadline)
        except (TypeError, ValueError):
            raise ReproError(
                f"invalid value for deadline_s: {deadline!r}"
            ) from None
        if deadline <= 0:
            raise ReproError("deadline_s must be positive")
    tenant = str(wire.get("tenant", DEFAULT_TENANT))
    trace_id = wire.get("trace_id")
    if trace_id is not None:
        trace_id = str(trace_id)
        if not valid_trace_id(trace_id):
            raise ReproError(
                f"invalid trace_id {trace_id!r}: expected 1-64 chars of "
                "[A-Za-z0-9._:-] starting with a letter or digit"
            )
    return verb, request, tenant, deadline, wire.get("id"), trace_id


def parse_wire_line(line) -> WireRequest:
    """Parse one protocol line into a :class:`WireRequest`.

    Two syntaxes, one grammar:

    * a JSON object per line -- ``{"dataset": "adult", "epsilon": 0.01,
      "verb": "train", "tenant": "t1", "deadline_s": 2.5}``;
    * the CLI request-line syntax, optionally carrying the wire keys as
      ``key=value`` tokens -- ``adult epsilon=0.01 deadline_s=2.5`` --
      plus the bare verb line ``metrics`` and the two-token lookup
      ``trace <id>``.
    """
    text = line.strip()
    if text.startswith("{"):
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise ReproError(f"invalid JSON request: {exc}") from None
        if not isinstance(payload, dict):
            raise ReproError(
                f"JSON request must be an object, got {type(payload).__name__}"
            )
        verb, request, tenant, deadline, rid, trace_id = _split_envelope(
            payload.items()
        )
    else:
        text = text.split("#", 1)[0].strip()
        tokens = text.split()
        if len(tokens) == 1 and tokens[0] in _VERBS:
            verb, request, tenant, deadline, rid, trace_id = tokens[0], {}, \
                DEFAULT_TENANT, None, None, None
        elif len(tokens) == 2 and tokens[0] == "trace":
            verb, request, tenant, deadline, rid, trace_id = \
                _split_envelope([("verb", "trace"),
                                 ("trace_id", tokens[1])])
        else:
            pairs = []
            rest = []
            for token in tokens[1:] if tokens else []:
                key, sep, value = token.partition("=")
                if sep and key in _WIRE_KEYS:
                    pairs.append((key, value))
                else:
                    rest.append(token)
            request_line = " ".join(tokens[:1] + rest)
            request = parse_request_line(request_line)
            verb, _, tenant, deadline, rid, trace_id = _split_envelope(pairs)
    if verb == "trace" and trace_id is None:
        raise ReproError("the 'trace' verb needs a trace_id")
    if verb not in _NO_REQUEST_VERBS and "dataset" not in request:
        raise ReproError(
            "request line must name a dataset (or use the 'metrics' verb)"
        )
    return WireRequest(
        verb=verb,
        request=request if verb not in _NO_REQUEST_VERBS else None,
        tenant=tenant,
        deadline_s=deadline,
        id=rid,
        trace_id=trace_id,
    )


class Dispatcher:
    """Turn parsed requests into structured responses over one ML4all.

    This is the protocol-independent half of the front-end: the stdin
    serve loop and :class:`SocketFrontend` both feed lines through it,
    so a malformed request produces the identical structured error on
    both -- and neither loop dies.

    Response dicts always carry ``ok``; successful ones add ``verb``,
    ``summary`` and the human-readable ``lines`` the stdin loop prints,
    failed ones ``error`` (a stable kind: ``bad_request``,
    ``request_failed``, ``internal``, or the front-end's admission kinds)
    plus a ``detail`` message.

    The dispatcher is also where traces begin: every optimize/train
    request runs under a root ``request`` span (the client's
    ``trace_id`` adopted when supplied, a fresh one minted otherwise)
    whose id is echoed on the response, and the ``trace`` verb reads a
    recorded trace back out of the shared :class:`TraceRecorder`.
    """

    def __init__(self, system, train=False, adaptive=False, workers=None,
                 metrics=None, tracer=None):
        self.system = system
        self.adaptive = adaptive
        self.train_mode = train or adaptive
        self.workers = workers
        self.metrics = (
            metrics if metrics is not None else system.service().metrics
        )
        self.tracer = (
            tracer if tracer is not None
            else TraceRecorder(metrics=self.metrics)
        )

    # ------------------------------------------------------------------
    def handle_line(self, line, tenant=None) -> dict:
        """Parse and dispatch one protocol line; never raises for
        request-level failures."""
        try:
            wire = parse_wire_line(line)
        except ReproError as exc:
            self.metrics.inc("frontend.bad_requests")
            return {"ok": False, "error": "bad_request", "detail": str(exc)}
        if tenant is not None and wire.tenant == DEFAULT_TENANT:
            wire = dataclasses.replace(wire, tenant=tenant)
        return self.handle(wire)

    def handle(self, wire, remaining_s=None, queue_wait_s=None) -> dict:
        """Dispatch one :class:`WireRequest` (already admitted).

        ``remaining_s`` is the deadline budget left *after* queueing;
        it defaults to the request's full ``deadline_s``.
        ``queue_wait_s`` (when the caller measured one) becomes the
        request trace's ``admission`` span.
        """
        self.metrics.inc("frontend.requests")
        if wire.verb == "metrics":
            snapshot = self.metrics.snapshot()
            return self._respond(wire, {
                "verb": "metrics",
                "metrics": snapshot,
                "prometheus": self.metrics.render_prometheus(),
                "lines": self.metrics.summary_lines(),
            })
        if wire.verb == "trace":
            return self._trace_body(wire)
        if wire.verb == "jobs":
            return self._jobs_body(wire)
        request = dict(wire.request)
        if wire.verb == "enqueue":
            return self._enqueue(wire, request)
        trains = (
            wire.verb == "train"
            or (wire.verb is None
                and (self.train_mode or "job_id" in request))
        )
        with self.tracer.trace(
            "request",
            trace_id=wire.trace_id,
            verb="train" if trains else "optimize",
            dataset=request.get("dataset"),
            tenant=wire.tenant,
        ) as root:
            if queue_wait_s is not None:
                emit_span("admission", queue_wait_s)
            if trains and "job_id" in request:
                # Stamp the request trace's id into the job request:
                # it rides into the checkpointed descriptor, so a fleet
                # worker resuming this job on another machine joins the
                # submitting request's trace.
                root_trace_id = getattr(root, "trace_id", None)
                if root_trace_id is not None:
                    request.setdefault("trace_id", root_trace_id)
            response = self._execute(wire, request, trains, remaining_s)
            root.set("ok", bool(response.get("ok")))
            if not response.get("ok"):
                root.set("error", response.get("error"))
        trace_id = getattr(root, "trace_id", None)
        if trace_id is not None:
            response.setdefault("trace_id", trace_id)
        return response

    def _execute(self, wire, request, trains, remaining_s) -> dict:
        """Run one optimize/train request inside its root span."""
        start = time.perf_counter()
        if remaining_s is None:
            remaining_s = wire.deadline_s
        if remaining_s is not None and trains:
            # The deadline bounds *execution*, not just queueing: it
            # tightens the request's lease budget, so the run stops
            # gracefully (checkpointing, for durable jobs) instead of
            # being cut off.
            current = request.get("lease_seconds")
            request["lease_seconds"] = (
                remaining_s if current is None
                else min(current, remaining_s)
            )
        try:
            if trains:
                (result,) = self.system.train_many(
                    [request], max_workers=1, adaptive=self.adaptive,
                )
                body = self._train_body(request, result)
            else:
                (result,) = self.system.optimize_many(
                    [request], max_workers=1,
                )
                body = self._optimize_body(request, result)
        except ReproError as exc:
            self.metrics.inc("frontend.request_failed")
            return {
                "ok": False,
                "error": "request_failed",
                "detail": str(exc),
                **({"id": wire.id} if wire.id is not None else {}),
            }
        except Exception as exc:  # noqa: BLE001 - serve loops must live
            self.metrics.inc("frontend.internal_errors")
            return {
                "ok": False,
                "error": "internal",
                "detail": f"{type(exc).__name__}: {exc}",
                **({"id": wire.id} if wire.id is not None else {}),
            }
        finally:
            self.metrics.observe(
                "frontend.latency_s", time.perf_counter() - start
            )
        self.metrics.inc("frontend.served")
        return self._respond(wire, body)

    def _trace_body(self, wire) -> dict:
        """Answer one ``trace <id>`` lookup from the recorder."""
        spans = self.tracer.spans(wire.trace_id)
        if spans is None:
            return {
                "ok": False,
                "error": "not_found",
                "detail": f"no recorded trace {wire.trace_id!r}",
                **({"id": wire.id} if wire.id is not None else {}),
            }
        return self._respond(wire, {
            "verb": "trace",
            "trace_id": wire.trace_id,
            "spans": spans,
            "lines": render_tree(spans),
        })

    def _jobs_body(self, wire) -> dict:
        """Fleet status: per-job progress/ETA and worker heartbeats,
        derived from the shared checkpoint store (see
        :func:`repro.service.worker.job_progress_records`)."""
        from repro.service.worker import job_progress_records

        service = self.system.service()
        if service.checkpoints is None:
            return {
                "ok": False,
                "error": "bad_request",
                "detail": "this server has no checkpoint store "
                          "(start it with --checkpoint)",
                **({"id": wire.id} if wire.id is not None else {}),
            }
        jobs, workers = job_progress_records(
            service.checkpoints.backend.load(), now=time.time()
        )
        lines = []
        for job in jobs:
            line = (f"{job['job_id']}: {job['status']} at iteration "
                    f"{job['done_iterations']}")
            if job["remaining_iterations"]:
                line += (f", ~{job['remaining_iterations']} to go "
                         f"(eta {job['eta_sim_seconds']:.2f}s simulated)")
            lines.append(line)
        for worker in workers:
            lines.append(
                f"worker {worker.get('worker')}: {worker.get('status')}, "
                f"{worker.get('jobs_done', 0)} job(s) done"
            )
        return self._respond(wire, {
            "verb": "jobs",
            "jobs": jobs,
            "workers": workers,
            "lines": lines,
        })

    def _enqueue(self, wire, request) -> dict:
        """Park a durable job in the shared checkpoint store without
        executing it -- fleet workers pointed at the store claim it.
        The submitting request's trace id travels in the descriptor, so
        the worker that eventually runs the job joins this trace."""
        from repro.service.checkpoint import CheckpointError

        job_id = request.get("job_id")
        if not job_id:
            self.metrics.inc("frontend.bad_requests")
            return {
                "ok": False,
                "error": "bad_request",
                "detail": "the 'enqueue' verb needs a job_id",
                **({"id": wire.id} if wire.id is not None else {}),
            }
        service = self.system.service()
        if service.checkpoints is None:
            return {
                "ok": False,
                "error": "bad_request",
                "detail": "this server has no checkpoint store "
                          "(start it with --checkpoint)",
                **({"id": wire.id} if wire.id is not None else {}),
            }
        with self.tracer.trace(
            "request",
            trace_id=wire.trace_id,
            verb="enqueue",
            dataset=request.get("dataset"),
            tenant=wire.tenant,
        ) as root:
            descriptor = dict(request)
            root_trace_id = getattr(root, "trace_id", None)
            if root_trace_id is not None:
                descriptor.setdefault("trace_id", root_trace_id)
            try:
                checkpoint = service.checkpoints.submit(job_id, descriptor)
            except CheckpointError as exc:
                self.metrics.inc("frontend.request_failed")
                root.set("ok", False)
                response = {
                    "ok": False,
                    "error": "request_failed",
                    "detail": str(exc),
                    **({"id": wire.id} if wire.id is not None else {}),
                }
            else:
                self.metrics.inc("frontend.enqueued")
                root.set("ok", True)
                response = self._respond(wire, {
                    "verb": "enqueue",
                    "job_id": job_id,
                    "status": checkpoint.status,
                    "lines": [f"{job_id}: {checkpoint.status}"],
                })
        trace_id = getattr(root, "trace_id", None)
        if trace_id is not None:
            response.setdefault("trace_id", trace_id)
        return response

    # ------------------------------------------------------------------
    @staticmethod
    def _respond(wire, body) -> dict:
        response = {"ok": True}
        if wire.id is not None:
            response["id"] = wire.id
        response.update(body)
        return response

    @staticmethod
    def _optimize_body(request, result) -> dict:
        summary = result.summary()
        return {
            "verb": "optimize",
            "dataset": request["dataset"],
            "summary": summary,
            "lines": [f"{request['dataset']}: {summary}"],
            "plan": str(result.chosen_plan),
            "cache_hit": result.cache_hit,
            "coalesced": result.coalesced,
            "recalibrated": result.recalibrated,
            "wall_s": result.wall_s,
        }

    @staticmethod
    def _train_body(request, result) -> dict:
        summary = result.summary()
        lines = [f"{request['dataset']}: {summary}"]
        if result.trace is not None and result.trace.switches:
            for switch in result.trace.switches:
                lines.append(
                    f"  switched {switch.from_plan} -> {switch.to_plan} "
                    f"at iteration {switch.iteration}: {switch.reason}"
                )
        body = {
            "verb": "train",
            "dataset": request["dataset"],
            "summary": summary,
            "lines": lines,
            "plan": str(result.report.chosen_plan),
            "cache_hit": result.optimization.cache_hit,
            "coalesced": result.optimization.coalesced,
            "recalibrated": result.optimization.recalibrated,
            "iterations": int(result.result.iterations),
            "converged": bool(result.result.converged),
            "preempted": bool(result.preempted),
            "switches": (
                len(result.trace.switches) if result.trace is not None else 0
            ),
        }
        if result.job is not None:
            body["job"] = {
                "job_id": result.job.job_id,
                "status": result.job.status,
                "resumed": result.job.resumed,
                "preempted": result.job.preempted,
                "done_iterations": int(result.job.done_iterations),
                "already_done": result.job.already_done,
            }
        return body


class SocketFrontend:
    """Concurrent TCP front-end with admission control.

    One line in, one JSON object out (pipelined responses carry the
    request's ``id`` for correlation; they may complete out of order).
    Admission happens *at receipt*, before any optimizer work:

    * more than ``shed_after`` requests admitted (queued or running) ->
      ``{"ok": false, "error": "overloaded"}``;
    * ``max_inflight`` requests already inflight for the request's
      tenant -> ``"quota_exceeded"``;
    * deadline already spent by queueing when a worker picks the
      request up -> ``"deadline_exceeded"`` (a request that *starts*
      within its deadline instead gets the remainder as its
      execution budget -- see :meth:`Dispatcher.handle`).

    ``metrics`` requests bypass admission entirely: observability must
    keep answering precisely when the server is saturated.
    """

    def __init__(self, dispatcher, host="127.0.0.1", port=0,
                 max_workers=8, shed_after=64, max_inflight=None):
        self.dispatcher = dispatcher
        self.metrics = dispatcher.metrics
        self.host = host
        self.port = port
        self.max_workers = max(1, int(max_workers))
        self.shed_after = max(1, int(shed_after))
        #: Per-tenant inflight cap; None disables the quota.
        self.max_inflight = max_inflight
        self._admitted = 0
        self._per_tenant = {}
        self._admission_lock = threading.Lock()
        self._pool = None
        self._listener = None
        self._accept_thread = None
        self._stop = threading.Event()
        self._clients = set()
        self._clients_lock = threading.Lock()

    # ------------------------------------------------------------------
    def start(self) -> int:
        """Bind, listen and serve in background threads; returns the
        bound port (useful with ``port=0``)."""
        self._listener = socket.create_server(
            (self.host, self.port), reuse_port=False
        )
        self.port = self._listener.getsockname()[1]
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="frontend"
        )
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="frontend-accept", daemon=True
        )
        self._accept_thread.start()
        return self.port

    def stop(self) -> None:
        """Stop accepting, close every connection, drain the pool."""
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._clients_lock:
            clients = list(self._clients)
        for client in clients:
            try:
                client.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                client.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    def wait(self) -> None:
        """Block until the server is stopped."""
        while not self._stop.wait(timeout=0.5):
            pass

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc_info):
        self.stop()

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                client, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            with self._clients_lock:
                self._clients.add(client)
            threading.Thread(
                target=self._serve_connection, args=(client,),
                name="frontend-conn", daemon=True,
            ).start()

    def _serve_connection(self, client) -> None:
        write_lock = threading.Lock()
        try:
            reader = client.makefile("r", encoding="utf-8", newline="\n")
            writer = client.makefile("w", encoding="utf-8", newline="\n")
            for line in reader:
                line = line.strip()
                if not line:
                    continue
                if line in ("quit", "exit"):
                    break
                self._handle_line(line, writer, write_lock)
        except (OSError, ValueError):
            pass  # connection torn down mid-read
        finally:
            with self._clients_lock:
                self._clients.discard(client)
            try:
                client.close()
            except OSError:
                pass

    def _write(self, writer, write_lock, response) -> None:
        payload = json.dumps(response, default=str)
        try:
            with write_lock:
                writer.write(payload + "\n")
                writer.flush()
        except (OSError, ValueError):
            pass  # client went away; nothing to tell it

    # ------------------------------------------------------------------
    def _handle_line(self, line, writer, write_lock) -> None:
        """Parse, admit and enqueue one request (runs on the
        connection's reader thread -- must stay O(1))."""
        try:
            wire = parse_wire_line(line)
        except ReproError as exc:
            self.metrics.inc("frontend.bad_requests")
            self._write(writer, write_lock, {
                "ok": False, "error": "bad_request", "detail": str(exc),
            })
            return
        if wire.verb in _NO_REQUEST_VERBS:
            # Observability (metrics/trace/jobs) bypasses admission: it
            # must answer while the server sheds everything else.
            self._write(writer, write_lock, self.dispatcher.handle(wire))
            return

        with self._admission_lock:
            if self._admitted >= self.shed_after:
                self.metrics.inc("frontend.shed")
                rejection = {
                    "ok": False,
                    "error": "overloaded",
                    "detail": (
                        f"{self._admitted} requests already admitted "
                        f"(shed_after={self.shed_after}); retry later"
                    ),
                }
            elif (
                self.max_inflight is not None
                and self._per_tenant.get(wire.tenant, 0) >= self.max_inflight
            ):
                self.metrics.inc("frontend.quota_rejected")
                rejection = {
                    "ok": False,
                    "error": "quota_exceeded",
                    "detail": (
                        f"tenant {wire.tenant!r} already has "
                        f"{self._per_tenant[wire.tenant]} requests inflight "
                        f"(max_inflight={self.max_inflight})"
                    ),
                }
            else:
                rejection = None
                self._admitted += 1
                self._per_tenant[wire.tenant] = (
                    self._per_tenant.get(wire.tenant, 0) + 1
                )
                self.metrics.gauge("frontend.queue_depth", self._admitted)
        if rejection is not None:
            if wire.id is not None:
                rejection["id"] = wire.id
            self._write(writer, write_lock, rejection)
            return

        admitted_at = time.monotonic()
        self._pool.submit(
            self._run_admitted, wire, admitted_at, writer, write_lock
        )

    def _run_admitted(self, wire, admitted_at, writer, write_lock) -> None:
        """Execute one admitted request on a pool worker."""
        try:
            waited = time.monotonic() - admitted_at
            remaining = None
            if wire.deadline_s is not None:
                remaining = wire.deadline_s - waited
                if remaining <= 0:
                    self.metrics.inc("frontend.deadline_rejected")
                    response = {
                        "ok": False,
                        "error": "deadline_exceeded",
                        "detail": (
                            f"deadline of {wire.deadline_s:g}s expired "
                            "while queued"
                        ),
                    }
                    if wire.id is not None:
                        response["id"] = wire.id
                    self._write(writer, write_lock, response)
                    return
            response = self.dispatcher.handle(
                wire, remaining_s=remaining, queue_wait_s=waited
            )
            self._write(writer, write_lock, response)
        finally:
            with self._admission_lock:
                self._admitted -= 1
                count = self._per_tenant.get(wire.tenant, 1) - 1
                if count <= 0:
                    self._per_tenant.pop(wire.tenant, None)
                else:
                    self._per_tenant[wire.tenant] = count
                self.metrics.gauge("frontend.queue_depth", self._admitted)
