"""Pluggable persistence backends for the optimizer's plan store.

The in-memory :class:`~repro.service.cache.PlanCache` makes repeated
workloads cheap *within* one process; a :class:`CacheBackend` makes them
cheap *across* processes: the service writes every cached decision
through to the backend and reloads it on startup, so a restarted
``repro serve --cache plans.json`` answers previously seen workloads
without re-speculating.

Three backends ship:

* :class:`MemoryBackend` -- a dict; the explicit "no persistence"
  backend (useful in tests and as the null object);
* :class:`JsonFileBackend` -- one human-readable JSON file; every
  mutation re-reads the file, applies the change, and rewrites it
  atomically (``tmp`` + ``os.replace``), so concurrent writers and a
  crashed process can never leave a half-written file in place, and
  writers on disjoint keys converge instead of clobbering each other;
* :class:`SqliteBackend` -- a SQLite database (stdlib ``sqlite3``), one
  row per fingerprint; per-entry writes and SQLite's own file locking
  make it the right choice for large stores or multi-process writers.

:func:`open_backend` picks by file extension (``.db`` / ``.sqlite`` /
``.sqlite3`` -> SQLite, anything else -> JSON); a fourth, the
network-boundary :class:`~repro.service.remote.RemoteBackend`, is
selected by the ``tcp://host:port/namespace`` scheme and speaks this
same interface to a shared ``repro store`` process.

**Durability contract.**  Backends are best-effort by design: a backend
that cannot read its file (corrupted, truncated, wrong format version)
returns an *empty* mapping from :meth:`load` -- the service starts cold
instead of crashing -- and write errors surface as warnings, never as
request failures.  The store-level ``format`` field
(:data:`STORE_FORMAT`) guards the container layout; each entry
additionally carries its own ``entry_format`` (see
:mod:`repro.service.serialize`) so single incompatible entries are
skipped without discarding the rest.
"""

from __future__ import annotations

import contextlib
import json
import os
import sqlite3
import threading
import warnings

#: Format version of the persisted store *container* (file / table
#: layout).  A mismatch discards the whole store -- cold start, never a
#: misread.  Entry payloads are versioned separately.
STORE_FORMAT = 1

_SQLITE_SUFFIXES = (".db", ".sqlite", ".sqlite3")


def open_backend(path):
    """Backend for ``path``: ``tcp://host:port/namespace`` for a remote
    ``repro store`` (``host:port,host:port,.../ns`` for a shard set),
    SQLite for ``.db``/``.sqlite*``, anything else JSON."""
    text = str(path)
    if text.startswith("tcp://"):
        # Imported lazily: the remote module builds on this one.
        from repro.service.remote import open_remote_backend

        return open_remote_backend(text)
    if text.lower().endswith(_SQLITE_SUFFIXES):
        return SqliteBackend(path)
    return JsonFileBackend(path)


class CacheBackend:
    """Interface every plan-store backend implements.

    Keys are workload fingerprints (hex strings); values are the
    JSON-ready entry dicts of :func:`repro.service.serialize.entry_to_dict`.
    Implementations must be thread-safe and must never raise out of
    :meth:`load` for unreadable state -- return ``{}`` and warn instead.
    """

    #: Human-readable backend name for stats/log lines.
    name = "none"
    #: Where the backend persists (None for in-memory backends).
    path = None

    def load(self) -> dict:
        """All persisted entries as ``{fingerprint: entry_dict}``."""
        raise NotImplementedError

    def get(self, key):
        """One persisted entry, or None.  Default implementation goes
        through :meth:`load`; backends with cheap point lookups
        (SQLite) override it."""
        return self.load().get(key)

    def store(self, key, entry) -> None:
        """Persist one entry (insert or overwrite)."""
        raise NotImplementedError

    def update(self, key, fn):
        """Atomic read-modify-write of one entry.

        ``fn`` receives the current entry (or None) and returns the new
        one (None deletes); the returned entry is also this method's
        return value.  Raising out of ``fn`` aborts the mutation.  This
        is the check-and-set primitive job leases are built on
        (:class:`~repro.service.checkpoint.CheckpointStore`), so
        implementations must hold their cross-process exclusion --
        the JSON advisory flock, SQLite's ``BEGIN IMMEDIATE`` -- around
        the whole read+apply+write, not just the write.  The base
        implementation composes :meth:`get`/:meth:`store` and is only
        atomic against writers sharing this object.
        """
        entry = fn(self.get(key))
        if entry is None:
            self.delete(key)
        else:
            self.store(key, entry)
        return entry

    def replace(self, entries) -> None:
        """Swap the whole store for ``entries`` (used by compaction)."""
        self.clear()
        for key, entry in entries.items():
            self.store(key, entry)

    def mutate_all(self, fn) -> dict:
        """Atomic whole-store read-modify-write: replace the contents
        with ``fn(entries)``.  Like :meth:`update` this must hold the
        backend's cross-process exclusion around the whole
        read+apply+write -- compacting a *live* store must not discard
        checkpoints or leases a concurrent writer lands mid-way.  The
        base implementation composes load/replace and is only atomic
        against writers sharing this object.
        """
        entries = fn(self.load())
        self.replace(entries)
        return entries

    def delete(self, key) -> None:
        """Drop one entry (missing keys are a no-op)."""
        raise NotImplementedError

    def clear(self) -> None:
        """Drop every entry."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources (file handles, connections)."""

    def __len__(self) -> int:
        return len(self.load())


class MemoryBackend(CacheBackend):
    """Dict-backed backend: survives nothing, but exercises the full
    write-through path (tests swap it in to observe what would be
    persisted)."""

    name = "memory"

    def __init__(self):
        self._data = {}
        self._lock = threading.Lock()

    def load(self) -> dict:
        with self._lock:
            return dict(self._data)

    def get(self, key):
        with self._lock:
            return self._data.get(key)

    def store(self, key, entry) -> None:
        with self._lock:
            self._data[key] = entry

    def update(self, key, fn):
        with self._lock:
            entry = fn(self._data.get(key))
            if entry is None:
                self._data.pop(key, None)
            else:
                self._data[key] = entry
            return entry

    def replace(self, entries) -> None:
        with self._lock:
            self._data = dict(entries)

    def mutate_all(self, fn) -> dict:
        with self._lock:
            self._data = dict(fn(dict(self._data)))
            return dict(self._data)

    def delete(self, key) -> None:
        with self._lock:
            self._data.pop(key, None)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()


class JsonFileBackend(CacheBackend):
    """One JSON file holding the whole store.

    Every mutation **re-reads the file, applies the change, and rewrites
    it** through a temporary sibling and an atomic ``os.replace``, under
    a process-wide lock.  Two consequences:

    * two threads (or a thread racing a crash) can never interleave
      partial JSON -- the file on disk is always one complete, parseable
      store;
    * concurrent *processes* writing disjoint keys converge: mutations
      take an advisory ``flock`` on a ``.lock`` sidecar (where the
      platform provides ``fcntl``), so each read-modify-write starts
      from the other writer's latest complete snapshot and nothing is
      wiped by a stale in-memory copy.  On platforms without ``fcntl``
      the lock degrades to best-effort (last writer wins inside the
      read-to-replace window) -- prefer :class:`SqliteBackend` there
      for multi-process use.

    Read-modify-write is O(store size) per put, which is the right trade
    for the human-readable format; SQLite is the choice once the store
    grows past what that tolerates.
    """

    name = "json"

    def __init__(self, path):
        self.path = str(path)
        self._lock = threading.Lock()
        #: Last parsed entries + the stat identity of the file they came
        #: from, so read paths skip re-parsing an unchanged store.
        self._snapshot = None
        self._snapshot_token = None
        self._read_cached()  # validate/warn a pre-existing file up front

    @contextlib.contextmanager
    def _file_lock(self):
        """Advisory cross-process lock around one read-modify-write.

        A no-op where ``fcntl`` is unavailable; the sidecar (not the
        store file itself) is locked because the store file is replaced,
        not rewritten in place -- locking an inode about to be swapped
        out would protect nothing.
        """
        try:
            import fcntl
        except ImportError:  # pragma: no cover - non-POSIX platforms
            yield
            return
        with open(f"{self.path}.lock", "w") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    # -- file I/O --------------------------------------------------------
    def _read(self, warn=True) -> dict:
        """Current on-disk entries ({} for missing/unreadable/alien
        files).  ``warn=False`` on the mutation paths: the unreadable
        store was already reported at construction/load, and the
        rewrite about to happen heals it."""
        if not os.path.exists(self.path):
            return {}
        try:
            with open(self.path) as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as exc:
            if warn:
                warnings.warn(
                    f"plan store {self.path!r} is unreadable ({exc}); "
                    "starting cold", stacklevel=3,
                )
            return {}
        if not isinstance(payload, dict) or payload.get("format") != STORE_FORMAT:
            if warn:
                warnings.warn(
                    f"plan store {self.path!r} has unsupported format "
                    f"{payload.get('format') if isinstance(payload, dict) else '?'!r}"
                    f" (supported: {STORE_FORMAT}); starting cold",
                    stacklevel=3,
                )
            return {}
        entries = payload.get("entries")
        return dict(entries) if isinstance(entries, dict) else {}

    def _stat_token(self):
        """Identity of the current on-disk file.  ``os.replace`` always
        produces a new inode, so any completed write -- ours or another
        process's -- changes the token."""
        try:
            stat = os.stat(self.path)
        except OSError:
            return None
        return (stat.st_ino, stat.st_mtime_ns, stat.st_size)

    def _read_cached(self, warn=True) -> dict:
        """Current entries, re-parsing only when the file changed (lock
        held by callers).  Point lookups on a miss-heavy workload must
        not pay a full-store ``json.load`` per request."""
        token = self._stat_token()
        if self._snapshot is None or token != self._snapshot_token:
            self._snapshot = self._read(warn=warn)
            self._snapshot_token = token
        return self._snapshot

    def _write(self, entries) -> None:
        payload = {"format": STORE_FORMAT, "entries": entries}
        tmp = f"{self.path}.tmp.{os.getpid()}.{threading.get_ident()}"
        with open(tmp, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp, self.path)
        self._snapshot = entries
        self._snapshot_token = self._stat_token()

    # -- CacheBackend ----------------------------------------------------
    def load(self) -> dict:
        with self._lock:
            return dict(self._read_cached())

    def get(self, key):
        with self._lock:
            return self._read_cached().get(key)

    def store(self, key, entry) -> None:
        with self._lock, self._file_lock():
            entries = dict(self._read_cached(warn=False))
            entries[key] = entry
            self._write(entries)

    def update(self, key, fn):
        # The whole read+apply+write runs under the advisory flock, so
        # two processes CAS-ing the same key (job leases) serialize: the
        # loser reads the winner's completed write, never a stale copy.
        with self._lock, self._file_lock():
            entries = dict(self._read_cached(warn=False))
            entry = fn(entries.get(key))
            if entry is None:
                entries.pop(key, None)
            else:
                entries[key] = entry
            self._write(entries)
            return entry

    def replace(self, entries) -> None:
        with self._lock, self._file_lock():
            self._write(dict(entries))

    def mutate_all(self, fn) -> dict:
        with self._lock, self._file_lock():
            entries = dict(fn(dict(self._read_cached(warn=False))))
            self._write(entries)
            return entries

    def delete(self, key) -> None:
        with self._lock, self._file_lock():
            entries = dict(self._read_cached(warn=False))
            if entries.pop(key, None) is not None:
                self._write(entries)

    def clear(self) -> None:
        with self._lock, self._file_lock():
            self._write({})


def __getattr__(name):
    # inspect_store / compact_store moved to repro.service.storetools;
    # resolve them lazily here so pre-split imports keep working
    # without a circular backends <-> storetools import.
    if name in ("inspect_store", "compact_store"):
        from repro.service import storetools

        return getattr(storetools, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


class SqliteBackend(CacheBackend):
    """SQLite-backed store: one row per fingerprint.

    Entries are stored as JSON text in a ``plan_store`` table; the
    container format version lives in a ``meta`` table and is checked on
    open -- a mismatch empties the store (cold start) rather than
    risking a misread.  A fresh connection per operation keeps the
    backend trivially thread-safe; SQLite's own locking arbitrates
    concurrent processes.
    """

    name = "sqlite"

    def __init__(self, path):
        self.path = str(path)
        self._lock = threading.Lock()
        try:
            with self._connection() as conn:
                conn.execute(
                    "CREATE TABLE IF NOT EXISTS meta "
                    "(key TEXT PRIMARY KEY, value TEXT)"
                )
                conn.execute(
                    "CREATE TABLE IF NOT EXISTS plan_store "
                    "(fingerprint TEXT PRIMARY KEY, payload TEXT NOT NULL)"
                )
                row = conn.execute(
                    "SELECT value FROM meta WHERE key = 'format'"
                ).fetchone()
                if row is None:
                    conn.execute(
                        "INSERT INTO meta (key, value) VALUES ('format', ?)",
                        (str(STORE_FORMAT),),
                    )
                elif row[0] != str(STORE_FORMAT):
                    warnings.warn(
                        f"plan store {self.path!r} has unsupported format "
                        f"{row[0]!r} (supported: {STORE_FORMAT}); "
                        "discarding its entries", stacklevel=3,
                    )
                    conn.execute("DELETE FROM plan_store")
                    conn.execute(
                        "UPDATE meta SET value = ? WHERE key = 'format'",
                        (str(STORE_FORMAT),),
                    )
            self._broken = False
        except sqlite3.Error as exc:
            warnings.warn(
                f"plan store {self.path!r} could not be opened ({exc}); "
                "persistence disabled for this run", stacklevel=3,
            )
            self._broken = True

    @contextlib.contextmanager
    def _connection(self):
        """A connection that commits on success AND closes on exit (the
        bare sqlite3 context manager only transacts; without the close,
        every operation would leak a file handle until GC)."""
        conn = sqlite3.connect(self.path, timeout=30.0)
        try:
            with conn:
                yield conn
        finally:
            conn.close()

    def load(self) -> dict:
        if self._broken:
            return {}
        try:
            with self._lock, self._connection() as conn:
                rows = conn.execute(
                    "SELECT fingerprint, payload FROM plan_store"
                ).fetchall()
        except sqlite3.Error as exc:
            warnings.warn(
                f"plan store {self.path!r} is unreadable ({exc}); "
                "starting cold", stacklevel=3,
            )
            return {}
        entries = {}
        for key, text in rows:
            try:
                entries[key] = json.loads(text)
            except ValueError:
                continue  # one bad row must not poison the rest
        return entries

    def get(self, key):
        if self._broken:
            return None
        try:
            with self._lock, self._connection() as conn:
                row = conn.execute(
                    "SELECT payload FROM plan_store WHERE fingerprint = ?",
                    (key,),
                ).fetchone()
        except sqlite3.Error:
            return None
        if row is None:
            return None
        try:
            return json.loads(row[0])
        except ValueError:
            return None

    def store(self, key, entry) -> None:
        if self._broken:
            return
        with self._lock, self._connection() as conn:
            conn.execute(
                "INSERT INTO plan_store (fingerprint, payload) "
                "VALUES (?, ?) ON CONFLICT (fingerprint) "
                "DO UPDATE SET payload = excluded.payload",
                (key, json.dumps(entry)),
            )

    def update(self, key, fn):
        """Check-and-set under ``BEGIN IMMEDIATE``: the write lock is
        taken *before* the read, so two processes CAS-ing the same key
        (job leases) serialize instead of both reading the old value.
        A broken store degrades to calling ``fn(None)`` without
        persistence -- callers get an answer, not a crash."""
        if self._broken:
            return fn(None)
        with self._lock:
            conn = sqlite3.connect(self.path, timeout=30.0)
            try:
                conn.isolation_level = None  # explicit transactions
                conn.execute("BEGIN IMMEDIATE")
                try:
                    row = conn.execute(
                        "SELECT payload FROM plan_store "
                        "WHERE fingerprint = ?", (key,),
                    ).fetchone()
                    current = None
                    if row is not None:
                        try:
                            current = json.loads(row[0])
                        except ValueError:
                            current = None
                    entry = fn(current)
                    if entry is None:
                        conn.execute(
                            "DELETE FROM plan_store WHERE fingerprint = ?",
                            (key,),
                        )
                    else:
                        conn.execute(
                            "INSERT INTO plan_store (fingerprint, payload) "
                            "VALUES (?, ?) ON CONFLICT (fingerprint) "
                            "DO UPDATE SET payload = excluded.payload",
                            (key, json.dumps(entry)),
                        )
                except BaseException:
                    conn.execute("ROLLBACK")
                    raise
                conn.execute("COMMIT")
            finally:
                conn.close()
            return entry

    def replace(self, entries) -> None:
        if self._broken:
            return
        with self._lock, self._connection() as conn:
            conn.execute("DELETE FROM plan_store")
            conn.executemany(
                "INSERT INTO plan_store (fingerprint, payload) "
                "VALUES (?, ?)",
                [(key, json.dumps(entry)) for key, entry in entries.items()],
            )

    def mutate_all(self, fn) -> dict:
        """Whole-store RMW in one ``BEGIN IMMEDIATE`` transaction, so a
        concurrent writer's checkpoint/lease cannot land between the
        read and the rewrite and be silently discarded."""
        if self._broken:
            return dict(fn({}))
        with self._lock:
            conn = sqlite3.connect(self.path, timeout=30.0)
            try:
                conn.isolation_level = None
                conn.execute("BEGIN IMMEDIATE")
                try:
                    entries = {}
                    for key, text in conn.execute(
                        "SELECT fingerprint, payload FROM plan_store"
                    ).fetchall():
                        try:
                            entries[key] = json.loads(text)
                        except ValueError:
                            continue
                    entries = dict(fn(entries))
                    conn.execute("DELETE FROM plan_store")
                    conn.executemany(
                        "INSERT INTO plan_store (fingerprint, payload) "
                        "VALUES (?, ?)",
                        [(key, json.dumps(entry))
                         for key, entry in entries.items()],
                    )
                except BaseException:
                    conn.execute("ROLLBACK")
                    raise
                conn.execute("COMMIT")
            finally:
                conn.close()
            return entries

    def delete(self, key) -> None:
        if self._broken:
            return
        with self._lock, self._connection() as conn:
            conn.execute(
                "DELETE FROM plan_store WHERE fingerprint = ?", (key,)
            )

    def clear(self) -> None:
        if self._broken:
            return
        with self._lock, self._connection() as conn:
            conn.execute("DELETE FROM plan_store")
