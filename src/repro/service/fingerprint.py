"""Workload fingerprints for the optimizer plan cache.

The cost model's view of a workload is fully determined by the dataset
*statistics* (Table 1 quantities), the training spec and the cluster
spec -- not by the physical arrays.  Two optimize() calls whose
``(DatasetStats, TrainingSpec, ClusterSpec)`` triples match therefore
walk the exact same search space, and with a fixed iteration count they
reach the exact same decision, so the second call can be answered from
a cache keyed by a digest of that triple.  When speculation runs, the
T(epsilon) estimates come from GD trials on the *actual* data; the
service then mixes the dataset's content digest into the key (see
:meth:`OptimizerService.fingerprint`).

Fingerprints are deterministic **across processes** (no memory
addresses, no hash randomization -- everything goes through
:func:`freeze` and SHA-256), which is what makes the persistent plan
store (:mod:`repro.service.backends`) sound: a restarted service
recomputes the same key for the same workload and finds the persisted
entry.
"""

from __future__ import annotations

import dataclasses
import hashlib


def freeze(value):
    """Deterministic, hashable canonical form of a config value.

    Dataclasses become ``(class name, sorted (field, value) pairs)``;
    mappings and sequences recurse; plain objects (e.g. step-size
    schedules) become ``(class name, sorted instance attributes)`` and
    functions/classes their qualified name -- never the default
    ``repr``, whose embedded memory address would make equal configs
    fingerprint differently (and, worse, recycled addresses make
    *different* configs collide).
    """
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = dataclasses.asdict(value)
        return (
            type(value).__name__,
            tuple(sorted((k, freeze(v)) for k, v in fields.items())),
        )
    if isinstance(value, dict):
        return tuple(sorted((str(k), freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple, set, frozenset)):
        items = tuple(freeze(v) for v in value)
        return tuple(sorted(items, key=repr)) if isinstance(
            value, (set, frozenset)
        ) else items
    if callable(value) and hasattr(value, "__qualname__"):
        # Functions and classes: identity is the qualified name.
        return (getattr(value, "__module__", ""), value.__qualname__)
    state = getattr(value, "__dict__", None)
    if state is not None and type(value).__repr__ is object.__repr__:
        # Plain objects without a meaningful repr: canonicalize their
        # attribute state (covers the StepSize schedule classes).
        return (
            type(value).__name__,
            tuple(sorted((k, freeze(v)) for k, v in state.items())),
        )
    return repr(value)


def workload_fingerprint(stats, training, spec, **extra) -> str:
    """Digest of one optimization workload.

    ``stats``/``training``/``spec`` are the cache identity mandated by
    the cost model; ``extra`` lets callers mix in anything else that
    changes the optimizer's answer (algorithm set, batch-size overrides,
    fixed iteration counts, speculation settings, seeds).
    """
    payload = (
        freeze(stats),
        freeze(training),
        freeze(spec),
        tuple(sorted((k, freeze(v)) for k, v in extra.items())),
    )
    return hashlib.sha256(repr(payload).encode()).hexdigest()
