"""Request and result types of the optimizer service.

These are the wire-free data shapes shared by every service layer: the
core (:mod:`repro.service.core`), the job layer
(:mod:`repro.service.jobs`) and the protocol front-end
(:mod:`repro.service.frontend`).  They carry no behaviour beyond
summaries, so protocol code can depend on them without dragging the
optimizer machinery in.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class ServiceRequest:
    """One optimize() request: a dataset plus its training spec.

    ``algorithms`` / ``batch_sizes`` optionally override the service's
    search-space configuration for this request only (e.g. pinning a
    single GD algorithm); they participate in the cache fingerprint.

    The job fields only apply to train() requests: ``job_id`` turns the
    request into a durable checkpointed job, ``checkpoint_every`` sets
    the persistence cadence, ``budget`` bounds this lease
    (:class:`~repro.runtime.JobBudget`) and ``job_request`` attaches a
    caller-level descriptor to the checkpoints.  None of them changes
    the optimizer's answer, so none participates in the fingerprint.
    """

    dataset: object
    training: object
    fixed_iterations: int | None = None
    algorithms: tuple | None = None
    batch_sizes: object = None
    job_id: str | None = None
    checkpoint_every: int | None = None
    budget: object = None
    job_request: object = None


def normalize_request(request) -> ServiceRequest:
    """Coerce the accepted request forms into a :class:`ServiceRequest`.

    ``request`` may already be a :class:`ServiceRequest`, a
    ``(dataset, training)`` pair, or a
    ``(dataset, training, fixed_iterations)`` triple.
    """
    if isinstance(request, ServiceRequest):
        return request
    if isinstance(request, tuple):
        if len(request) == 2:
            return ServiceRequest(request[0], request[1])
        if len(request) == 3:
            return ServiceRequest(*request)
    raise TypeError(
        "optimize_many() takes ServiceRequest instances, "
        "(dataset, training) pairs or "
        "(dataset, training, fixed_iterations) triples; "
        f"got {request!r}"
    )


@dataclasses.dataclass
class ServiceResult:
    """Outcome of one service request."""

    #: The (possibly cached) OptimizationReport.
    report: object
    #: Workload fingerprint the plan cache was keyed on.
    fingerprint: str
    #: True when the report came out of the plan cache.
    cache_hit: bool
    #: True when the request piggybacked on a concurrent identical one.
    coalesced: bool
    #: Wall seconds this request spent inside the service.
    wall_s: float
    #: True when a cached entry was re-costed with fresh calibration
    #: factors (reusing its cached speculation -- no re-speculation).
    recalibrated: bool = False

    @property
    def chosen_plan(self):
        return self.report.chosen_plan

    def summary(self) -> str:
        if self.cache_hit:
            source = "cache"
        elif self.recalibrated:
            source = "recalibrated"
        elif self.coalesced:
            source = "coalesced"
        else:
            source = "computed"
        return (
            f"{self.report.chosen_plan} "
            f"(est. {self.report.chosen.total_s:.2f}s simulated) "
            f"[{source}, {self.wall_s * 1e3:.1f} ms]"
        )


@dataclasses.dataclass
class JobProgress:
    """What one train(job_id=...) call did to its durable job."""

    job_id: str
    #: ``running`` / ``preempted`` / ``done`` after this lease.
    status: str
    #: True when this call continued a persisted checkpoint.
    resumed: bool
    #: True when the lease budget stopped the run before the job ended.
    preempted: bool
    #: Global training iterations banked so far (all leases).
    done_iterations: int
    #: True when the job had already finished and the stored outcome was
    #: returned without executing anything.
    already_done: bool = False

    def summary(self) -> str:
        verb = "already done" if self.already_done else self.status
        return (
            f"job {self.job_id}: {verb} at iteration "
            f"{self.done_iterations}"
            + (" (resumed)" if self.resumed else "")
        )


@dataclasses.dataclass
class TrainServiceResult:
    """Outcome of one train() request: plan decision plus execution."""

    #: The plan-selection ServiceResult (cache/coalescing semantics).
    optimization: ServiceResult
    #: TrainResult of the executed (final) plan segment.
    result: object
    #: ExecutionTrace of the run (None for non-adaptive, non-job,
    #: non-budgeted requests).
    trace: object = None
    #: AdaptiveResult when the request ran under the adaptive runtime
    #: (``adaptive=True``, or any non-job request bounded by a budget).
    adaptive: object = None
    #: JobProgress when the request named a durable job_id.
    job: object = None

    @property
    def report(self):
        return self.optimization.report

    @property
    def weights(self):
        return self.result.weights

    @property
    def switched(self) -> bool:
        return self.trace is not None and bool(self.trace.switches)

    @property
    def preempted(self) -> bool:
        """True when a lease/deadline budget stopped this run early."""
        if self.job is not None:
            return bool(self.job.preempted)
        if self.adaptive is not None:
            return bool(self.adaptive.preempted)
        return False

    def summary(self) -> str:
        text = f"{self.optimization.summary()}; {self.result.summary()}"
        if self.switched:
            text += f"; {len(self.trace.switches)} mid-flight switch(es)"
        if self.job is not None:
            text += f"; {self.job.summary()}"
        elif self.preempted:
            text += "; preempted by budget"
        return text
