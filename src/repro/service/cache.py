"""Thread-safe LRU cache for optimization reports.

A deliberately small, dependency-free LRU: the service stores one
:class:`~repro.core.result.OptimizationReport` per workload fingerprint.
Reports are immutable for the service's purposes (callers only read
them), so hits can hand back the cached object directly.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict


@dataclasses.dataclass(frozen=True)
class CacheStats:
    """Counters snapshot of one :class:`PlanCache`."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def summary(self) -> str:
        return (
            f"plan cache: {self.size}/{self.maxsize} entries, "
            f"{self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.0%} hit rate), {self.evictions} evictions"
        )


class PlanCache:
    """LRU mapping workload fingerprint -> cached value (thread-safe)."""

    def __init__(self, maxsize=256):
        if maxsize < 1:
            raise ValueError("cache maxsize must be >= 1")
        self.maxsize = maxsize
        self._data = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key, default=None):
        """Look up ``key``, refreshing its recency; counts a hit/miss."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self._misses += 1
                return default
            self._data.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key, value) -> None:
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self._evictions += 1

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._data),
                maxsize=self.maxsize,
            )
