"""Thread-safe plan cache: LRU + size-aware + TTL eviction.

A deliberately small, dependency-free cache: the service stores one
:class:`~repro.core.result.OptimizationReport` per workload fingerprint.
Reports are immutable for the service's purposes (callers only read
them), so hits can hand back the cached object directly.

Three eviction policies compose:

* **LRU by entry count** (``maxsize``) -- the original policy;
* **size-aware** (``max_bytes``) -- reports carry numpy arrays of very
  different sizes (speculation error curves scale with the iteration
  budget), so a byte budget evicts a few fat entries instead of many
  thin ones;
* **TTL** (``ttl_s``) -- workloads whose ``DatasetStats`` drift as data
  grows keep their fingerprint while the cached decision goes stale;
  a time-to-live bounds how long a stale plan can be served.  The
  clock is injectable for deterministic tests.

This is the *in-memory* tier only: eviction here never touches the
persistent plan store (:mod:`repro.service.backends`), which the
service writes through to and reloads from on construction.
"""

from __future__ import annotations

import dataclasses
import sys
import threading
import time
from collections import OrderedDict

import numpy as np


def approx_nbytes(value, _depth=0) -> int:
    """Rough recursive byte footprint of a cached value.

    Exact accounting is not the point -- relative sizes drive eviction.
    Numpy arrays dominate real reports and are measured exactly; the
    rest is ``sys.getsizeof`` plus recursion over common containers and
    dataclasses, depth-capped against pathological nesting.
    """
    if value is None:
        return 0
    if isinstance(value, np.ndarray):
        return int(value.nbytes) + 128
    size = sys.getsizeof(value, 64)
    if _depth >= 8:
        return size
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        for field in dataclasses.fields(value):
            size += approx_nbytes(getattr(value, field.name), _depth + 1)
        return size
    if isinstance(value, dict):
        for k, v in value.items():
            size += approx_nbytes(k, _depth + 1) + approx_nbytes(v, _depth + 1)
        return size
    if isinstance(value, (list, tuple, set, frozenset)):
        for item in value:
            size += approx_nbytes(item, _depth + 1)
        return size
    return size


@dataclasses.dataclass(frozen=True)
class CacheStats:
    """Counters snapshot of one :class:`PlanCache`."""

    hits: int
    misses: int
    evictions: int
    expirations: int
    size: int
    maxsize: int
    total_bytes: int
    max_bytes: int | None
    ttl_s: float | None

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def summary(self) -> str:
        text = (
            f"plan cache: {self.size}/{self.maxsize} entries, "
            f"{self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.0%} hit rate), {self.evictions} evictions"
        )
        if self.ttl_s is not None:
            text += f", {self.expirations} expired (ttl {self.ttl_s:g}s)"
        if self.max_bytes is not None:
            text += (
                f", {self.total_bytes:,}/{self.max_bytes:,} bytes"
            )
        return text


@dataclasses.dataclass
class _Entry:
    value: object
    nbytes: int
    inserted_at: float


class PlanCache:
    """LRU mapping workload fingerprint -> cached value (thread-safe).

    ``max_bytes`` (optional) bounds the summed approximate byte size of
    cached values; ``ttl_s`` (optional) expires entries that have lived
    longer than the time-to-live.  ``clock`` defaults to
    ``time.monotonic`` and is injectable for tests.
    """

    def __init__(self, maxsize=256, max_bytes=None, ttl_s=None, clock=None):
        if maxsize < 1:
            raise ValueError("cache maxsize must be >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("cache max_bytes must be >= 1")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError("cache ttl_s must be positive")
        self.maxsize = maxsize
        self.max_bytes = max_bytes
        self.ttl_s = ttl_s
        self._clock = clock or time.monotonic
        self._data = OrderedDict()
        self._total_bytes = 0
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0

    # -- internals (lock held) ------------------------------------------
    def _drop(self, key) -> None:
        entry = self._data.pop(key)
        self._total_bytes -= entry.nbytes

    def _expired(self, entry) -> bool:
        return (
            self.ttl_s is not None
            and self._clock() - entry.inserted_at > self.ttl_s
        )

    def _purge_expired(self) -> None:
        if self.ttl_s is None:
            return
        stale = [k for k, e in self._data.items() if self._expired(e)]
        for key in stale:
            self._drop(key)
            self._expirations += 1

    def _evict_over_budget(self) -> None:
        while len(self._data) > self.maxsize or (
            self.max_bytes is not None
            and self._total_bytes > self.max_bytes
            and self._data
        ):
            key = next(iter(self._data))
            self._drop(key)
            self._evictions += 1

    # -- public API ------------------------------------------------------
    def get(self, key, default=None):
        """Look up ``key``, refreshing its recency; counts a hit/miss.

        An entry past its TTL is dropped and reported as a miss.
        """
        with self._lock:
            entry = self._data.get(key)
            if entry is None:
                self._misses += 1
                return default
            if self._expired(entry):
                self._drop(key)
                self._expirations += 1
                self._misses += 1
                return default
            self._data.move_to_end(key)
            self._hits += 1
            return entry.value

    def put(self, key, value, nbytes=None) -> None:
        """Insert ``value``; evicts LRU entries over either budget.

        ``nbytes`` overrides the approximate size estimate (callers that
        already know a value's footprint skip the recursive walk); the
        walk is skipped entirely when no byte budget is configured.  A
        value larger than the whole byte budget is refused outright --
        caching it would evict every warm entry and then itself.
        """
        if nbytes is not None:
            size = int(nbytes)
        elif self.max_bytes is not None:
            size = approx_nbytes(value)
        else:
            size = 0
        with self._lock:
            if key in self._data:
                self._drop(key)
            if self.max_bytes is not None and size > self.max_bytes:
                self._evictions += 1
                return
            self._data[key] = _Entry(value, size, self._clock())
            self._total_bytes += size
            self._purge_expired()
            self._evict_over_budget()

    def __contains__(self, key) -> bool:
        with self._lock:
            entry = self._data.get(key)
            return entry is not None and not self._expired(entry)

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self._total_bytes = 0

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                expirations=self._expirations,
                size=len(self._data),
                maxsize=self.maxsize,
                total_bytes=self._total_bytes,
                max_bytes=self.max_bytes,
                ttl_s=self.ttl_s,
            )
