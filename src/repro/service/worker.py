"""The fleet worker: drain, steal, resume, report.

A *fleet* is N ``repro worker`` processes pointed at one shared
checkpoint store (typically a ``tcp://`` namespace served by
``repro store``, but any :class:`~repro.service.backends.CacheBackend`
path works -- the worker is backend-agnostic by construction).  Each
worker loops over :meth:`CheckpointStore.pending` and claims jobs
through the exact same lease machinery a single server uses:

* **Claiming is acquiring.**  A worker never invents a scheduling
  protocol; it simply re-issues the job's checkpointed request
  descriptor through :meth:`OptimizerService.train`, whose
  ``job_id=`` path takes the advisory lease atomically.  Two workers
  racing for one job resolve through the backend's CAS: one wins, the
  other gets :class:`~repro.service.checkpoint.JobLeaseError` and moves
  on.
* **Stealing is waiting.**  A crashed peer's lease expires
  ``lease_ttl_s`` after its last checkpoint write; the job then shows
  up as claimable and any worker resumes it -- bit-identically, from
  the banked weights/state/trace.  There is no failure detector beyond
  the lease clock.
* **Progress is already persisted.**  Every checkpoint carries the
  job's :class:`~repro.runtime.trace.ExecutionTrace`, so per-job
  progress and ETA are *derived* (:func:`job_progress`) from the
  stored iteration cadence -- the store can answer a ``jobs`` query
  without any worker being reachable.
* **Identity is auditable.**  Each lease appends a
  ``{owner, worker, start_iteration, end_iteration, status}`` record
  to the checkpoint's ``history``; :func:`audit_lease_history` checks
  that the records chain exactly (no gap: lost work; no overlap:
  duplicated execution).  The chaos suite leans on this for its
  exactly-once proof.

Workers park small heartbeat records (``{"kind": "worker", ...}``)
next to the checkpoints they drain, under ``worker!<id>`` keys; the
checkpoint store skips them when listing jobs, and the ``jobs`` wire
verb reports them alongside per-job progress.
"""

from __future__ import annotations

import contextlib
import threading
import time
import uuid
import warnings

from repro.errors import ReproError
from repro.runtime import ExecutionTrace
from repro.service.checkpoint import JobLeaseError

#: Key prefix of worker heartbeat records in a shared checkpoint store.
#: ``!`` keeps them visually (and lexically) apart from job ids; the
#: payload's ``{"kind": "worker"}`` marker is what readers key on.
HEARTBEAT_PREFIX = "worker!"

#: Default seconds between drain-loop polls of the shared store.
DEFAULT_POLL_S = 0.5


def new_worker_id() -> str:
    """A unique fleet-worker identity (stable for one process)."""
    return f"worker-{uuid.uuid4().hex[:8]}"


# ----------------------------------------------------------------------
# heartbeats
# ----------------------------------------------------------------------
def heartbeat_key(worker_id) -> str:
    return HEARTBEAT_PREFIX + str(worker_id)


def write_heartbeat(backend, worker_id, now=None, **fields) -> dict:
    """Upsert ``worker_id``'s heartbeat record in the shared store.

    One writer per worker id, so a plain overwrite is race-free; the
    record is ephemeral operational state (compaction may drop it).
    """
    record = {
        "kind": "worker",
        "worker": str(worker_id),
        "written_at": float(time.time() if now is None else now),
        **fields,
    }
    backend.store(heartbeat_key(worker_id), record)
    return record


def read_heartbeats(entries, now=None) -> list:
    """Worker heartbeat records out of a raw ``{key: payload}`` store
    snapshot, oldest-key-first, each annotated with ``age_s``."""
    out = []
    for key in sorted(entries):
        payload = entries[key]
        if not (isinstance(payload, dict)
                and payload.get("kind") == "worker"):
            continue
        record = dict(payload)
        if now is not None and record.get("written_at") is not None:
            record["age_s"] = max(
                0.0, float(now) - float(record["written_at"])
            )
        out.append(record)
    return out


# ----------------------------------------------------------------------
# progress / ETA
# ----------------------------------------------------------------------
def job_progress(checkpoint, now=None) -> dict:
    """One job's progress/ETA record, derived from its checkpoint.

    The ETA is in *simulated* seconds (the currency of the execution
    traces): remaining predicted iterations of the in-flight plan
    segment times that segment's observed per-iteration cadence
    (:attr:`~repro.runtime.trace.PlanSegment.effective_per_iteration_s`).
    Deterministic -- derived purely from persisted state -- so any
    store replica answers identically.  Fields degrade to None when the
    checkpoint has no trace yet (a ``queued`` stub).
    """
    record = {
        "job_id": checkpoint.job_id,
        "status": checkpoint.status,
        "done_iterations": int(checkpoint.done_iterations or 0),
        "adaptive": bool(checkpoint.adaptive),
        "written_at": checkpoint.written_at,
        "leases": len(checkpoint.history or []),
        "worker": (
            (checkpoint.history or [{}])[-1].get("worker")
        ),
        "lease_owner": (
            checkpoint.lease.get("owner")
            if checkpoint.lease is not None else None
        ),
        "leased": (
            checkpoint.lease is not None
            and now is not None
            and float(checkpoint.lease.get("expires_at", 0.0)) > float(now)
        ),
        "predicted_iterations": None,
        "remaining_iterations": None,
        "per_iteration_s": None,
        "eta_sim_seconds": None,
        "converged": None,
    }
    if checkpoint.trace is None:
        return record
    try:
        trace = ExecutionTrace.from_dict(checkpoint.trace)
    except Exception:
        return record
    if not trace.segments:
        return record
    last = trace.segments[-1]
    done = trace.total_iterations
    # The in-flight segment's prediction, anchored at the iterations
    # banked before it started.  A segment that overran its prediction
    # counts as "almost there" (remaining 0), never negative.
    predicted_total = (done - last.iterations) + max(
        int(last.predicted_iterations), int(last.iterations)
    )
    remaining = 0 if checkpoint.status == "done" \
        else max(0, predicted_total - done)
    cadence = float(last.effective_per_iteration_s)
    record.update(
        predicted_iterations=int(predicted_total),
        remaining_iterations=int(remaining),
        per_iteration_s=cadence,
        eta_sim_seconds=remaining * cadence,
        converged=bool(trace.converged),
    )
    return record


def job_progress_records(entries, now=None) -> tuple:
    """``(jobs, workers)`` progress report over a raw store snapshot.

    ``entries`` is a ``{key: payload}`` dict as a backend's ``load()``
    (or the store server's namespace scan) returns it.  Non-checkpoint
    entries -- plan-store entries sharing a namespace, undecodable
    payloads -- are skipped silently: this is a monitoring read, it
    must never fail because the store also holds something else.
    """
    from repro.service.checkpoint import JobCheckpoint

    jobs = []
    for key in sorted(entries):
        payload = entries[key]
        if not isinstance(payload, dict):
            continue
        if payload.get("kind") == "worker":
            continue
        try:
            checkpoint = JobCheckpoint.from_dict(payload)
        except Exception:
            continue
        jobs.append(job_progress(checkpoint, now=now))
    return jobs, read_heartbeats(entries, now=now)


# ----------------------------------------------------------------------
# the exactly-once audit
# ----------------------------------------------------------------------
def audit_lease_history(checkpoint) -> list:
    """Problems with a job's lease-history audit trail ([] = clean).

    The invariant: the persisted lease records partition the job's
    iteration range exactly.  Each record's ``start_iteration`` must
    equal the previous record's ``end_iteration`` (the first starts at
    0), and the last record's end must equal the checkpoint's banked
    ``done_iterations``.  A gap means iterations were lost; an overlap
    means two leases executed the same range -- a double-run.  This is
    the chaos suite's machine-checkable exactly-once proof.
    """
    problems = []
    history = checkpoint.history or []
    done = int(checkpoint.done_iterations or 0)
    if not history:
        if done:
            problems.append(
                f"job {checkpoint.job_id!r}: {done} iterations banked "
                "but no lease history"
            )
        return problems
    prev_end = 0
    for index, record in enumerate(history):
        start = int(record.get("start_iteration", -1))
        end = int(record.get("end_iteration", -1))
        if start != prev_end:
            kind = "gap" if start > prev_end else "overlap"
            problems.append(
                f"job {checkpoint.job_id!r}: lease {index} "
                f"({record.get('worker') or record.get('owner')}) starts "
                f"at {start}, previous ended at {prev_end} ({kind})"
            )
        if end < start:
            problems.append(
                f"job {checkpoint.job_id!r}: lease {index} regresses "
                f"({start} -> {end})"
            )
        prev_end = max(prev_end, end)
    if prev_end != done:
        problems.append(
            f"job {checkpoint.job_id!r}: history covers {prev_end} "
            f"iterations but the checkpoint banked {done}"
        )
    if checkpoint.status == "done" \
            and history[-1].get("status") != "done":
        problems.append(
            f"job {checkpoint.job_id!r}: finished but the last lease "
            f"record says {history[-1].get('status')!r}"
        )
    return problems


# ----------------------------------------------------------------------
# the worker loop
# ----------------------------------------------------------------------
class FleetWorker:
    """One fleet worker over a system's shared checkpoint store.

    ``system`` is an :class:`~repro.api.ML4all` whose service was
    constructed with a checkpoint store (``checkpoint_path=``, usually
    ``tcp://...``).  The worker claims pending jobs by re-issuing their
    checkpointed request descriptors through ``system.train_many`` --
    lease arbitration, resume, budgets and checkpoint cadence are all
    the service's existing machinery; the worker adds only the loop,
    the heartbeat, and the cross-machine trace adoption (a job's spans
    join the submitting request's ``trace_id``).
    """

    def __init__(self, system, worker_id=None, poll_s=DEFAULT_POLL_S,
                 tracer=None, clock=None):
        service = system.service()
        if service.checkpoints is None:
            raise ReproError(
                "a fleet worker needs a shared checkpoint store; "
                "construct the system with checkpoint_path="
            )
        self.system = system
        self.service = service
        self.worker_id = worker_id or new_worker_id()
        # Stamped into every lease-history record this worker writes.
        service.worker_id = self.worker_id
        self.poll_s = float(poll_s)
        self.tracer = tracer
        self._clock = clock or time.time
        self._stop = threading.Event()
        self.jobs_done = 0
        self.jobs_failed = 0
        self.steals = 0

    # -- claiming ------------------------------------------------------
    def _claimable(self) -> list:
        """``(job_id, checkpoint)`` pairs this worker could act on:
        pending jobs that carry a request descriptor.  Jobs without one
        (started programmatically) are a peer's business."""
        return [
            (job_id, checkpoint)
            for job_id, checkpoint
            in sorted(self.service.checkpoints.pending().items())
            if isinstance(checkpoint.request, dict)
            and "dataset" in checkpoint.request
        ]

    def _run_job(self, job_id, checkpoint) -> bool:
        """Claim and run one job to its next stop; True when it
        finished ``done`` under this worker's lease."""
        # The per-lease budget keys are stripped so a resumed job runs
        # to completion instead of re-preempting forever; trace_id
        # stays -- the service round-trips it back into the descriptor.
        request = {
            k: v for k, v in checkpoint.request.items()
            if k not in ("lease_iterations", "lease_seconds")
        }
        # A stored lease on a *claimable* job means its owner died
        # without releasing (graceful exits clear it): this claim is a
        # steal in the fleet sense.
        stolen = checkpoint.lease is not None
        context = contextlib.nullcontext()
        if self.tracer is not None:
            context = self.tracer.trace(
                "worker_job",
                trace_id=(request.get("trace_id")
                          if isinstance(request.get("trace_id"), str)
                          else None),
                job_id=job_id,
                worker=self.worker_id,
                stolen=stolen,
            )
        with context:
            results = self.system.train_many(
                [request], max_workers=1,
                adaptive=bool(checkpoint.adaptive),
            )
        if stolen:
            self.steals += 1
        job = results[0].job
        return job is not None and job.status == "done"

    # -- the loop ------------------------------------------------------
    def run_once(self) -> dict:
        """One pass over the claimable jobs.

        Returns ``{"pending", "completed", "leased", "failed"}`` --
        ``pending`` is the claimable count at the start of the pass,
        which is the drain loop's exit signal.
        """
        claimable = self._claimable()
        stats = {"pending": len(claimable), "completed": 0,
                 "leased": 0, "failed": 0}
        for job_id, checkpoint in claimable:
            if self._stop.is_set():
                break
            self.heartbeat(status="running", job_id=job_id)
            try:
                finished = self._run_job(job_id, checkpoint)
            except JobLeaseError:
                # A live peer holds it; not ours this round.
                stats["leased"] += 1
                continue
            except ReproError as exc:
                stats["failed"] += 1
                self.jobs_failed += 1
                warnings.warn(
                    f"worker {self.worker_id}: job {job_id!r} failed "
                    f"({exc}); leaving its checkpoint for a retry",
                    stacklevel=2,
                )
                continue
            if finished:
                stats["completed"] += 1
                self.jobs_done += 1
        self.heartbeat(status="idle")
        return stats

    def run(self, drain=False, max_seconds=None) -> dict:
        """The worker loop: poll, claim, run, repeat.

        ``drain=True`` exits once no claimable jobs remain (jobs a live
        peer is running still count as claimable until they finish, so
        a draining fleet's workers all stay up until the store is
        actually empty of work).  ``max_seconds`` bounds the loop by
        the injected clock.  Returns the totals this worker banked.
        """
        started = self._clock()
        self.heartbeat(status="starting")
        while not self._stop.is_set():
            stats = self.run_once()
            if drain and stats["pending"] == 0:
                break
            if max_seconds is not None \
                    and self._clock() - started >= max_seconds:
                break
            if stats["completed"] == 0:
                # Nothing moved: wait for peers to finish/crash rather
                # than hot-spinning lease refusals against the store.
                self._stop.wait(self.poll_s)
        self.heartbeat(status="stopped")
        return {"done": self.jobs_done, "failed": self.jobs_failed,
                "steals": self.steals}

    def stop(self) -> None:
        """Ask a looping :meth:`run` to exit after the current job."""
        self._stop.set()

    # -- liveness ------------------------------------------------------
    def heartbeat(self, **fields) -> None:
        """Best-effort: liveness reporting must never kill the loop
        that does the actual work."""
        try:
            write_heartbeat(
                self.service.checkpoints.backend, self.worker_id,
                now=self._clock(), jobs_done=self.jobs_done,
                steals=self.steals, **fields,
            )
        except Exception as exc:
            warnings.warn(
                f"worker {self.worker_id}: heartbeat write failed "
                f"({exc})", stacklevel=2,
            )
