"""Backward-compatibility shim for the pre-split service module.

The service monolith that used to live here is now three layers:

* :mod:`repro.service.core` -- :class:`OptimizerService`: fingerprint,
  plan cache lookup/stamping, persistence, ``optimize()``;
* :mod:`repro.service.jobs` -- the train/execute layer: ``train()``,
  durable checkpointed jobs, budgets/leases;
* :mod:`repro.service.requests` -- the request/result dataclasses.

(Plus :mod:`repro.service.frontend` for the line protocol / socket
server and :mod:`repro.service.metrics` for the counter registry --
neither ever lived here.)

Every pre-split import path keeps working::

    from repro.service.service import OptimizerService, ServiceRequest

New code should import from :mod:`repro.service` (the package re-exports
the public names) or from the layer modules directly.
"""

from repro.service.core import OptimizerService, _CachedPlan
from repro.service.requests import (
    JobProgress,
    ServiceRequest,
    ServiceResult,
    TrainServiceResult,
    normalize_request,
)

__all__ = [
    "JobProgress",
    "OptimizerService",
    "ServiceRequest",
    "ServiceResult",
    "TrainServiceResult",
    "normalize_request",
    "_CachedPlan",
]
