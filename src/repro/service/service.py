"""The concurrent optimizer service.

:class:`OptimizerService` sits above :class:`~repro.core.optimizer.GDOptimizer`
and turns the one-shot optimizer into a serving component: many callers,
many workloads, repeated queries.  Three mechanisms make the hot path
cheap:

* a **plan cache** (:mod:`repro.service.cache`) keyed by a fingerprint of
  ``(DatasetStats, TrainingSpec, ClusterSpec)`` plus the service's own
  configuration, so a repeated workload skips re-speculation and
  re-costing entirely;
* **request coalescing** -- concurrent requests for the same fingerprint
  share one computation instead of racing to duplicate it;
* the **vectorized cost model** and **parallel speculation** underneath
  (:meth:`CostModel.estimate_batch`,
  :meth:`SpeculativeEstimator.estimate_all` with
  ``speculation_workers="auto"``; plain ``SpeculativeEstimator`` use
  elsewhere stays sequential and fully reproducible).

Each computed request runs on a fresh :class:`SimulatedCluster` so the
simulated clock of one caller never leaks into another -- the service
object itself holds no per-request mutable state outside the cache.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor

from repro.cluster import ClusterSpec, SimulatedCluster
from repro.core.iterations import SpeculationSettings, SpeculativeEstimator
from repro.core.optimizer import GDOptimizer
from repro.gd.registry import CORE_ALGORITHMS
from repro.service.cache import PlanCache
from repro.service.fingerprint import workload_fingerprint


@dataclasses.dataclass(frozen=True)
class ServiceRequest:
    """One optimize() request: a dataset plus its training spec.

    ``algorithms`` / ``batch_sizes`` optionally override the service's
    search-space configuration for this request only (e.g. pinning a
    single GD algorithm); they participate in the cache fingerprint.
    """

    dataset: object
    training: object
    fixed_iterations: int | None = None
    algorithms: tuple | None = None
    batch_sizes: object = None


@dataclasses.dataclass
class ServiceResult:
    """Outcome of one service request."""

    #: The (possibly cached) OptimizationReport.
    report: object
    #: Workload fingerprint the plan cache was keyed on.
    fingerprint: str
    #: True when the report came out of the plan cache.
    cache_hit: bool
    #: True when the request piggybacked on a concurrent identical one.
    coalesced: bool
    #: Wall seconds this request spent inside the service.
    wall_s: float

    @property
    def chosen_plan(self):
        return self.report.chosen_plan

    def summary(self) -> str:
        source = "cache" if self.cache_hit else (
            "coalesced" if self.coalesced else "computed"
        )
        return (
            f"{self.report.chosen_plan} "
            f"(est. {self.report.chosen.total_s:.2f}s simulated) "
            f"[{source}, {self.wall_s * 1e3:.1f} ms]"
        )


class OptimizerService:
    """Concurrent, caching facade over the cost-based GD optimizer."""

    def __init__(
        self,
        spec=None,
        seed=0,
        speculation=None,
        algorithms=CORE_ALGORITHMS,
        batch_sizes=None,
        cache_size=256,
        speculation_workers="auto",
    ):
        self.spec = spec or ClusterSpec()
        self.seed = seed
        self.speculation = speculation or SpeculationSettings()
        self.algorithms = tuple(algorithms)
        self.batch_sizes = dict(batch_sizes or {})
        self.speculation_workers = speculation_workers
        self.cache = PlanCache(cache_size)
        self._inflight = {}
        self._inflight_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self.requests = 0
        self.computed = 0
        self.coalesced = 0

    # ------------------------------------------------------------------
    def fingerprint(self, dataset, training, fixed_iterations=None,
                    algorithms=None, batch_sizes=None) -> str:
        """Cache key of one workload under this service's configuration.

        With ``fixed_iterations`` the optimizer's answer depends only on
        ``(DatasetStats, TrainingSpec, ClusterSpec)``; without it,
        speculation runs GD on the *actual* data, so the physical
        content digest joins the key -- two datasets with coinciding
        statistics but different data must not share a report.
        """
        return workload_fingerprint(
            dataset.stats,
            training,
            self.spec,
            data_digest=(
                None if fixed_iterations is not None
                else dataset.content_digest()
            ),
            representation=dataset.representation,
            algorithms=(
                self.algorithms if algorithms is None else tuple(algorithms)
            ),
            batch_sizes=(
                self.batch_sizes if batch_sizes is None else dict(batch_sizes)
            ),
            fixed_iterations=fixed_iterations,
            speculation=self.speculation,
            speculation_workers=self.speculation_workers,
            seed=self.seed,
        )

    def _make_optimizer(self, algorithms=None, batch_sizes=None) -> GDOptimizer:
        """A fresh optimizer (and simulated cluster) for one computation."""
        engine = SimulatedCluster(self.spec, seed=self.seed)
        estimator = SpeculativeEstimator(
            self.speculation,
            seed=self.seed,
            max_workers=self.speculation_workers,
        )
        return GDOptimizer(
            engine,
            estimator=estimator,
            algorithms=self.algorithms if algorithms is None else algorithms,
            batch_sizes=(
                self.batch_sizes if batch_sizes is None else batch_sizes
            ),
        )

    # ------------------------------------------------------------------
    def optimize(self, dataset, training, fixed_iterations=None,
                 algorithms=None, batch_sizes=None) -> ServiceResult:
        """Answer one optimize() request, from cache when possible.

        Identical concurrent requests coalesce onto a single computation;
        everyone gets the same report object.
        """
        start = time.perf_counter()
        with self._counter_lock:
            self.requests += 1
        key = self.fingerprint(
            dataset, training, fixed_iterations, algorithms, batch_sizes
        )

        report = self.cache.get(key)
        if report is not None:
            return ServiceResult(
                report=report,
                fingerprint=key,
                cache_hit=True,
                coalesced=False,
                wall_s=time.perf_counter() - start,
            )

        with self._inflight_lock:
            future = self._inflight.get(key)
            owner = future is None
            if owner:
                future = Future()
                self._inflight[key] = future

        if not owner:
            report = future.result()
            with self._counter_lock:
                self.coalesced += 1
            return ServiceResult(
                report=report,
                fingerprint=key,
                cache_hit=False,
                coalesced=True,
                wall_s=time.perf_counter() - start,
            )

        try:
            report = self._make_optimizer(algorithms, batch_sizes).optimize(
                dataset, training, fixed_iterations=fixed_iterations
            )
        except BaseException as exc:
            # Waiters coalesced onto this computation see the same error.
            future.set_exception(exc)
            with self._inflight_lock:
                self._inflight.pop(key, None)
            raise
        # Populate the cache *before* dropping the in-flight entry, so a
        # concurrent identical request always finds one of the two.
        self.cache.put(key, report)
        future.set_result(report)
        with self._inflight_lock:
            self._inflight.pop(key, None)
        with self._counter_lock:
            self.computed += 1
        return ServiceResult(
            report=report,
            fingerprint=key,
            cache_hit=False,
            coalesced=False,
            wall_s=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------
    def optimize_many(self, requests, max_workers=None) -> list:
        """Serve a batch of requests concurrently; order is preserved.

        ``requests`` is an iterable of :class:`ServiceRequest`,
        ``(dataset, training)`` pairs, or
        ``(dataset, training, fixed_iterations)`` triples.
        """
        normalized = [self._normalize(r) for r in requests]
        if not normalized:
            return []
        if max_workers is None:
            max_workers = min(8, len(normalized))
        max_workers = max(1, min(max_workers, len(normalized)))
        if max_workers == 1 or len(normalized) == 1:
            return [
                self.optimize(r.dataset, r.training, r.fixed_iterations,
                              r.algorithms, r.batch_sizes)
                for r in normalized
            ]
        with ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="optimize"
        ) as pool:
            futures = [
                pool.submit(
                    self.optimize, r.dataset, r.training, r.fixed_iterations,
                    r.algorithms, r.batch_sizes,
                )
                for r in normalized
            ]
            return [f.result() for f in futures]

    @staticmethod
    def _normalize(request) -> ServiceRequest:
        if isinstance(request, ServiceRequest):
            return request
        if isinstance(request, tuple):
            if len(request) == 2:
                return ServiceRequest(request[0], request[1])
            if len(request) == 3:
                return ServiceRequest(*request)
        raise TypeError(
            "optimize_many() takes ServiceRequest instances, "
            "(dataset, training) pairs or "
            "(dataset, training, fixed_iterations) triples; "
            f"got {request!r}"
        )

    # ------------------------------------------------------------------
    def cache_stats(self):
        return self.cache.stats()

    def stats_summary(self) -> str:
        stats = self.cache.stats()
        return (
            f"{stats.summary()}; {self.requests} requests "
            f"({self.computed} computed, {self.coalesced} coalesced)"
        )
