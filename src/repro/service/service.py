"""The concurrent optimizer service.

:class:`OptimizerService` sits above :class:`~repro.core.optimizer.GDOptimizer`
and turns the one-shot optimizer into a serving component: many callers,
many workloads, repeated queries.  Three mechanisms make the hot path
cheap:

* a **plan cache** (:mod:`repro.service.cache`) keyed by a fingerprint of
  ``(DatasetStats, TrainingSpec, ClusterSpec)`` plus the service's own
  configuration, so a repeated workload skips re-speculation and
  re-costing entirely;
* **request coalescing** -- concurrent requests for the same fingerprint
  share one computation instead of racing to duplicate it;
* the **vectorized cost model** and **parallel speculation** underneath
  (:meth:`CostModel.estimate_batch`,
  :meth:`SpeculativeEstimator.estimate_all` with
  ``speculation_workers="auto"``; plain ``SpeculativeEstimator`` use
  elsewhere stays sequential and fully reproducible).

Each computed request runs on a fresh :class:`SimulatedCluster` so the
simulated clock of one caller never leaks into another -- the service
object itself holds no per-request mutable state outside the cache and
the calibration store.

The **adaptive runtime** (:mod:`repro.runtime`) plugs in here: every
service owns a :class:`~repro.runtime.calibration.CalibrationStore`
(optionally disk-persisted), :meth:`OptimizerService.train` executes the
chosen plan on a per-caller engine clone (adaptively, if asked) and
folds the resulting execution trace back into the store, and cached
plans remember which calibration version priced them -- a stale entry is
*re-costed* from its cached speculation results instead of being thrown
away, so repeated workloads get calibrated answers without ever
re-speculating.  Re-costs go through the same coalescing table as cold
computes, so concurrent callers never duplicate one.

A **persistent plan store** (:mod:`repro.service.backends`) extends all
of this across process restarts: with ``cache_path`` (or an explicit
``cache_backend``) every cached decision -- report, speculation
artifacts, calibration stamp -- is written through to disk and reloaded
on startup, so ``repro serve --cache plans.json`` restarted answers
previously seen workloads warm.
"""

from __future__ import annotations

import dataclasses
import threading
import time
import warnings
from concurrent.futures import Future, ThreadPoolExecutor

import numpy as np

from repro.cluster import ClusterSpec, SimulatedCluster
from repro.core.executor import execute_plan
from repro.core.iterations import SpeculationSettings, SpeculativeEstimator
from repro.core.optimizer import GDOptimizer
from repro.core.result import TrainResult
from repro.gd.registry import CORE_ALGORITHMS
from repro.gd.state import OptimizerState
from repro.runtime import (
    AdaptiveSettings,
    AdaptiveTrainer,
    CalibrationStore,
    ExecutionTrace,
    ResumePoint,
)
from repro.service.backends import open_backend
from repro.service.cache import PlanCache
from repro.service.checkpoint import (
    CheckpointError,
    CheckpointStore,
    JobCheckpoint,
    new_owner_token,
)
from repro.service.fingerprint import workload_fingerprint
from repro.service.serialize import (
    PlanStoreError,
    candidate_from_dict,
    candidate_to_dict,
    entry_from_dict,
    entry_to_dict,
)


@dataclasses.dataclass(frozen=True)
class ServiceRequest:
    """One optimize() request: a dataset plus its training spec.

    ``algorithms`` / ``batch_sizes`` optionally override the service's
    search-space configuration for this request only (e.g. pinning a
    single GD algorithm); they participate in the cache fingerprint.

    The job fields only apply to train() requests: ``job_id`` turns the
    request into a durable checkpointed job, ``checkpoint_every`` sets
    the persistence cadence, ``budget`` bounds this lease
    (:class:`~repro.runtime.JobBudget`) and ``job_request`` attaches a
    caller-level descriptor to the checkpoints.  None of them changes
    the optimizer's answer, so none participates in the fingerprint.
    """

    dataset: object
    training: object
    fixed_iterations: int | None = None
    algorithms: tuple | None = None
    batch_sizes: object = None
    job_id: str | None = None
    checkpoint_every: int | None = None
    budget: object = None
    job_request: object = None


@dataclasses.dataclass
class ServiceResult:
    """Outcome of one service request."""

    #: The (possibly cached) OptimizationReport.
    report: object
    #: Workload fingerprint the plan cache was keyed on.
    fingerprint: str
    #: True when the report came out of the plan cache.
    cache_hit: bool
    #: True when the request piggybacked on a concurrent identical one.
    coalesced: bool
    #: Wall seconds this request spent inside the service.
    wall_s: float
    #: True when a cached entry was re-costed with fresh calibration
    #: factors (reusing its cached speculation -- no re-speculation).
    recalibrated: bool = False

    @property
    def chosen_plan(self):
        return self.report.chosen_plan

    def summary(self) -> str:
        if self.cache_hit:
            source = "cache"
        elif self.recalibrated:
            source = "recalibrated"
        elif self.coalesced:
            source = "coalesced"
        else:
            source = "computed"
        return (
            f"{self.report.chosen_plan} "
            f"(est. {self.report.chosen.total_s:.2f}s simulated) "
            f"[{source}, {self.wall_s * 1e3:.1f} ms]"
        )


@dataclasses.dataclass
class JobProgress:
    """What one train(job_id=...) call did to its durable job."""

    job_id: str
    #: ``running`` / ``preempted`` / ``done`` after this lease.
    status: str
    #: True when this call continued a persisted checkpoint.
    resumed: bool
    #: True when the lease budget stopped the run before the job ended.
    preempted: bool
    #: Global training iterations banked so far (all leases).
    done_iterations: int
    #: True when the job had already finished and the stored outcome was
    #: returned without executing anything.
    already_done: bool = False

    def summary(self) -> str:
        verb = "already done" if self.already_done else self.status
        return (
            f"job {self.job_id}: {verb} at iteration "
            f"{self.done_iterations}"
            + (" (resumed)" if self.resumed else "")
        )


@dataclasses.dataclass
class TrainServiceResult:
    """Outcome of one train() request: plan decision plus execution."""

    #: The plan-selection ServiceResult (cache/coalescing semantics).
    optimization: ServiceResult
    #: TrainResult of the executed (final) plan segment.
    result: object
    #: ExecutionTrace of the run (None for non-adaptive, non-job
    #: requests).
    trace: object = None
    #: AdaptiveResult when the request ran adaptively.
    adaptive: object = None
    #: JobProgress when the request named a durable job_id.
    job: object = None

    @property
    def report(self):
        return self.optimization.report

    @property
    def weights(self):
        return self.result.weights

    @property
    def switched(self) -> bool:
        return self.trace is not None and bool(self.trace.switches)

    def summary(self) -> str:
        text = f"{self.optimization.summary()}; {self.result.summary()}"
        if self.switched:
            text += f"; {len(self.trace.switches)} mid-flight switch(es)"
        if self.job is not None:
            text += f"; {self.job.summary()}"
        return text


@dataclasses.dataclass
class _CachedPlan:
    """One plan-cache value: a report plus its pricing stamp.

    ``calibration_digest`` is the calibration store's *content digest*
    (:meth:`CalibrationStore.state_digest`) at the moment the report
    was priced -- a fingerprint of the correction factors themselves,
    not a counter, so it stays comparable across restarts and across
    processes sharing one store.  A lookup whose stamp does not match
    the live digest is *stale*: the service re-costs it from the
    report's cached ``iteration_estimates`` (no re-speculation) and
    re-stamps it.  The same stamp is what a persistent backend stores,
    so a restarted service applies the identical staleness rule to
    warm-loaded entries (``calibration_version`` rides along for
    inspection).
    """

    report: object
    calibration_version: int
    calibration_digest: str


class OptimizerService:
    """Concurrent, caching facade over the cost-based GD optimizer.

    **Cache stamping.**  Every cached decision is stored with the
    :class:`~repro.runtime.calibration.CalibrationStore` version it was
    priced against.  A hit whose stamp equals the live version is served
    as-is; a hit whose stamp trails it is *re-costed* from the entry's
    cached speculation artifacts (cheap vectorized costing, no
    speculative GD runs) and re-stamped.  The stamp is read *before*
    pricing, so a calibration update racing a computation leaves the
    entry stale rather than silently current.

    **Eviction.**  The in-memory :class:`~repro.service.cache.PlanCache`
    composes LRU entry-count (``cache_size``), byte-budget
    (``cache_max_bytes``) and TTL (``cache_ttl_s``) eviction; eviction
    only affects the in-memory tier -- entries in a persistent backend
    (``cache_path`` / ``cache_backend``) outlive it and reload on the
    next construction.

    **Calibration factors.**  The shared store learns multiplicative
    cost/iteration corrections from adaptive :meth:`train` traces, keyed
    two-level (workload-specific with algorithm-level fallback).  Every
    optimizer this service builds prices plans through those factors, so
    one tenant's observed mis-estimates correct every tenant's future
    estimates on the same cluster.

    **Concurrency.**  Identical concurrent requests coalesce onto one
    computation (cold computes and recalibration re-costs alike); each
    computed request runs on a fresh :class:`SimulatedCluster` so no
    simulated state leaks between callers.
    """

    def __init__(
        self,
        spec=None,
        seed=0,
        speculation=None,
        algorithms=CORE_ALGORITHMS,
        batch_sizes=None,
        cache_size=256,
        speculation_workers="auto",
        cache_ttl_s=None,
        cache_max_bytes=None,
        calibration=None,
        calibration_path=None,
        adaptive_settings=None,
        cost_model=None,
        cache_path=None,
        cache_backend=None,
        store_ttl_s=None,
        checkpoint_path=None,
        checkpoint_store=None,
        lease_ttl_s=300.0,
    ):
        self.spec = spec or ClusterSpec()
        self.seed = seed
        self.speculation = speculation or SpeculationSettings()
        self.algorithms = tuple(algorithms)
        self.batch_sizes = dict(batch_sizes or {})
        self.speculation_workers = speculation_workers
        self.cache = PlanCache(
            cache_size, max_bytes=cache_max_bytes, ttl_s=cache_ttl_s
        )
        #: Learned cost/iteration corrections; loaded from
        #: ``calibration_path`` when it exists, so a restarted service
        #: starts calibrated.  Adaptive train() traces feed it.
        self.calibration = (
            calibration
            if calibration is not None
            else CalibrationStore.open(calibration_path)
        )
        self.adaptive_settings = adaptive_settings
        #: Optional CostModel shared by every optimizer this service
        #: builds (cost models are stateless).  Used to inject e.g. a
        #: PerturbedCostModel when evaluating the adaptive runtime.
        self.cost_model = cost_model
        #: Optional :class:`~repro.service.backends.CacheBackend`: every
        #: cached decision is written through to it, and its entries
        #: warm-start the in-memory cache here at construction -- a
        #: restarted service answers previously seen workloads without
        #: re-speculating.  ``cache_path`` is the convenience form
        #: (extension picks JSON vs SQLite, see
        #: :func:`~repro.service.backends.open_backend`).
        self.backend = (
            cache_backend if cache_backend is not None
            else open_backend(cache_path) if cache_path else None
        )
        #: Disk-tier TTL (seconds): persisted plan entries older than
        #: this age out on warm-load and on read-through -- they are
        #: deleted from the backend, not just skipped (the in-memory
        #: PlanCache always expired; the disk tier used to live forever).
        self.store_ttl_s = store_ttl_s
        #: Durable training-job checkpoints
        #: (:class:`~repro.service.checkpoint.CheckpointStore`); None
        #: disables the job API.  ``checkpoint_path`` is the convenience
        #: form (same extension rules as the plan store).
        self.checkpoints = (
            checkpoint_store if checkpoint_store is not None
            else CheckpointStore(path=checkpoint_path,
                                 lease_ttl_s=lease_ttl_s)
            if checkpoint_path else None
        )
        self._inflight = {}
        self._inflight_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self.requests = 0
        self.computed = 0
        self.coalesced = 0
        self.recalibrated = 0
        self.trained = 0
        self.jobs_started = 0
        self.jobs_resumed = 0
        self.jobs_preempted = 0
        self.jobs_completed = 0
        #: Persisted plan entries aged out by ``store_ttl_s``.
        self.expired_persisted = 0
        #: Entries restored from the persistent backend at startup.
        self.warm_loaded = self._load_persisted()

    # ------------------------------------------------------------------
    def _load_persisted(self) -> int:
        """Warm-start the in-memory cache from the persistent backend.

        Unreadable or format-incompatible entries are skipped (those
        workloads compute cold); entries stamped with a calibration
        version the live store has moved past load normally and are
        re-costed from their persisted speculation on first use -- the
        same staleness rule as in-memory entries.
        """
        if self.backend is None:
            return 0
        loaded = 0
        for key, payload in self.backend.load().items():
            try:
                report, version, digest, written_at = entry_from_dict(payload)
            except PlanStoreError as exc:
                warnings.warn(
                    f"skipping persisted plan {key[:12]}...: {exc}",
                    stacklevel=2,
                )
                continue
            if self._store_expired(written_at):
                self._expire_persisted(key)
                continue
            self.cache.put(key, _CachedPlan(report, version, digest))
            loaded += 1
        return loaded

    def _store_expired(self, written_at) -> bool:
        """True when a persisted entry has outlived ``store_ttl_s``
        (entries without a stamp -- written before it existed -- never
        age out; they still recost on calibration drift)."""
        return (
            self.store_ttl_s is not None
            and written_at is not None
            and time.time() - written_at > self.store_ttl_s
        )

    def _expire_persisted(self, key) -> None:
        """Age one entry out of the disk tier (best effort)."""
        with self._counter_lock:
            self.expired_persisted += 1
        try:
            self.backend.delete(key)
        except Exception as exc:
            warnings.warn(
                f"plan store delete failed ({exc}); "
                "expired entry left behind", stacklevel=2,
            )

    def _stamp_current(self, entry) -> bool:
        """True when the entry was priced against the correction state
        the live store serves right now.  Content comparison, not
        counter comparison: every pristine store digests identically
        (which is what lets a calibration-free restart serve warm-loaded
        entries as plain hits), and two stores that evolved different
        histories never collide."""
        return entry.calibration_digest == self.calibration.state_digest()

    def _lookup(self, key):
        """Cache lookup with backend read-through.

        An entry the in-memory cache evicted (size/TTL bounds) or never
        loaded still exists in the persistent store; fetch and promote
        it rather than re-speculating a workload that is sitting on
        disk."""
        entry = self.cache.get(key)
        if entry is not None or self.backend is None:
            return entry
        try:
            payload = self.backend.get(key)
            if payload is None:
                return None
            report, version, digest, written_at = entry_from_dict(payload)
        except PlanStoreError:
            return None  # incompatible entry: compute cold
        except Exception as exc:
            warnings.warn(
                f"plan store read failed ({exc}); computing cold",
                stacklevel=2,
            )
            return None
        if self._store_expired(written_at):
            self._expire_persisted(key)
            return None
        entry = _CachedPlan(report, version, digest)
        self.cache.put(key, entry)
        return entry

    def _persist(self, key, cached) -> None:
        """Write one cache entry through to the backend (best effort:
        a failing store must degrade persistence, not requests)."""
        if self.backend is None:
            return
        try:
            self.backend.store(
                key,
                entry_to_dict(cached.report, cached.calibration_version,
                              cached.calibration_digest),
            )
        except Exception as exc:
            warnings.warn(
                f"plan store write failed ({exc}); "
                "entry is served from memory only", stacklevel=2,
            )

    def close(self) -> None:
        """Release the persistent backends (write-through means there
        is nothing to flush)."""
        if self.backend is not None:
            self.backend.close()
        if self.checkpoints is not None:
            self.checkpoints.close()

    # ------------------------------------------------------------------
    def fingerprint(self, dataset, training, fixed_iterations=None,
                    algorithms=None, batch_sizes=None) -> str:
        """Cache key of one workload under this service's configuration.

        With ``fixed_iterations`` the optimizer's answer depends only on
        ``(DatasetStats, TrainingSpec, ClusterSpec)``; without it,
        speculation runs GD on the *actual* data, so the physical
        content digest joins the key -- two datasets with coinciding
        statistics but different data must not share a report.
        """
        return workload_fingerprint(
            dataset.stats,
            training,
            self.spec,
            data_digest=(
                None if fixed_iterations is not None
                else dataset.content_digest()
            ),
            representation=dataset.representation,
            algorithms=(
                self.algorithms if algorithms is None else tuple(algorithms)
            ),
            batch_sizes=(
                self.batch_sizes if batch_sizes is None else dict(batch_sizes)
            ),
            fixed_iterations=fixed_iterations,
            speculation=self.speculation,
            speculation_workers=self.speculation_workers,
            seed=self.seed,
        )

    def _make_optimizer(self, algorithms=None, batch_sizes=None) -> GDOptimizer:
        """A fresh optimizer (and simulated cluster) for one computation."""
        engine = SimulatedCluster(self.spec, seed=self.seed)
        estimator = SpeculativeEstimator(
            self.speculation,
            seed=self.seed,
            max_workers=self.speculation_workers,
        )
        return GDOptimizer(
            engine,
            estimator=estimator,
            algorithms=self.algorithms if algorithms is None else algorithms,
            batch_sizes=(
                self.batch_sizes if batch_sizes is None else batch_sizes
            ),
            cost_model=self.cost_model,
            calibration=self.calibration,
        )

    # ------------------------------------------------------------------
    def optimize(self, dataset, training, fixed_iterations=None,
                 algorithms=None, batch_sizes=None) -> ServiceResult:
        """Answer one optimize() request, from cache when possible.

        Identical concurrent requests coalesce onto a single computation
        -- for cold computes *and* for recalibration re-costs: a stale
        cache entry is re-priced exactly once however many callers see
        it go stale together; everyone gets the same report object.
        """
        start = time.perf_counter()
        with self._counter_lock:
            self.requests += 1
        key = self.fingerprint(
            dataset, training, fixed_iterations, algorithms, batch_sizes
        )

        entry = self._lookup(key)
        if entry is not None and self._stamp_current(entry):
            return ServiceResult(
                report=entry.report,
                fingerprint=key,
                cache_hit=True,
                coalesced=False,
                wall_s=time.perf_counter() - start,
            )

        # A miss, or a stale entry (the calibration store learned
        # something since it was priced).  Both routes go through the
        # in-flight table, so concurrent identical requests share one
        # computation instead of duplicating it.
        with self._inflight_lock:
            future = self._inflight.get(key)
            owner = future is None
            if owner:
                future = Future()
                self._inflight[key] = future

        if not owner:
            report, recalibrated = future.result()
            with self._counter_lock:
                self.coalesced += 1
            return ServiceResult(
                report=report,
                fingerprint=key,
                cache_hit=False,
                coalesced=True,
                wall_s=time.perf_counter() - start,
                recalibrated=recalibrated,
            )

        try:
            # Stamp with the calibration state the report is priced
            # against, read before optimizing -- a concurrent
            # calibration update while this computation runs must leave
            # the entry stale (the next request must re-cost again, not
            # serve part-stale numbers).
            version = self.calibration.version
            digest = self.calibration.state_digest()
            # A stale entry is re-costed from its cached speculation
            # results -- calibrated estimates with no re-speculation; a
            # plain miss speculates from scratch.
            recalibrated = entry is not None
            report = self._make_optimizer(algorithms, batch_sizes).optimize(
                dataset,
                training,
                fixed_iterations=fixed_iterations,
                iteration_estimates=(
                    entry.report.iteration_estimates if recalibrated else None
                ),
            )
        except BaseException as exc:
            # Waiters coalesced onto this computation see the same error.
            future.set_exception(exc)
            with self._inflight_lock:
                self._inflight.pop(key, None)
            raise
        # Populate the cache *before* dropping the in-flight entry, so a
        # concurrent identical request always finds one of the two.
        cached = _CachedPlan(report, version, digest)
        self.cache.put(key, cached)
        self._persist(key, cached)
        future.set_result((report, recalibrated))
        with self._inflight_lock:
            self._inflight.pop(key, None)
        with self._counter_lock:
            if recalibrated:
                self.recalibrated += 1
            else:
                self.computed += 1
        return ServiceResult(
            report=report,
            fingerprint=key,
            cache_hit=False,
            coalesced=False,
            wall_s=time.perf_counter() - start,
            recalibrated=recalibrated,
        )

    # ------------------------------------------------------------------
    def train(self, dataset, training, fixed_iterations=None,
              algorithms=None, batch_sizes=None, adaptive=False,
              adaptive_settings=None, operators=None,
              engine=None, job_id=None, checkpoint_every=None,
              budget=None, job_request=None) -> TrainServiceResult:
        """Optimize (through the plan cache), then execute the plan.

        Execution runs on a **per-caller engine clone** -- a fresh
        :class:`SimulatedCluster` per request (or the caller's own via
        ``engine``), so one caller's simulated clock, cache residency
        and metrics never leak into another's.

        With ``adaptive=True`` the plan runs under the adaptive runtime:
        convergence/cost monitoring, mid-flight re-optimization, and the
        resulting :class:`~repro.runtime.trace.ExecutionTrace` is folded
        into this service's calibration store -- subsequent requests for
        the same workload are then re-costed from cached speculation
        with the learned corrections (never re-speculated).

        **Durable jobs.**  With ``job_id`` the request becomes a
        checkpointed, preemptible job against this service's
        :class:`~repro.service.checkpoint.CheckpointStore`
        (``checkpoint_path=``): progress -- weights, optimizer state,
        execution trace, the plan decision -- is persisted every
        ``checkpoint_every`` global iterations and at every graceful
        stop, under an advisory lease so sibling processes cannot
        double-run the job.  A ``budget``
        (:class:`~repro.runtime.JobBudget`) bounds this lease; when it
        runs out the call returns with ``job.preempted`` and a fresh
        process (same store, same request, same ``job_id``) resumes
        mid-plan, bit-identically, without re-speculating.  A job that
        already finished returns its stored outcome without executing
        anything.  ``job_request`` optionally attaches a caller-level
        request descriptor to the checkpoints (the CLI stores the parsed
        request line, which is how a restarted server re-issues
        in-flight jobs).
        """
        if job_id is not None:
            if operators is not None:
                raise CheckpointError(
                    "durable jobs cannot run custom operator bundles: "
                    "a resuming process could not reconstruct them from "
                    "the checkpoint; drop operators= or job_id="
                )
            return self._train_job(
                dataset, training, fixed_iterations, algorithms,
                batch_sizes, adaptive, adaptive_settings, job_id,
                checkpoint_every, budget, job_request,
            )
        optimization = self.optimize(
            dataset, training, fixed_iterations, algorithms, batch_sizes
        )
        if engine is None:
            engine = SimulatedCluster(self.spec, seed=self.seed)
        report = optimization.report
        if not optimization.cache_hit and not optimization.recalibrated:
            # This request paid for speculation: reflect it in the
            # caller's simulated clock (sample collection + trial wall),
            # like GDOptimizer.train does.  Cached/recalibrated requests
            # skip it -- that saving is the point of the plan cache.
            report.charge_speculation(engine, include_sample_collection=True)

        if adaptive:
            optimizer = GDOptimizer(
                engine,
                estimator=SpeculativeEstimator(
                    self.speculation,
                    seed=self.seed,
                    max_workers=self.speculation_workers,
                ),
                algorithms=(
                    self.algorithms if algorithms is None else algorithms
                ),
                batch_sizes=(
                    self.batch_sizes if batch_sizes is None else batch_sizes
                ),
                cost_model=self.cost_model,
                calibration=self.calibration,
            )
            trainer = AdaptiveTrainer(
                optimizer,
                settings=adaptive_settings or self.adaptive_settings,
                calibration=self.calibration,
            )
            adaptive_result = trainer.train(
                dataset, training, fixed_iterations=fixed_iterations,
                report=report,
            )
            result, trace = adaptive_result.result, adaptive_result.trace
        else:
            adaptive_result = None
            trace = None
            result = execute_plan(
                engine, dataset, report.chosen_plan, training, operators
            )
        with self._counter_lock:
            self.trained += 1
        return TrainServiceResult(
            optimization=optimization,
            result=result,
            trace=trace,
            adaptive=adaptive_result,
        )

    # ------------------------------------------------------------------
    def _report_from_entry(self, key, plan_entry):
        """Restore a job's pricing report from its checkpointed
        plan-store entry (and re-seed the plan cache/store with it), or
        None when the entry is unusable.

        The entry is re-persisted *verbatim* -- original calibration
        stamp, original ``written_at`` -- so a resume neither mislabels
        old pricing as freshly calibrated (the stamp staleness rule
        must keep firing) nor rejuvenates an entry the disk-tier TTL
        should age out.
        """
        if plan_entry is None:
            return None
        try:
            report, version, digest, _ = entry_from_dict(plan_entry)
        except PlanStoreError as exc:
            warnings.warn(
                f"job plan entry is unusable ({exc}); re-optimizing",
                stacklevel=3,
            )
            return None
        self.cache.put(key, _CachedPlan(report, version, digest))
        if self.backend is not None:
            try:
                self.backend.store(key, plan_entry)
            except Exception as exc:
                warnings.warn(
                    f"plan store write failed ({exc}); "
                    "entry is served from memory only", stacklevel=2,
                )
        return report

    def _finished_job_result(self, job_id, key, checkpoint, report,
                             start) -> TrainServiceResult:
        """The stored outcome of a job that already ran to completion
        (idempotent re-submission: nothing executes, nothing
        re-speculates)."""
        trace = ExecutionTrace.from_dict(checkpoint.trace)
        chosen = candidate_from_dict(checkpoint.chosen)
        last = trace.segments[-1] if trace.segments else None
        result = TrainResult(
            plan=chosen.plan,
            weights=np.asarray(checkpoint.weights, dtype=float),
            iterations=trace.total_iterations,
            converged=trace.converged,
            deltas=np.asarray(last.deltas if last else [], dtype=float),
            sim_seconds=trace.sim_seconds,
            phase_seconds=dict(last.phase_seconds) if last else {},
            metrics={},
            state=(
                OptimizerState.from_dict(checkpoint.state)
                if checkpoint.state is not None else None
            ),
        )
        return TrainServiceResult(
            optimization=ServiceResult(
                report=report,
                fingerprint=key,
                cache_hit=True,
                coalesced=False,
                wall_s=time.perf_counter() - start,
            ),
            result=result,
            trace=trace,
            job=JobProgress(
                job_id=job_id,
                status="done",
                resumed=True,
                preempted=False,
                done_iterations=int(checkpoint.done_iterations),
                already_done=True,
            ),
        )

    def _train_job(self, dataset, training, fixed_iterations, algorithms,
                   batch_sizes, adaptive, adaptive_settings, job_id,
                   checkpoint_every, budget,
                   job_request) -> TrainServiceResult:
        """One lease of a durable training job (see :meth:`train`)."""
        if self.checkpoints is None:
            raise CheckpointError(
                f"train(job_id={job_id!r}) needs a checkpoint store; "
                "construct the service with checkpoint_path= or "
                "checkpoint_store="
            )
        start = time.perf_counter()
        key = self.fingerprint(
            dataset, training, fixed_iterations, algorithms, batch_sizes
        )
        owner = new_owner_token()
        # The lease is the double-run guard: acquired atomically through
        # the backend (flock / BEGIN IMMEDIATE), raising JobLeaseError
        # when a sibling process actively holds the job.
        checkpoint = self.checkpoints.acquire(job_id, owner)
        try:
            if checkpoint is not None and checkpoint.fingerprint \
                    and checkpoint.fingerprint != key:
                raise CheckpointError(
                    f"job {job_id!r} is bound to workload "
                    f"{checkpoint.fingerprint[:12]}..., but this request "
                    f"fingerprints as {key[:12]}...; refusing to resume a "
                    "different workload under the same job id"
                )
            if checkpoint is not None and checkpoint.status == "done" \
                    and checkpoint.resumable:
                report = self._report_from_entry(key, checkpoint.plan_entry)
                if report is not None:
                    with self._counter_lock:
                        self.requests += 1
                else:
                    # Undecodable plan entry: re-optimize (warm via the
                    # plan store when possible) so every downstream
                    # consumer still gets a real report.
                    report = self.optimize(
                        dataset, training, fixed_iterations, algorithms,
                        batch_sizes,
                    ).report
                return self._finished_job_result(
                    job_id, key, checkpoint, report, start
                )

            resume = None
            restored_entry = False
            if checkpoint is not None and checkpoint.resumable:
                if bool(checkpoint.adaptive) != bool(adaptive):
                    # The mode is part of the job, not of the lease: a
                    # non-adaptive resume of an adaptive job would keep
                    # the persisted switch allowance monitoring while
                    # feeding no calibration (and vice versa would pin
                    # a job that was promised switching).
                    warnings.warn(
                        f"job {job_id!r} was started with "
                        f"adaptive={bool(checkpoint.adaptive)}; resuming "
                        f"with that mode (requested adaptive={adaptive})",
                        stacklevel=3,
                    )
                    adaptive = bool(checkpoint.adaptive)
                # Resume mid-plan: the checkpoint carries the pricing
                # decision, so nothing re-speculates -- not even when
                # the plan store was lost.
                report = self._report_from_entry(key, checkpoint.plan_entry)
                restored_entry = report is not None
                resume = ResumePoint(
                    weights=checkpoint.weights,
                    state=checkpoint.state,
                    chosen=candidate_from_dict(checkpoint.chosen),
                    trace=ExecutionTrace.from_dict(checkpoint.trace),
                    done_iterations=checkpoint.done_iterations,
                    switches_left=checkpoint.switches_left,
                )
                if report is not None:
                    optimization = ServiceResult(
                        report=report,
                        fingerprint=key,
                        cache_hit=True,
                        coalesced=False,
                        wall_s=time.perf_counter() - start,
                    )
                    with self._counter_lock:
                        self.requests += 1
                else:
                    # The checkpointed pricing decision is unusable:
                    # re-optimize for the report (the training itself
                    # still resumes from the checkpointed plan/state).
                    optimization = self.optimize(
                        dataset, training, fixed_iterations, algorithms,
                        batch_sizes,
                    )
                    report = optimization.report
                with self._counter_lock:
                    self.jobs_resumed += 1
            else:
                optimization = self.optimize(
                    dataset, training, fixed_iterations, algorithms,
                    batch_sizes,
                )
                report = optimization.report
                with self._counter_lock:
                    self.jobs_started += 1

            engine = SimulatedCluster(self.spec, seed=self.seed)
            if resume is None and not optimization.cache_hit \
                    and not optimization.recalibrated:
                report.charge_speculation(
                    engine, include_sample_collection=True
                )
            if restored_entry:
                # Carry the checkpointed entry verbatim: its original
                # calibration stamp must keep driving the staleness
                # rule, and its original written_at must keep driving
                # disk-tier aging.  Only freshly optimized reports get
                # a fresh stamp.
                plan_entry = checkpoint.plan_entry
            else:
                plan_entry = entry_to_dict(
                    report, self.calibration.version,
                    self.calibration.state_digest(),
                )

            optimizer = GDOptimizer(
                engine,
                estimator=SpeculativeEstimator(
                    self.speculation,
                    seed=self.seed,
                    max_workers=self.speculation_workers,
                ),
                algorithms=(
                    self.algorithms if algorithms is None else algorithms
                ),
                batch_sizes=(
                    self.batch_sizes if batch_sizes is None else batch_sizes
                ),
                cost_model=self.cost_model,
                calibration=self.calibration,
            )
            trainer = AdaptiveTrainer(
                optimizer,
                settings=(
                    (adaptive_settings or self.adaptive_settings)
                    if adaptive
                    # Non-adaptive jobs run the same single-plan
                    # execution as plain train(): telemetry only, no
                    # mid-flight switching.
                    else AdaptiveSettings(max_switches=0)
                ),
                calibration=self.calibration if adaptive else None,
            )

            def persist(snapshot):
                # NOT best-effort: a job that cannot checkpoint has lost
                # its durability guarantee, so store errors propagate
                # (they also release the lease in the finally below).
                self.checkpoints.save(JobCheckpoint(
                    job_id=job_id,
                    status=snapshot.status,
                    fingerprint=key,
                    weights=np.asarray(
                        snapshot.weights, dtype=float
                    ).tolist(),
                    state=(
                        snapshot.state.to_dict()
                        if snapshot.state is not None else None
                    ),
                    chosen=candidate_to_dict(snapshot.chosen),
                    trace=snapshot.trace.to_dict(),
                    done_iterations=snapshot.done_iterations,
                    switches_left=snapshot.switches_left,
                    adaptive=adaptive,
                    plan_entry=plan_entry,
                    request=job_request,
                ), owner=owner)

            adaptive_result = trainer.train(
                dataset, training, fixed_iterations=fixed_iterations,
                report=report, resume=resume,
                checkpoint_every=checkpoint_every, budget=budget,
                on_checkpoint=persist,
            )
        finally:
            self.checkpoints.release(job_id, owner)

        with self._counter_lock:
            self.trained += 1
            if adaptive_result.preempted:
                self.jobs_preempted += 1
            else:
                self.jobs_completed += 1
        return TrainServiceResult(
            optimization=optimization,
            result=adaptive_result.result,
            trace=adaptive_result.trace,
            adaptive=adaptive_result if adaptive else None,
            job=JobProgress(
                job_id=job_id,
                status=(
                    "preempted" if adaptive_result.preempted else "done"
                ),
                resumed=resume is not None,
                preempted=adaptive_result.preempted,
                done_iterations=adaptive_result.trace.total_iterations,
            ),
        )

    def save_calibration(self, path=None) -> str | None:
        """Persist the calibration store (no-op without a path)."""
        if path is None and self.calibration.path is None:
            return None
        return self.calibration.save(path)

    # ------------------------------------------------------------------
    def optimize_many(self, requests, max_workers=None) -> list:
        """Serve a batch of requests concurrently; order is preserved.

        ``requests`` is an iterable of :class:`ServiceRequest`,
        ``(dataset, training)`` pairs, or
        ``(dataset, training, fixed_iterations)`` triples.
        """
        normalized = [self._normalize(r) for r in requests]
        if not normalized:
            return []
        if max_workers is None:
            max_workers = min(8, len(normalized))
        max_workers = max(1, min(max_workers, len(normalized)))
        if max_workers == 1 or len(normalized) == 1:
            return [
                self.optimize(r.dataset, r.training, r.fixed_iterations,
                              r.algorithms, r.batch_sizes)
                for r in normalized
            ]
        with ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="optimize"
        ) as pool:
            futures = [
                pool.submit(
                    self.optimize, r.dataset, r.training, r.fixed_iterations,
                    r.algorithms, r.batch_sizes,
                )
                for r in normalized
            ]
            return [f.result() for f in futures]

    def train_many(self, requests, max_workers=None, adaptive=False,
                   adaptive_settings=None) -> list:
        """Serve a batch of train() requests concurrently; order preserved.

        Same request forms as :meth:`optimize_many`; every request
        executes on its own engine clone, so concurrent training runs
        stay isolated.
        """
        normalized = [self._normalize(r) for r in requests]
        if not normalized:
            return []
        if max_workers is None:
            max_workers = min(8, len(normalized))
        max_workers = max(1, min(max_workers, len(normalized)))

        def one(request):
            return self.train(
                request.dataset, request.training, request.fixed_iterations,
                request.algorithms, request.batch_sizes,
                adaptive=adaptive, adaptive_settings=adaptive_settings,
                job_id=request.job_id,
                checkpoint_every=request.checkpoint_every,
                budget=request.budget,
                job_request=request.job_request,
            )

        if max_workers == 1 or len(normalized) == 1:
            return [one(r) for r in normalized]
        with ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="train"
        ) as pool:
            futures = [pool.submit(one, r) for r in normalized]
            return [f.result() for f in futures]

    @staticmethod
    def _normalize(request) -> ServiceRequest:
        if isinstance(request, ServiceRequest):
            return request
        if isinstance(request, tuple):
            if len(request) == 2:
                return ServiceRequest(request[0], request[1])
            if len(request) == 3:
                return ServiceRequest(*request)
        raise TypeError(
            "optimize_many() takes ServiceRequest instances, "
            "(dataset, training) pairs or "
            "(dataset, training, fixed_iterations) triples; "
            f"got {request!r}"
        )

    # ------------------------------------------------------------------
    def cache_stats(self):
        return self.cache.stats()

    def stats_summary(self) -> str:
        stats = self.cache.stats()
        text = (
            f"{stats.summary()}; {self.requests} requests "
            f"({self.computed} computed, {self.coalesced} coalesced, "
            f"{self.recalibrated} recalibrated)"
        )
        if self.trained:
            text += f"; {self.trained} trained"
        if self.calibration.observations:
            text += f"; calibration v{self.calibration.version}"
        if self.backend is not None:
            text += (
                f"; plan store: {self.backend.name}"
                f" ({self.warm_loaded} warm-loaded"
                + (f", {self.expired_persisted} aged out"
                   if self.expired_persisted else "")
                + ")"
            )
        jobs = self.jobs_started + self.jobs_resumed
        if jobs:
            text += (
                f"; {jobs} job lease(s) "
                f"({self.jobs_resumed} resumed, "
                f"{self.jobs_preempted} preempted, "
                f"{self.jobs_completed} completed)"
            )
        return text
