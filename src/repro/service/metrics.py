"""A small counter/gauge/timer registry threaded through the service.

One :class:`MetricsRegistry` is shared by the optimizer core
(:mod:`repro.service.core`: hits, misses, recosts, coalesced requests),
the job layer (:mod:`repro.service.jobs`: leases started / resumed /
preempted / completed) and the front-end (:mod:`repro.service.frontend`:
served, shed, quota rejections, queue depth, request latency), so one
``metrics`` request against a running server answers for every layer at
once.

Four instrument kinds, all thread-safe behind one lock:

* **counters** -- monotonically increasing ints (:meth:`inc`);
* **gauges** -- last-written values (:meth:`gauge`), for levels like the
  admission queue depth;
* **timers** -- a bounded reservoir of recent observations
  (:meth:`observe`), summarised as count / mean / p50 / p95 / max;
* **histograms** -- cumulative-bucket duration counters
  (:meth:`histogram`), fed by the trace recorder with one series per
  span name; unlike timers they never forget, so rates and totals are
  exact over the process lifetime.

The registry is deliberately dependency-free and samples nothing by
itself; :meth:`snapshot` returns plain JSON-ready dicts, which is what
the ``metrics`` verb of the line protocol serves, and
:meth:`render_prometheus` renders every instrument in the Prometheus
text exposition format for scrape-style consumers.
"""

from __future__ import annotations

import re
import threading
from collections import deque

#: Observations kept per timer; old ones fall off so percentiles track
#: *recent* latency, not the whole process lifetime.
TIMER_WINDOW = 2048

#: Histogram bucket upper bounds in seconds (latency-shaped; the
#: trailing implicit bucket is +Inf).
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name, prefix="repro") -> str:
    """Sanitise a dotted metric name into a Prometheus metric name."""
    flat = _PROM_NAME_RE.sub("_", name)
    if prefix and not flat.startswith(prefix + "_"):
        flat = f"{prefix}_{flat}"
    return flat


def quantile(sorted_values, q):
    """The ``q``-quantile of an ascending list (nearest-rank, ``0<=q<=1``)."""
    if not sorted_values:
        return None
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


class MetricsRegistry:
    """Thread-safe named counters, gauges and latency timers."""

    def __init__(self, timer_window=TIMER_WINDOW):
        self._lock = threading.Lock()
        self._counters = {}
        self._gauges = {}
        self._timers = {}
        self._histograms = {}
        self._timer_window = timer_window

    # -- counters --------------------------------------------------------
    def inc(self, name, value=1) -> int:
        """Add ``value`` to counter ``name`` (created at 0); returns the
        new total."""
        with self._lock:
            total = self._counters.get(name, 0) + value
            self._counters[name] = total
            return total

    def value(self, name) -> int:
        """Current value of counter ``name`` (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    # -- gauges ----------------------------------------------------------
    def gauge(self, name, value) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def gauge_value(self, name, default=None):
        with self._lock:
            return self._gauges.get(name, default)

    # -- timers ----------------------------------------------------------
    def observe(self, name, seconds) -> None:
        """Record one duration into timer ``name``."""
        with self._lock:
            timer = self._timers.get(name)
            if timer is None:
                timer = self._timers[name] = deque(maxlen=self._timer_window)
            timer.append(float(seconds))

    def timer_stats(self, name) -> dict | None:
        """count / mean / p50 / p95 / max of timer ``name`` (None when
        it has no observations)."""
        with self._lock:
            timer = self._timers.get(name)
            values = sorted(timer) if timer else None
        if not values:
            return None
        return {
            "count": len(values),
            "mean_s": sum(values) / len(values),
            "p50_s": quantile(values, 0.50),
            "p95_s": quantile(values, 0.95),
            "max_s": values[-1],
        }

    # -- histograms ------------------------------------------------------
    def histogram(self, name, value, buckets=DEFAULT_BUCKETS) -> None:
        """Record one observation into cumulative-bucket histogram
        ``name`` (buckets fixed at first observation)."""
        value = float(value)
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                bounds = tuple(sorted(float(b) for b in buckets))
                hist = self._histograms[name] = {
                    "buckets": bounds,
                    "counts": [0] * len(bounds),
                    "sum": 0.0,
                    "count": 0,
                }
            for index, bound in enumerate(hist["buckets"]):
                if value <= bound:
                    hist["counts"][index] += 1
            hist["sum"] += value
            hist["count"] += 1

    def histogram_stats(self, name) -> dict | None:
        """count / sum / cumulative bucket counts of histogram ``name``
        (None when it has no observations)."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                return None
            return {
                "count": hist["count"],
                "sum_s": hist["sum"],
                "buckets": {
                    f"{bound:g}": count
                    for bound, count in zip(hist["buckets"], hist["counts"])
                },
            }

    # -- export ----------------------------------------------------------
    def snapshot(self) -> dict:
        """Every instrument as one JSON-ready dict (counters sorted by
        name; timers summarised, not dumped raw)."""
        with self._lock:
            counters = dict(sorted(self._counters.items()))
            gauges = dict(sorted(self._gauges.items()))
            timer_names = list(self._timers)
            histogram_names = list(self._histograms)
        timers = {}
        for name in sorted(timer_names):
            stats = self.timer_stats(name)
            if stats is not None:
                timers[name] = stats
        histograms = {}
        for name in sorted(histogram_names):
            stats = self.histogram_stats(name)
            if stats is not None:
                histograms[name] = stats
        return {
            "counters": counters,
            "gauges": gauges,
            "timers": timers,
            "histograms": histograms,
        }

    def prometheus_lines(self, prefix="repro") -> list:
        """Every instrument in the Prometheus text exposition format.

        Counters render as ``<name>_total``, gauges as-is, timers as
        summaries (windowed quantiles -- labelled from the recent
        reservoir, so they track current latency), histograms as
        cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``.
        """
        snapshot = self.snapshot()
        lines = []
        for name, value in snapshot["counters"].items():
            flat = _prom_name(name, prefix) + "_total"
            lines.append(f"# TYPE {flat} counter")
            lines.append(f"{flat} {value}")
        for name, value in snapshot["gauges"].items():
            flat = _prom_name(name, prefix)
            lines.append(f"# TYPE {flat} gauge")
            lines.append(f"{flat} {value}")
        for name, stats in snapshot["timers"].items():
            flat = _prom_name(name, prefix)
            lines.append(f"# TYPE {flat} summary")
            lines.append(f'{flat}{{quantile="0.5"}} {stats["p50_s"]:g}')
            lines.append(f'{flat}{{quantile="0.95"}} {stats["p95_s"]:g}')
            lines.append(f"{flat}_sum {stats['mean_s'] * stats['count']:g}")
            lines.append(f"{flat}_count {stats['count']}")
        for name, stats in snapshot["histograms"].items():
            flat = _prom_name(name, prefix) + "_seconds"
            lines.append(f"# TYPE {flat} histogram")
            for bound, count in stats["buckets"].items():
                lines.append(f'{flat}_bucket{{le="{bound}"}} {count}')
            lines.append(f'{flat}_bucket{{le="+Inf"}} {stats["count"]}')
            lines.append(f"{flat}_sum {stats['sum_s']:g}")
            lines.append(f"{flat}_count {stats['count']}")
        return lines

    def render_prometheus(self, prefix="repro") -> str:
        """The full exposition as one text blob (trailing newline)."""
        return "\n".join(self.prometheus_lines(prefix)) + "\n"

    def summary_lines(self) -> list:
        """The snapshot rendered as ``name value`` text lines (what the
        stdin serve loop prints for a ``metrics`` request)."""
        snapshot = self.snapshot()
        lines = []
        for name, value in snapshot["counters"].items():
            lines.append(f"{name} {value}")
        for name, value in snapshot["gauges"].items():
            lines.append(f"{name} {value}")
        for name, stats in snapshot["timers"].items():
            lines.append(
                f"{name} count={stats['count']} "
                f"p50={stats['p50_s'] * 1e3:.1f}ms "
                f"p95={stats['p95_s'] * 1e3:.1f}ms"
            )
        return lines
