"""Synthetic dataset generators.

The paper evaluates on LIBSVM datasets (adult, covtype, yearpred, rcv1,
higgs) plus dense synthetic SVM datasets up to 160 GB (Table 2).  The real
files are not redistributable here, so ``repro.data.datasets`` builds
*shape-equivalent* synthetic stand-ins with these generators.  The knobs
that matter for reproducing the paper's behaviour are:

``separability``
    Margin scale of the true linear concept.  Controls how quickly
    stochastic gradients vanish (an SGD step on a correctly-classified
    hinge point is exactly zero), which drives the per-dataset iteration
    counts in Table 4.
``label_noise``
    Fraction of flipped labels; makes a task genuinely non-separable
    (covtype-like), favouring batch GD at tight tolerances.
``row_order``
    ``"shuffled"`` (iid row layout) or ``"sorted"`` (rows ordered by label,
    as proxies for rcv1's skew).  Partition-local sampling is biased under
    ``"sorted"`` layouts, reproducing the rcv1 accuracy anomaly of
    Section 8.5.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as sp

from repro.errors import DataFormatError


def _true_weights(d, rng):
    """A unit-norm ground-truth weight vector."""
    w = rng.normal(0.0, 1.0, size=d)
    norm = np.linalg.norm(w)
    if norm == 0:
        w[0] = 1.0
        norm = 1.0
    return w / norm


def _apply_row_order(X, y, row_order, rng):
    if row_order == "shuffled":
        perm = rng.permutation(y.shape[0])
    elif row_order == "sorted":
        # Stable sort by label groups all -1 rows before all +1 rows,
        # the worst case for partition-local sampling.
        perm = np.argsort(y, kind="stable")
    else:
        raise DataFormatError(f"unknown row_order {row_order!r}")
    return X[perm], y[perm]


def _set_margins(X, w_star, targets):
    """Shift each row along w* so that ``row . w_star == targets[row]``.

    For sparse rows the shift is confined to the row's active coordinates
    (preserving the sparsity pattern); rows whose active coordinates carry
    no w* mass keep their natural margin.
    """
    if sp.issparse(X):
        X = X.tocsr()
        current = np.asarray(X @ w_star).ravel()
        pattern = X.copy()
        pattern.data = np.ones_like(pattern.data)
        wsq = np.asarray(pattern @ (w_star ** 2)).ravel()
        ok = wsq > 1e-12
        coefs = np.zeros_like(current)
        coefs[ok] = (targets[ok] - current[ok]) / wsq[ok]
        per_entry = np.repeat(coefs, np.diff(X.indptr))
        X.data = X.data + per_entry * w_star[X.indices]
        return X
    current = X @ w_star
    coefs = (targets - current) / float(w_star @ w_star)
    return X + np.outer(coefs, w_star)


def make_classification(
    n,
    d,
    density=1.0,
    separability=1.0,
    hard_fraction=0.3,
    label_noise=0.0,
    sparse=False,
    row_order="shuffled",
    feature_scale=1.0,
    noise_scale=1.0,
    rng=None,
):
    """Binary classification data with labels in {-1, +1}.

    The margin distribution is a *mixture*, mimicking how real datasets
    behave under gradient descent:

    * a ``1 - hard_fraction`` mass of **easy** points whose signed margin
      ``y (x . w*)`` is placed around ``separability`` (these saturate the
      logistic/hinge gradients once training matures -- they are what
      lets SGD's weight-delta drop below a tolerance), and
    * a ``hard_fraction`` mass of **hard** points with signed margins
      ``~ N(0, 0.35)`` straddling the boundary (these keep the mean
      gradient alive and set how many iterations batch methods need).

    ``label_noise`` additionally flips that fraction of labels, and
    ``feature_scale`` multiplies all feature values; with the paper's
    fixed beta/sqrt(i) step size these are the knobs that control the
    iterations-to-tolerance behaviour (real LIBSVM datasets have equally
    arbitrary natural scales and hardness mixes).  Returns
    ``(X, y, w_star)``.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    if n < 1 or d < 1:
        raise DataFormatError("need n >= 1 and d >= 1")
    if not 0 < density <= 1.0:
        raise DataFormatError("density must be in (0, 1]")
    if not 0 <= label_noise < 0.5:
        raise DataFormatError("label_noise must be in [0, 0.5)")
    if not 0 <= hard_fraction <= 1.0:
        raise DataFormatError("hard_fraction must be in [0, 1]")

    w_star = _true_weights(d, rng)
    if sparse:
        X = sp.random(
            n, d, density=density, format="csr",
            random_state=np.random.RandomState(int(rng.integers(2**31))),
            data_rvs=lambda size: rng.normal(0.0, noise_scale, size=size),
        )
    else:
        X = rng.normal(0.0, noise_scale, size=(n, d))

    y = np.where(rng.random(n) < 0.5, 1.0, -1.0)
    hard = rng.random(n) < hard_fraction
    signed_margin = np.empty(n)
    n_hard = int(hard.sum())
    signed_margin[hard] = rng.normal(0.0, 0.35, size=n_hard)
    # Easy margins are *bounded* (uniform band): with the logistic loss
    # the per-point gradient then saturates smoothly but never vanishes,
    # which is what makes real LogR datasets need hundreds of SGD
    # iterations, while the hinge loss zeroes out exactly on this band,
    # which is why the paper's SVM datasets stop SGD within a few draws.
    signed_margin[~hard] = separability * rng.uniform(
        1.0, 1.5, size=n - n_hard
    )
    X = _set_margins(X, w_star, y * signed_margin)

    if label_noise > 0:
        flip = rng.random(n) < label_noise
        y[flip] = -y[flip]

    if feature_scale != 1.0:
        X = X * feature_scale

    X, y = _apply_row_order(X, y, row_order, rng)
    return X, y, w_star


def make_regression(
    n,
    d,
    density=1.0,
    noise=0.1,
    sparse=False,
    row_order="shuffled",
    feature_scale=1.0,
    rng=None,
):
    """Linear regression data ``y = X w* + noise``; returns (X, y, w_star).

    ``feature_scale`` multiplies X (and therefore y); see
    :func:`make_classification` for why the scale knob exists.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    if n < 1 or d < 1:
        raise DataFormatError("need n >= 1 and d >= 1")

    w_star = _true_weights(d, rng)
    if sparse:
        X = sp.random(
            n, d, density=density, format="csr",
            random_state=np.random.RandomState(int(rng.integers(2**31))),
            data_rvs=lambda size: rng.normal(0.0, 1.0, size=size),
        )
        signal = np.asarray(X @ w_star).ravel()
    else:
        X = rng.normal(0.0, 1.0, size=(n, d))
        signal = X @ w_star

    y = signal + rng.normal(0.0, noise * max(np.std(signal), 1e-12), size=n)
    if feature_scale != 1.0:
        X = X * feature_scale
        y = y * feature_scale
    if row_order == "sorted":
        perm = np.argsort(y, kind="stable")
        X, y = X[perm], y[perm]
    elif row_order == "shuffled":
        perm = rng.permutation(n)
        X, y = X[perm], y[perm]
    else:
        raise DataFormatError(f"unknown row_order {row_order!r}")
    return X, y, w_star
