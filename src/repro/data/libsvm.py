"""Reader/writer for the LIBSVM sparse text format.

The paper's real datasets come from the LIBSVM repository (Section 8.1)
and its running example parses exactly this format (Figure 3(a): a label
followed by ``index:value`` pairs).  Users who have the original files can
load them through :func:`read_libsvm` and run the optimizer on real data;
the test-suite uses :func:`write_libsvm` round-trips.

Indices in files are 1-based (LIBSVM convention) and converted to 0-based
column positions in the returned CSR matrix.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as sp

from repro.errors import DataFormatError


def parse_libsvm_line(line, line_no=0):
    """Parse one LIBSVM line into ``(label, indices, values)``.

    Mirrors the Transform operator of Figure 3(a): "identifies the
    double-type dimensions of each data point as well as its label ...
    outputs a sparse data unit containing a label, a set of indices, and
    a set of values".
    """
    parts = line.strip().split()
    if not parts:
        raise DataFormatError(f"line {line_no}: empty data unit")
    try:
        label = float(parts[0])
    except ValueError as exc:
        raise DataFormatError(f"line {line_no}: bad label {parts[0]!r}") from exc
    indices = []
    values = []
    for item in parts[1:]:
        if item.startswith("#"):
            break  # trailing comment
        idx_str, _, val_str = item.partition(":")
        if not val_str:
            raise DataFormatError(
                f"line {line_no}: expected index:value, got {item!r}"
            )
        try:
            idx = int(idx_str)
            val = float(val_str)
        except ValueError as exc:
            raise DataFormatError(
                f"line {line_no}: bad feature entry {item!r}"
            ) from exc
        if idx < 1:
            raise DataFormatError(
                f"line {line_no}: LIBSVM indices are 1-based, got {idx}"
            )
        indices.append(idx - 1)
        values.append(val)
    if indices and any(b <= a for a, b in zip(indices, indices[1:])):
        # LIBSVM requires ascending indices; tolerate but normalise.
        order = np.argsort(indices, kind="stable")
        indices = [indices[i] for i in order]
        values = [values[i] for i in order]
    return label, indices, values


def read_libsvm(path_or_lines, n_features=None):
    """Read a LIBSVM file (path, file object or iterable of lines).

    Returns ``(X, y)`` where ``X`` is CSR with ``n_features`` columns
    (inferred from the data when not given).
    """
    if isinstance(path_or_lines, str):
        with open(path_or_lines) as handle:
            return read_libsvm(handle, n_features=n_features)

    labels = []
    indptr = [0]
    col_indices = []
    data = []
    max_index = -1
    for line_no, line in enumerate(path_or_lines, start=1):
        if not line.strip() or line.lstrip().startswith("#"):
            continue
        label, idx, vals = parse_libsvm_line(line, line_no)
        labels.append(label)
        col_indices.extend(idx)
        data.extend(vals)
        indptr.append(len(col_indices))
        if idx:
            max_index = max(max_index, idx[-1])

    if not labels:
        raise DataFormatError("no data units found in LIBSVM input")
    d = n_features if n_features is not None else max_index + 1
    if d <= max_index:
        raise DataFormatError(
            f"n_features={d} but the file references feature {max_index + 1}"
        )
    d = max(1, d)
    X = sp.csr_matrix(
        (np.asarray(data), np.asarray(col_indices, dtype=np.int32),
         np.asarray(indptr, dtype=np.int64)),
        shape=(len(labels), d),
    )
    return X, np.asarray(labels)


def write_libsvm(path_or_handle, X, y, precision=6):
    """Write ``(X, y)`` in LIBSVM format (1-based, ascending indices)."""
    if isinstance(path_or_handle, str):
        with open(path_or_handle, "w") as handle:
            write_libsvm(handle, X, y, precision=precision)
            return
    handle = path_or_handle
    X = sp.csr_matrix(X)
    if X.shape[0] != len(y):
        raise DataFormatError(
            f"X has {X.shape[0]} rows but y has {len(y)} labels"
        )
    fmt = f"{{:d}}:{{:.{precision}g}}"
    for row in range(X.shape[0]):
        lo, hi = X.indptr[row], X.indptr[row + 1]
        entries = " ".join(
            fmt.format(int(col) + 1, float(val))
            for col, val in zip(X.indices[lo:hi], X.data[lo:hi])
        )
        label = y[row]
        label_str = f"{int(label):d}" if float(label).is_integer() else f"{label:g}"
        handle.write(f"{label_str} {entries}\n" if entries else f"{label_str}\n")
