"""Dataset substrate: synthetic Table 2 stand-ins and real LIBSVM IO."""

from repro.data.datasets import (
    PAPER_ORDER,
    REGISTRY,
    DatasetSpec,
    generate,
    load,
    names,
    svm_a_spec,
    svm_b_spec,
)
from repro.data.libsvm import parse_libsvm_line, read_libsvm, write_libsvm
from repro.data.splits import train_test_split
from repro.data.synth import make_classification, make_regression

__all__ = [
    "PAPER_ORDER",
    "REGISTRY",
    "DatasetSpec",
    "generate",
    "load",
    "names",
    "svm_a_spec",
    "svm_b_spec",
    "parse_libsvm_line",
    "read_libsvm",
    "write_libsvm",
    "train_test_split",
    "make_classification",
    "make_regression",
]
