"""Registry of the paper's evaluation datasets (Table 2).

Each entry describes one dataset from Table 2 plus the synthetic-generator
parameters that make our stand-in behave like the original (see
``repro.data.synth``).  The *simulated* statistics (row count, byte sizes)
match the paper exactly; the *physical* arrays are scaled down by
``phys_divisor`` so everything runs on a laptop.

    Name      Task  #points     #features  Size    Density
    adult     LogR  100,827     123        7 MB    0.11
    covtype   LogR  581,012     54         68 MB   0.22
    yearpred  LinR  463,715     90         890 MB  1.0
    rcv1      LogR  677,399     47,236     1.2 GB  1.5e-3
    higgs     SVM   11,000,000  28         7.4 GB  0.92
    svm1      SVM   5,516,800   100        10 GB   1.0
    svm2      SVM   44,134,400  100        80 GB   1.0
    svm3      SVM   88,268,800  100        160 GB  1.0
    SVM_A     SVM   [2.7M-88M]  100        [5-160 GB]   1.0
    SVM_B     SVM   10K         [1K-500K]  [180MB-90GB] 1.0
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.cluster.hardware import DOUBLE_BYTES, SPARSE_ENTRY_BYTES, ClusterSpec
from repro.cluster.storage import DatasetStats, PartitionedDataset
from repro.data import synth
from repro.errors import DataFormatError

GB = 1024 ** 3
MB = 1024 ** 2


@dataclasses.dataclass(frozen=True)
class DatasetSpec:
    """Static description of one registry dataset."""

    name: str
    task: str  # "logreg" | "linreg" | "svm"
    paper_n: int
    d: int
    density: float
    sparse: bool
    paper_bytes: int
    #: physical rows = paper_n / phys_divisor
    phys_divisor: int
    #: generator shape knobs (see repro.data.synth)
    separability: float = 1.0
    hard_fraction: float = 0.3
    label_noise: float = 0.0
    row_order: str = "shuffled"
    regression_noise: float = 0.1
    feature_scale: float = 1.0
    noise_scale: float = 1.0
    description: str = ""

    @property
    def phys_n(self) -> int:
        return max(32, self.paper_n // self.phys_divisor)

    @property
    def row_text_bytes(self) -> float:
        """Average raw-file bytes per row implied by Table 2."""
        return self.paper_bytes / self.paper_n

    @property
    def row_binary_bytes(self) -> float:
        if self.sparse:
            nnz = max(1.0, self.d * self.density)
            return DOUBLE_BYTES + nnz * SPARSE_ENTRY_BYTES
        return DOUBLE_BYTES + self.d * DOUBLE_BYTES

    def stats(self, n=None) -> DatasetStats:
        """Paper-scale :class:`DatasetStats` (optionally overriding n)."""
        n = self.paper_n if n is None else n
        return DatasetStats(
            name=self.name,
            task=self.task,
            n=n,
            d=self.d,
            density=self.density,
            is_sparse=self.sparse,
            row_text_bytes=self.row_text_bytes,
            row_binary_bytes=self.row_binary_bytes,
        )


# Generator parameters below were calibrated (see DESIGN.md section 3 and
# EXPERIMENTS.md) so that iteration counts at the paper's tolerances land
# in the same regimes the paper reports: LogR datasets need hundreds-to-
# thousands of SGD/BGD iterations, the dense SVM datasets stop SGD within
# a few draws while MGD hits the 1000-iteration cap, and yearpred
# converges within tens of iterations at tolerance 0.1.
REGISTRY = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            "adult", "logreg", 100_827, 123, 0.11, True, 7 * MB, 100,
            separability=1.2, hard_fraction=0.3, label_noise=0.02,
            noise_scale=0.3, feature_scale=1.0,
            description="census income; sparse binary features",
        ),
        DatasetSpec(
            "covtype", "logreg", 581_012, 54, 0.22, True, 68 * MB, 100,
            separability=1.0, hard_fraction=0.5, label_noise=0.10,
            noise_scale=0.3, feature_scale=1.0,
            description="forest cover type; noisy, hard to separate",
        ),
        DatasetSpec(
            "yearpred", "linreg", 463_715, 90, 1.0, False, 890 * MB, 100,
            regression_noise=0.05, feature_scale=0.2,
            description="YearPredictionMSD; dense regression",
        ),
        DatasetSpec(
            "rcv1", "logreg", 677_399, 47_236, 1.5e-3, True, int(1.2 * GB), 100,
            separability=1.5, hard_fraction=0.2, label_noise=0.02,
            noise_scale=0.3, feature_scale=0.4, row_order="sorted",
            description="Reuters news; very sparse, label-skewed row order",
        ),
        DatasetSpec(
            "higgs", "svm", 11_000_000, 28, 0.92, False, int(7.4 * GB), 200,
            separability=2.0, hard_fraction=0.0, label_noise=0.02,
            noise_scale=0.3, feature_scale=1.0,
            description="HIGGS; large dense, well separable",
        ),
        DatasetSpec(
            "svm1", "svm", 5_516_800, 100, 1.0, False, 10 * GB, 200,
            separability=2.0, hard_fraction=0.0, label_noise=0.02,
            noise_scale=0.3, feature_scale=1.0,
            description="synthetic dense SVM, 10 GB",
        ),
        DatasetSpec(
            "svm2", "svm", 44_134_400, 100, 1.0, False, 80 * GB, 1000,
            separability=2.0, hard_fraction=0.0, label_noise=0.02,
            noise_scale=0.3, feature_scale=1.0,
            description="synthetic dense SVM, 80 GB",
        ),
        DatasetSpec(
            "svm3", "svm", 88_268_800, 100, 1.0, False, 160 * GB, 2000,
            separability=2.0, hard_fraction=0.0, label_noise=0.02,
            noise_scale=0.3, feature_scale=1.0,
            description="synthetic dense SVM, 160 GB (exceeds Spark cache)",
        ),
    ]
}

#: Datasets in the order the paper's figures present them.
PAPER_ORDER = ("adult", "covtype", "yearpred", "rcv1", "higgs", "svm1", "svm2", "svm3")


def svm_a_spec(paper_n) -> DatasetSpec:
    """One point of the SVM_A scalability sweep (#points varies, d=100)."""
    bytes_total = int(paper_n * (160 * GB / 88_268_800))  # same row encoding as svm3
    return DatasetSpec(
        f"SVM_A_{paper_n}", "svm", paper_n, 100, 1.0, False, bytes_total,
        phys_divisor=max(100, paper_n // 40_000),
        separability=2.0, hard_fraction=0.0, label_noise=0.02,
        noise_scale=0.3, feature_scale=1.0,
        description="SVM_A scalability sweep point",
    )


def svm_b_spec(d) -> DatasetSpec:
    """One point of the SVM_B sweep (10K points, #features varies)."""
    bytes_total = int(10_000 * d * (90 * GB / (10_000 * 500_000)))
    # Cap the physical matrix at ~25M elements (~200 MB) regardless of d.
    divisor = max(10, (10_000 * d) // 25_000_000)
    return DatasetSpec(
        f"SVM_B_{d}", "svm", 10_000, d, 1.0, False, max(bytes_total, MB),
        phys_divisor=divisor,
        separability=2.0, hard_fraction=0.0, label_noise=0.02,
        noise_scale=0.3, feature_scale=1.0,
        description="SVM_B scalability sweep point",
    )


def generate(spec, seed=0, phys_n=None):
    """Materialise physical arrays for a :class:`DatasetSpec`.

    Returns ``(X, y)`` with ``phys_n`` rows (default: ``spec.phys_n``).
    """
    rng = np.random.default_rng(seed)
    n = phys_n if phys_n is not None else spec.phys_n
    if spec.task in ("logreg", "svm"):
        X, y, _ = synth.make_classification(
            n=n,
            d=spec.d,
            density=spec.density if spec.sparse else 1.0,
            separability=spec.separability,
            hard_fraction=spec.hard_fraction,
            label_noise=spec.label_noise,
            sparse=spec.sparse,
            row_order=spec.row_order,
            feature_scale=spec.feature_scale,
            noise_scale=spec.noise_scale,
            rng=rng,
        )
    elif spec.task == "linreg":
        X, y, _ = synth.make_regression(
            n=n,
            d=spec.d,
            density=spec.density if spec.sparse else 1.0,
            noise=spec.regression_noise,
            sparse=spec.sparse,
            row_order=spec.row_order,
            feature_scale=spec.feature_scale,
            rng=rng,
        )
    else:
        raise DataFormatError(f"unknown task {spec.task!r}")
    return X, y


def load(name_or_spec, cluster_spec=None, seed=0, phys_n=None):
    """Generate and partition a registry dataset for the simulated cluster.

    ``name_or_spec`` is a registry name (e.g. ``"adult"``) or a
    :class:`DatasetSpec` (e.g. from :func:`svm_a_spec`).  The returned
    :class:`PartitionedDataset` is in ``text`` representation, as stored
    on HDFS before any Transform runs.
    """
    spec = REGISTRY[name_or_spec] if isinstance(name_or_spec, str) else name_or_spec
    cluster_spec = cluster_spec or ClusterSpec()
    X, y = generate(spec, seed=seed, phys_n=phys_n)
    stats = spec.stats()
    return PartitionedDataset(X, y, stats, cluster_spec, representation="text")


def names():
    """Registry dataset names in paper order."""
    return list(PAPER_ORDER)
