"""Train/test splitting utilities.

The paper's accuracy experiment (Section 8.5) uses the LIBSVM-provided
test sets where available "otherwise we randomly split the initial dataset
in training (80%) and testing (20%)".
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataFormatError


def train_test_split(X, y, test_fraction=0.2, rng=None):
    """Random split into (X_train, y_train, X_test, y_test)."""
    rng = rng if rng is not None else np.random.default_rng(0)
    if not 0.0 < test_fraction < 1.0:
        raise DataFormatError("test_fraction must be in (0, 1)")
    n = X.shape[0]
    n_test = max(1, int(round(n * test_fraction)))
    if n_test >= n:
        raise DataFormatError(
            f"cannot hold out {n_test} of {n} rows for testing"
        )
    perm = rng.permutation(n)
    test_idx = perm[:n_test]
    train_idx = perm[n_test:]
    return X[train_idx], y[train_idx], X[test_idx], y[test_idx]
