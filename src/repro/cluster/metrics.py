"""Execution metrics collected by the simulated cluster engine.

Every engine primitive records what it did (pages read, seeks, bytes moved,
jobs launched, CPU-seconds charged) under a *phase* label such as
``"transform"`` or ``"compute"``.  The benchmark harness uses these counters
to explain *why* one GD plan beats another (e.g. the shuffled-partition
sampler reading orders of magnitude fewer pages than Bernoulli).
"""

from __future__ import annotations

import collections
import dataclasses


@dataclasses.dataclass
class PhaseMetrics:
    """Counters for one execution phase."""

    sim_seconds: float = 0.0
    pages_disk: int = 0
    pages_mem: int = 0
    seeks: int = 0
    network_bytes: int = 0
    packets: int = 0
    cpu_seconds: float = 0.0
    rows_processed: int = 0
    jobs: int = 0

    def merge(self, other: "PhaseMetrics") -> None:
        """Accumulate ``other`` into this instance."""
        self.sim_seconds += other.sim_seconds
        self.pages_disk += other.pages_disk
        self.pages_mem += other.pages_mem
        self.seeks += other.seeks
        self.network_bytes += other.network_bytes
        self.packets += other.packets
        self.cpu_seconds += other.cpu_seconds
        self.rows_processed += other.rows_processed
        self.jobs += other.jobs


class MetricsRecorder:
    """Aggregates :class:`PhaseMetrics` per phase label."""

    def __init__(self):
        self._phases = collections.defaultdict(PhaseMetrics)

    def phase(self, name) -> PhaseMetrics:
        """Return (creating if needed) the metrics bucket for ``name``."""
        return self._phases[name]

    def record_time(self, phase, seconds) -> None:
        self._phases[phase].sim_seconds += seconds

    @property
    def phases(self) -> dict:
        """Mapping of phase name to its :class:`PhaseMetrics`."""
        return dict(self._phases)

    @property
    def total_seconds(self) -> float:
        return sum(p.sim_seconds for p in self._phases.values())

    @property
    def total_pages(self) -> int:
        return sum(p.pages_disk + p.pages_mem for p in self._phases.values())

    @property
    def total_jobs(self) -> int:
        return sum(p.jobs for p in self._phases.values())

    @property
    def total_network_bytes(self) -> int:
        return sum(p.network_bytes for p in self._phases.values())

    def snapshot(self) -> dict:
        """Return a plain-dict copy (suitable for JSON / assertions)."""
        return {
            name: dataclasses.asdict(phase)
            for name, phase in sorted(self._phases.items())
        }

    def summary(self) -> str:
        """Human-readable multi-line summary, one row per phase."""
        lines = [
            f"{'phase':<14} {'sim_s':>10} {'pages_disk':>11} {'pages_mem':>10}"
            f" {'seeks':>8} {'net_bytes':>12} {'jobs':>6}"
        ]
        for name, p in sorted(self._phases.items()):
            lines.append(
                f"{name:<14} {p.sim_seconds:>10.4f} {p.pages_disk:>11}"
                f" {p.pages_mem:>10} {p.seeks:>8} {p.network_bytes:>12} {p.jobs:>6}"
            )
        lines.append(
            f"{'TOTAL':<14} {self.total_seconds:>10.4f} "
            f"{sum(p.pages_disk for p in self._phases.values()):>11} "
            f"{sum(p.pages_mem for p in self._phases.values()):>10} "
            f"{sum(p.seeks for p in self._phases.values()):>8} "
            f"{self.total_network_bytes:>12} {self.total_jobs:>6}"
        )
        return "\n".join(lines)
