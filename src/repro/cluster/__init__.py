"""Simulated Spark/HDFS-like execution substrate.

This subpackage replaces the paper's physical testbed (4-node Spark
cluster, Section 8.1) with a discrete-cost simulator: real numpy math,
simulated time.  See DESIGN.md section 1 for the substitution argument.
"""

from repro.cluster.cache import CacheManager
from repro.cluster.engine import SimulatedCluster
from repro.cluster.hardware import ClusterSpec, laptop_scale_spec
from repro.cluster.metrics import MetricsRecorder, PhaseMetrics
from repro.cluster.sampling import (
    SAMPLER_NAMES,
    BernoulliSampler,
    FullScanSampler,
    RandomPartitionSampler,
    SampleDraw,
    ShuffledPartitionSampler,
    make_sampler,
)
from repro.cluster.storage import DatasetStats, Partition, PartitionedDataset

__all__ = [
    "CacheManager",
    "SimulatedCluster",
    "ClusterSpec",
    "laptop_scale_spec",
    "MetricsRecorder",
    "PhaseMetrics",
    "SAMPLER_NAMES",
    "BernoulliSampler",
    "FullScanSampler",
    "RandomPartitionSampler",
    "SampleDraw",
    "ShuffledPartitionSampler",
    "make_sampler",
    "DatasetStats",
    "Partition",
    "PartitionedDataset",
]
