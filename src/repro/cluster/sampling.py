"""Sampling strategies for stochastic GD plans (Section 6, Figure 4).

The paper's optimizer considers three physical implementations of the
``Sample`` operator:

* **Bernoulli** -- scan *every* partition, include each data unit with
  probability m/n (what MLlib does).  Cheap per row but reads the whole
  dataset every iteration.
* **Random-partition** -- pick one partition at random, then fetch m data
  units at random positions inside it.  Skips most of the data but pays a
  random access (seek) per sampled unit.
* **Shuffled-partition** -- permute one randomly-picked partition *once*,
  then serve samples sequentially from the permuted order, re-shuffling a
  fresh partition only when the current one is exhausted.  Near-sequential
  cost per iteration, at the price of partition-local (possibly biased)
  samples.

Each strategy both charges the :class:`~repro.cluster.engine.SimulatedCluster`
for the IO it would perform *and* returns physical row indices for the real
math.  The returned ``sim_size`` is the number of simulated data units the
sample stands for (used for CPU cost accounting by the caller).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import PlanError

#: Registry of sampler names used by plans and the declarative language.
SAMPLER_NAMES = ("bernoulli", "random", "shuffle")


@dataclasses.dataclass
class SampleDraw:
    """Result of one sampling call."""

    #: Physical row indices to run the math on.
    indices: np.ndarray
    #: Number of *simulated* data units this sample stands for.
    sim_size: int
    #: Partitions touched (for diagnostics).
    partitions: tuple = ()


def make_sampler(name, engine, dataset, batch_size, rng=None):
    """Instantiate a sampler by registry name."""
    rng = rng if rng is not None else engine.rng
    if name == "bernoulli":
        return BernoulliSampler(engine, dataset, batch_size, rng)
    if name == "random":
        return RandomPartitionSampler(engine, dataset, batch_size, rng)
    if name == "shuffle":
        return ShuffledPartitionSampler(engine, dataset, batch_size, rng)
    raise PlanError(
        f"unknown sampler {name!r}; expected one of {SAMPLER_NAMES}"
    )


class _SamplerBase:
    """Common state shared by all sampling strategies."""

    name = "base"

    def __init__(self, engine, dataset, batch_size, rng):
        if batch_size < 1:
            raise PlanError("sample batch size must be >= 1")
        self.engine = engine
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.rng = rng

    # Helpers -----------------------------------------------------------
    def _physical_size(self, sim_size):
        """Physical rows standing in for ``sim_size`` simulated units.

        The statistical quantity that drives convergence is the
        *absolute* batch size (gradient noise scales with 1/sqrt(b)), so
        the physical batch matches the simulated one, capped by the
        physical rows available.
        """
        return max(1, min(int(sim_size), self.dataset.n_phys))

    def _physical_batch(self, lo, hi, size):
        """Draw ``size`` physical rows from [lo, hi).

        Draws without replacement when possible; tops up with replacement
        when the physical slice is smaller than the requested batch (the
        physical data is a scaled-down stand-in for the simulated rows).
        """
        span = hi - lo
        if span <= 0:
            raise PlanError("partition has no physical rows")
        if size <= span:
            return lo + self.rng.choice(span, size=size, replace=False)
        base = lo + self.rng.permutation(span)
        extra = lo + self.rng.integers(0, span, size=size - span)
        return np.concatenate([base, extra])

    def draw(self) -> SampleDraw:  # pragma: no cover - interface
        raise NotImplementedError

    # -- carry-over hooks ------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-ready snapshot of sampler-internal cursors ({} if none).

        The RNG stream is *not* part of it -- the executor snapshots the
        shared RNG once for the whole run (samplers draw from it).
        """
        return {}

    def load_state(self, payload) -> None:
        """Restore cursors captured by :meth:`state_dict`."""


class BernoulliSampler(_SamplerBase):
    """Full-scan Bernoulli sampling (the MLlib mechanism).

    The inclusion test is charged for every simulated row.  The realised
    sample size is Poisson-distributed around the requested batch size --
    including the possibility of an *empty* sample, in which case the scan
    is repeated (the paper discusses MLlib's mitigation of exactly this).
    """

    name = "bernoulli"

    def draw(self) -> SampleDraw:
        engine, ds = self.engine, self.dataset
        spec = engine.spec
        attempts = 0
        size = 0
        while size == 0:
            engine.scan(ds, phase="sample", cpu_per_row_s=spec.sample_test_s)
            size = int(self.rng.poisson(self.batch_size))
            attempts += 1
            if attempts >= 8 and size == 0:
                # Pathological only for batch sizes << 1; give up gracefully.
                size = 1
        phys = min(self._physical_size(size), ds.n_phys)
        indices = self._physical_batch(0, ds.n_phys, phys)
        return SampleDraw(indices, sim_size=size,
                          partitions=tuple(range(ds.n_partitions)))


class RandomPartitionSampler(_SamplerBase):
    """Random partition, then random data units inside it."""

    name = "random"

    def draw(self) -> SampleDraw:
        engine, ds = self.engine, self.dataset
        pid = int(self.rng.integers(0, ds.n_partitions))
        part = ds.partitions[pid]
        size = min(self.batch_size, part.sim_rows)
        row_bytes = ds.stats.bytes_per_row(ds.representation)
        engine.random_access(
            ds, n_accesses=size, bytes_each=int(np.ceil(row_bytes)), phase="sample"
        )
        indices = self._physical_batch(
            part.phys_lo, part.phys_hi, self._physical_size(size)
        )
        return SampleDraw(indices, sim_size=size, partitions=(pid,))


class ShuffledPartitionSampler(_SamplerBase):
    """Shuffle one partition once; then serve samples sequentially.

    Maintains a cursor over the current partition's simulated rows and a
    permutation of its physical rows.  When fewer simulated rows remain
    than the batch requires, a new random partition is shuffled (paper:
    "Whenever there are not enough data units left in the partition to
    sample, it randomly selects a second partition and shuffles it").
    """

    name = "shuffle"

    def __init__(self, engine, dataset, batch_size, rng):
        super().__init__(engine, dataset, batch_size, rng)
        self._pid = None
        self._sim_cursor = 0
        self._phys_order = None
        self._phys_cursor = 0

    def _load_new_partition(self):
        ds = self.dataset
        self._pid = int(self.rng.integers(0, ds.n_partitions))
        part = ds.partitions[self._pid]
        self.engine.shuffle_partition(ds, self._pid, phase="sample")
        self._sim_cursor = 0
        self._phys_order = part.phys_lo + self.rng.permutation(part.phys_rows)
        self._phys_cursor = 0

    def _next_physical(self, size):
        """Next ``size`` physical rows from the permuted order (wrapping)."""
        out = np.empty(size, dtype=np.int64)
        filled = 0
        while filled < size:
            available = len(self._phys_order) - self._phys_cursor
            take = min(available, size - filled)
            out[filled:filled + take] = self._phys_order[
                self._phys_cursor:self._phys_cursor + take
            ]
            self._phys_cursor += take
            filled += take
            if self._phys_cursor >= len(self._phys_order):
                self._phys_cursor = 0
        return out

    def draw(self) -> SampleDraw:
        ds = self.dataset
        new_segment = False
        if self._pid is None:
            self._load_new_partition()
            new_segment = True
        part = ds.partitions[self._pid]
        if self._sim_cursor + self.batch_size > part.sim_rows:
            self._load_new_partition()
            part = ds.partitions[self._pid]
            new_segment = True
        size = min(self.batch_size, part.sim_rows)
        row_bytes = ds.stats.bytes_per_row(ds.representation)
        self.engine.sequential_read(
            ds, nbytes=size * row_bytes, phase="sample", new_segment=new_segment
        )
        self._sim_cursor += size
        indices = self._next_physical(self._physical_size(size))
        return SampleDraw(indices, sim_size=size, partitions=(self._pid,))

    def state_dict(self):
        if self._pid is None:
            return {}
        return {
            "pid": int(self._pid),
            "sim_cursor": int(self._sim_cursor),
            "phys_order": [int(v) for v in self._phys_order],
            "phys_cursor": int(self._phys_cursor),
        }

    def load_state(self, payload):
        if not payload or "pid" not in payload:
            return
        self._pid = int(payload["pid"])
        self._sim_cursor = int(payload["sim_cursor"])
        self._phys_order = np.asarray(payload["phys_order"], dtype=np.int64)
        self._phys_cursor = int(payload["phys_cursor"])


class FullScanSampler(_SamplerBase):
    """Degenerate "sampler" returning the whole dataset (BGD plans).

    Exists so the executor can treat BGD uniformly; it charges nothing
    itself because the Compute scan already pays for reading the data.
    """

    name = "full"

    def draw(self) -> SampleDraw:
        ds = self.dataset
        return SampleDraw(
            np.arange(ds.n_phys),
            sim_size=ds.stats.n,
            partitions=tuple(range(ds.n_partitions)),
        )
