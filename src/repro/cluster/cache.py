"""Spark-like storage-memory cache for the simulated cluster.

Datasets scanned by the engine are inserted into a fixed-size cache (the
cluster's aggregate Spark storage memory).  A dataset larger than the
remaining capacity is cached *partially*, exactly like Spark's
``MEMORY_ONLY`` persistence: the cached fraction is served from memory on
subsequent scans while the remainder is re-read from disk.  This is the
mechanism behind the paper's svm3 observations ("does not fit entirely into
Spark cache memory ... MLlib incurred disk IOs in each iteration").

Eviction is LRU at whole-dataset granularity, which is how iterative ML
workloads behave in practice (one RDD per representation of a dataset).
"""

from __future__ import annotations

import collections


class CacheManager:
    """Tracks which fraction of each dataset representation is in memory."""

    def __init__(self, capacity_bytes):
        if capacity_bytes < 0:
            raise ValueError("cache capacity must be non-negative")
        self.capacity_bytes = int(capacity_bytes)
        # key -> cached bytes; ordered dict gives us LRU order.
        self._entries = collections.OrderedDict()

    # ------------------------------------------------------------------
    @staticmethod
    def key_for(dataset) -> tuple:
        """Cache key of a :class:`PartitionedDataset` representation."""
        return (dataset.dataset_id, dataset.representation)

    @property
    def used_bytes(self) -> int:
        return sum(self._entries.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def cached_bytes(self, dataset) -> int:
        """Bytes of ``dataset`` currently resident in memory."""
        return self._entries.get(self.key_for(dataset), 0)

    def cached_fraction(self, dataset) -> float:
        total = dataset.total_bytes
        if total == 0:
            return 1.0
        return min(1.0, self.cached_bytes(dataset) / total)

    # ------------------------------------------------------------------
    def touch(self, dataset) -> None:
        """Mark ``dataset`` as most-recently-used."""
        key = self.key_for(dataset)
        if key in self._entries:
            self._entries.move_to_end(key)

    def insert(self, dataset, memory_overhead=1.0) -> float:
        """Cache as much of ``dataset`` as fits; return the cached fraction.

        ``memory_overhead`` inflates the in-memory footprint relative to
        the on-disk bytes (e.g. JVM object overhead for MLlib's
        ``RDD[LabeledPoint]``; the paper's Section 8.4 attributes part of
        MLlib's slowdown to exactly this).
        """
        key = self.key_for(dataset)
        want = int(dataset.total_bytes * memory_overhead)
        self._entries.pop(key, None)
        self._evict_until(max(0, want))
        grant = min(want, self.free_bytes)
        if grant > 0:
            self._entries[key] = grant
        if want == 0:
            return 1.0
        return grant / want

    def evict(self, dataset) -> None:
        """Drop ``dataset`` from the cache (e.g. unpersist)."""
        self._entries.pop(self.key_for(dataset), None)

    def _evict_until(self, want_bytes) -> None:
        """LRU-evict entries until ``want_bytes`` could fit (best effort)."""
        want = min(want_bytes, self.capacity_bytes)
        while self.free_bytes < want and self._entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __repr__(self):  # pragma: no cover - debugging aid
        return (
            f"<CacheManager used={self.used_bytes:,}/{self.capacity_bytes:,} "
            f"entries={len(self._entries)}>"
        )
