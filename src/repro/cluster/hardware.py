"""Hardware description of the simulated cluster.

The paper evaluates ML4all on a 4-node cluster (4x4 Xeon cores per node,
30 GB RAM, 250 GB disk, 10 Gbit switch) running Spark 1.6.2 over HDFS
(Section 8.1).  :class:`ClusterSpec` captures that testbed as a set of cost
constants used by both

* the *cost model* (``repro.core.cost_model``), which computes the paper's
  closed-form operator costs (formulas 3-9), and
* the *execution engine* (``repro.cluster.engine``), which charges a
  simulated clock from fine-grained events (page reads, seeks, per-row CPU,
  packets, job launches) while real numpy math runs.

All time constants are in **seconds**, all sizes in **bytes**.  The default
values are calibrated so that simulated training times land in the same
order of magnitude as the wall-clock times the paper reports; see DESIGN.md
section 3 for the calibration rationale.
"""

from __future__ import annotations

import dataclasses
import math


#: Number of bytes a double-precision value occupies in binary representation.
DOUBLE_BYTES = 8

#: Bytes of one (index, value) pair in a sparse binary row: int32 + float64.
SPARSE_ENTRY_BYTES = 12


@dataclasses.dataclass(frozen=True)
class ClusterSpec:
    """Immutable description of the simulated cluster hardware.

    Parameters mirror Table 1 of the paper where applicable:

    * ``page_bytes``        -- "data unit for storage access" (|page|_b)
    * ``packet_bytes``      -- "maximum network data unit" (|packet|_b)
    * ``hdfs_block_bytes``  -- data partition size (|P|_b)
    * ``cap``               -- #processes able to run in parallel (property)
    * ``seek_disk_s`` / ``seek_mem_s``       -- SK
    * ``page_io_disk_s`` / ``page_io_mem_s`` -- pageIO
    * ``network_byte_s`` + ``packet_latency_s`` -- NT

    CPU constants are expressed per *simulated* data unit (row) and scale
    with the number of non-zero features in a row (``*_per_nnz_s``) plus a
    fixed per-row component (``*_base_s``).
    """

    # --- topology -------------------------------------------------------
    n_nodes: int = 4
    slots_per_node: int = 4

    # --- storage --------------------------------------------------------
    hdfs_block_bytes: int = 128 * 1024 * 1024
    page_bytes: int = 64 * 1024
    #: Sequential page read from disk (~400 MB/s per slot).
    page_io_disk_s: float = 160e-6
    #: Sequential page read from (cache) memory (~4 GB/s per slot).
    page_io_mem_s: float = 16e-6
    #: Disk seek (start of a partition scan or a random access).
    seek_disk_s: float = 2e-3
    #: Memory "seek" (pointer chase into a cached partition).
    seek_mem_s: float = 5e-6

    # --- network (10 Gbit switch ~ 1.25 GB/s) ---------------------------
    packet_bytes: int = 64 * 1024
    network_byte_s: float = 0.8e-9
    packet_latency_s: float = 50e-6

    # --- Spark-like runtime ---------------------------------------------
    #: Fixed cost of launching one distributed job (scheduling + task dispatch).
    job_overhead_s: float = 0.025
    #: Fixed cost of one local (driver/"Java") operator invocation.
    local_overhead_s: float = 2e-6
    #: Fixed per-loop-iteration plumbing cost (operator dispatch, driver
    #: bookkeeping, closure shipping).  The paper's Figure 11 implies tens
    #: of milliseconds per iteration even for driver-local SGD on the
    #: smallest dataset, for ML4all and hand-coded Spark alike.
    iteration_overhead_s: float = 0.02
    #: Storage memory available for caching datasets across the cluster.
    cache_bytes: int = 100 * 1024 * 1024 * 1024

    # --- per-row CPU constants ------------------------------------------
    #: Parsing one text row into a binary data unit (Transform).
    transform_base_s: float = 0.5e-6
    transform_per_nnz_s: float = 0.10e-6
    #: Gradient computation for one data unit (Compute).
    compute_base_s: float = 0.05e-6
    compute_per_nnz_s: float = 0.010e-6
    #: Bernoulli inclusion test for one data unit (Sample).
    sample_test_s: float = 0.02e-6
    #: Shuffling one data unit in place (shuffled-partition preparation).
    shuffle_per_row_s: float = 0.05e-6
    #: Weight-vector update, per feature (Update).
    update_per_dim_s: float = 0.010e-6
    #: Convergence-delta computation, per feature (Converge).
    converge_per_dim_s: float = 0.010e-6
    #: Loop-condition check (Loop), fixed.
    loop_s: float = 1e-6

    # --- stochastic realism ----------------------------------------------
    #: Log-normal sigma applied by the engine to every charged duration.
    #: The closed-form cost model ignores it, so estimated and "actual"
    #: simulated times diverge realistically (paper reports <= 17% error).
    jitter_sigma: float = 0.05

    @property
    def cap(self) -> int:
        """#processes able to run in parallel (Table 1: cap)."""
        return self.n_nodes * self.slots_per_node

    # ----- derived helpers used by both cost model and engine ----------

    def pages_in(self, nbytes) -> int:
        """Number of storage pages needed to hold ``nbytes``."""
        return max(1, math.ceil(nbytes / self.page_bytes))

    def packets_in(self, nbytes) -> int:
        """Number of network packets needed to transfer ``nbytes``."""
        return max(1, math.ceil(nbytes / self.packet_bytes))

    def sequential_read_s(self, nbytes, in_memory) -> float:
        """Cost of one sequential scan of ``nbytes`` from one storage source."""
        page_io = self.page_io_mem_s if in_memory else self.page_io_disk_s
        seek = self.seek_mem_s if in_memory else self.seek_disk_s
        return seek + self.pages_in(nbytes) * page_io

    def random_read_s(self, nbytes, in_memory) -> float:
        """Cost of one random access fetching ``nbytes`` (seek + pages)."""
        page_io = self.page_io_mem_s if in_memory else self.page_io_disk_s
        seek = self.seek_mem_s if in_memory else self.seek_disk_s
        return seek + self.pages_in(nbytes) * page_io

    def transfer_s(self, nbytes) -> float:
        """Network transfer cost of ``nbytes`` (formula 5 granularity)."""
        n_packets = self.packets_in(nbytes)
        return n_packets * (self.packet_bytes * self.network_byte_s
                            + self.packet_latency_s)

    def waves(self, n_partitions) -> float:
        """Number of execution waves for ``n_partitions`` (Table 1: w(D))."""
        return n_partitions / self.cap

    def with_overrides(self, **kwargs) -> "ClusterSpec":
        """Return a copy of this spec with selected fields replaced."""
        return dataclasses.replace(self, **kwargs)


def laptop_scale_spec(**overrides) -> ClusterSpec:
    """A :class:`ClusterSpec` with a small cache for quick local experiments.

    Useful in tests that want to exercise cache-spill behaviour without
    simulating 100 GB datasets.
    """
    spec = ClusterSpec(cache_bytes=64 * 1024 * 1024, job_overhead_s=0.005)
    if overrides:
        spec = spec.with_overrides(**overrides)
    return spec
