"""Network-transfer cost helpers for the simulated cluster.

The paper's Update operator is "the only operator that involves network
transfers in its cost because all the data units output by the Compute
should be aggregated and thus, sent to a single node" (Section 7.1).  Two
aggregation topologies are modelled:

* :func:`reduce_to_driver` -- ML4all's ``mapPartitions + reduce``: every
  active partition ships its partial aggregate straight to the driver.
* :func:`tree_aggregate` -- MLlib's ``treeAggregate``: partials are first
  combined in ``depth - 1`` intermediate shuffle levels, adding per-level
  latency and extra transfers.  The paper credits ML4all's BGD advantage
  over MLlib partly to avoiding this (Section 8.4.1).
"""

from __future__ import annotations

import math


def reduce_to_driver(spec, n_partials, vector_bytes):
    """Cost (seconds, bytes) of reducing ``n_partials`` vectors at the driver.

    Transfers overlap across the switch, so the charged time is the cost of
    the driver *receiving* all partials serialised through its single link,
    which is how a reduce to one node actually bottlenecks.
    """
    if n_partials <= 0:
        return 0.0, 0
    total_bytes = n_partials * vector_bytes
    return spec.transfer_s(total_bytes), total_bytes


def tree_aggregate(spec, n_partials, vector_bytes, depth=2):
    """Cost (seconds, bytes) of a treeAggregate with the given depth.

    Each level combines groups of ``scale = ceil(n^(1/depth))`` partials.
    Every level adds a synchronisation barrier (job-launch latency) plus
    the transfer of the surviving partials.
    """
    if n_partials <= 0:
        return 0.0, 0
    depth = max(1, depth)
    scale = max(2, math.ceil(n_partials ** (1.0 / depth)))
    seconds = 0.0
    total_bytes = 0
    remaining = n_partials
    while remaining > 1:
        seconds += spec.job_overhead_s  # per-level barrier
        level_bytes = remaining * vector_bytes
        seconds += spec.transfer_s(level_bytes)
        total_bytes += level_bytes
        remaining = math.ceil(remaining / scale)
    return seconds, total_bytes


def broadcast(spec, n_nodes, vector_bytes):
    """Cost (seconds, bytes) of broadcasting a vector to every node.

    Spark uses a BitTorrent-style broadcast; we charge a log2 relay chain.
    """
    if n_nodes <= 1:
        return 0.0, 0
    hops = max(1, math.ceil(math.log2(n_nodes)))
    per_hop, _ = spec.transfer_s(vector_bytes), vector_bytes
    return hops * per_hop, hops * vector_bytes
