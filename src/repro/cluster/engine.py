"""Wave-based execution engine for the simulated cluster.

:class:`SimulatedCluster` is the stand-in for the paper's Spark/HDFS
testbed.  Callers (the GD plan executor, the samplers, the baseline
systems) invoke storage/compute/network primitives; each primitive

* advances a **simulated clock** using the :class:`ClusterSpec` cost
  constants, modelling waves of parallel partitions, cache hits vs disk
  reads, stragglers (via seeded log-normal jitter) and per-job overheads,
  and
* records :class:`~repro.cluster.metrics.MetricsRecorder` counters so the
  harness can explain plan costs.

The engine charges costs only -- the actual numeric work (gradients,
updates) is performed by the caller on the physical numpy arrays.  This
split is what makes the reproduction honest: convergence behaviour is
real, execution time is simulated from the same micro-events the paper's
cost model reasons about.
"""

from __future__ import annotations

import math

import numpy as np

from repro.cluster.cache import CacheManager
from repro.cluster.hardware import ClusterSpec
from repro.cluster.metrics import MetricsRecorder
from repro.cluster import network


class SimulatedCluster:
    """A simulated Spark-like cluster with a global simulated clock."""

    def __init__(self, spec=None, seed=0):
        self.spec = spec or ClusterSpec()
        self.cache = CacheManager(self.spec.cache_bytes)
        self.metrics = MetricsRecorder()
        self.clock = 0.0
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # clock & bookkeeping
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero the clock and metrics; drop the cache."""
        self.clock = 0.0
        self.metrics = MetricsRecorder()
        self.cache.clear()

    @property
    def rng(self) -> np.random.Generator:
        """Shared RNG; samplers derive their randomness from it."""
        return self._rng

    def _jitter(self) -> float:
        sigma = self.spec.jitter_sigma
        if sigma <= 0:
            return 1.0
        return float(np.exp(self._rng.normal(0.0, sigma)))

    def _jitter_vec(self, size) -> np.ndarray:
        sigma = self.spec.jitter_sigma
        if sigma <= 0:
            return np.ones(size)
        return np.exp(self._rng.normal(0.0, sigma, size=size))

    def charge(self, seconds, phase, jitter=True) -> float:
        """Advance the clock by ``seconds`` (optionally jittered)."""
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        if jitter:
            seconds *= self._jitter()
        self.clock += seconds
        self.metrics.record_time(phase, seconds)
        return seconds

    # ------------------------------------------------------------------
    # runtime primitives
    # ------------------------------------------------------------------
    def job(self, phase) -> None:
        """Charge the launch overhead of one distributed job."""
        self.metrics.phase(phase).jobs += 1
        self.charge(self.spec.job_overhead_s, phase)

    def local_op(self, phase, seconds=None) -> None:
        """Charge a driver-local operator invocation."""
        self.charge(self.spec.local_overhead_s + (seconds or 0.0), phase)

    # ------------------------------------------------------------------
    def _partition_io_seconds(self, part_bytes, cached_fraction):
        """IO seconds to read ``part_bytes`` given a cached fraction."""
        spec = self.spec
        mem_bytes = part_bytes * cached_fraction
        disk_bytes = part_bytes - mem_bytes
        seconds = mem_bytes / spec.page_bytes * spec.page_io_mem_s
        seconds += disk_bytes / spec.page_bytes * spec.page_io_disk_s
        seconds += spec.seek_disk_s if disk_bytes > 0 else spec.seek_mem_s
        return seconds

    def scan(
        self,
        dataset,
        phase,
        cpu_per_row_s=0.0,
        partitions=None,
        cache=True,
        memory_overhead=1.0,
        distributed=None,
    ):
        """Scan ``dataset`` (or a subset of its partitions) once.

        Models Spark's wave execution: partitions are processed ``cap`` at
        a time; each wave costs the maximum of its partitions' (jittered)
        IO + CPU times; waves are sequential.  Returns the charged seconds.

        ``cpu_per_row_s`` is charged per *simulated* row.  When ``cache``
        is true the dataset is (re-)inserted into the cluster cache after
        the scan, with ``memory_overhead`` inflating its in-memory
        footprint (JVM object overhead for some baselines).
        """
        spec = self.spec
        parts = dataset.partitions if partitions is None else [
            dataset.partitions[pid] for pid in partitions
        ]
        if not parts:
            return 0.0
        if distributed is None:
            distributed = len(dataset.partitions) > 1
        if distributed:
            self.job(phase)
        else:
            self.local_op(phase)

        cached_fraction = self.cache.cached_fraction(dataset)
        io = np.array(
            [self._partition_io_seconds(p.sim_bytes, cached_fraction) for p in parts]
        )
        cpu = np.array([p.sim_rows * cpu_per_row_s for p in parts], dtype=float)
        times = (io + cpu) * self._jitter_vec(len(parts))

        cap = spec.cap
        n_waves = math.ceil(len(parts) / cap)
        wave_seconds = 0.0
        for w in range(n_waves):
            wave_seconds += float(times[w * cap:(w + 1) * cap].max())
        self.charge(wave_seconds, phase, jitter=False)

        m = self.metrics.phase(phase)
        total_bytes = sum(p.sim_bytes for p in parts)
        mem_bytes = int(total_bytes * cached_fraction)
        m.pages_mem += spec.pages_in(mem_bytes) if mem_bytes else 0
        m.pages_disk += (
            spec.pages_in(total_bytes - mem_bytes) if total_bytes > mem_bytes else 0
        )
        m.seeks += len(parts)
        m.cpu_seconds += float(cpu.sum())
        m.rows_processed += int(sum(p.sim_rows for p in parts))

        if cache and partitions is None:
            self.cache.insert(dataset, memory_overhead=memory_overhead)
        self.cache.touch(dataset)
        return wave_seconds

    def sequential_read(self, dataset, nbytes, phase, new_segment=False):
        """Sequential read of ``nbytes`` from one partition of ``dataset``.

        Used by the shuffled-partition sampler: after the one-time shuffle,
        every sample is a cursor advance.  Fractional pages are allowed so
        a 1-row SGD read does not get rounded up to a full page each
        iteration (the cursor shares pages across iterations).
        """
        spec = self.spec
        in_memory = self.cache.cached_fraction(dataset) > 0.999
        page_io = spec.page_io_mem_s if in_memory else spec.page_io_disk_s
        seconds = nbytes / spec.page_bytes * page_io
        if new_segment:
            seconds += spec.seek_mem_s if in_memory else spec.seek_disk_s
            self.metrics.phase(phase).seeks += 1
        m = self.metrics.phase(phase)
        if in_memory:
            m.pages_mem += max(1, round(nbytes / spec.page_bytes))
        else:
            m.pages_disk += max(1, round(nbytes / spec.page_bytes))
        return self.charge(seconds, phase)

    def random_access(self, dataset, n_accesses, bytes_each, phase):
        """``n_accesses`` random point reads of ``bytes_each`` bytes.

        Used by the random-partition sampler, whose weakness is exactly
        "the large number of random accesses" (Section 6).
        """
        spec = self.spec
        in_memory = self.cache.cached_fraction(dataset) > 0.999
        seek = spec.seek_mem_s if in_memory else spec.seek_disk_s
        page_io = spec.page_io_mem_s if in_memory else spec.page_io_disk_s
        pages_per_access = spec.pages_in(bytes_each)
        seconds = n_accesses * (seek + pages_per_access * page_io)
        m = self.metrics.phase(phase)
        m.seeks += n_accesses
        if in_memory:
            m.pages_mem += n_accesses * pages_per_access
        else:
            m.pages_disk += n_accesses * pages_per_access
        return self.charge(seconds, phase)

    def shuffle_partition(self, dataset, pid, phase):
        """Read, permute and rewrite one partition (shuffled-partition prep)."""
        spec = self.spec
        part = dataset.partitions[pid]
        cached_fraction = self.cache.cached_fraction(dataset)
        read_s = self._partition_io_seconds(part.sim_bytes, cached_fraction)
        cpu_s = part.sim_rows * spec.shuffle_per_row_s
        # The permuted copy is written back to executor memory.
        write_s = part.sim_bytes / spec.page_bytes * spec.page_io_mem_s
        m = self.metrics.phase(phase)
        m.rows_processed += part.sim_rows
        m.cpu_seconds += cpu_s
        m.pages_mem += spec.pages_in(part.sim_bytes)
        return self.charge(read_s + cpu_s + write_s, phase)

    # ------------------------------------------------------------------
    def aggregate(self, n_partials, vector_bytes, phase, tree=False, depth=2):
        """Aggregate ``n_partials`` partial vectors at the driver (Update)."""
        if tree:
            seconds, nbytes = network.tree_aggregate(
                self.spec, n_partials, vector_bytes, depth=depth
            )
        else:
            seconds, nbytes = network.reduce_to_driver(
                self.spec, n_partials, vector_bytes
            )
        m = self.metrics.phase(phase)
        m.network_bytes += nbytes
        m.packets += self.spec.packets_in(nbytes) if nbytes else 0
        return self.charge(seconds, phase)

    def collect(self, nbytes, phase):
        """Ship ``nbytes`` (e.g. a sampled batch) to the driver."""
        seconds = self.spec.transfer_s(nbytes)
        m = self.metrics.phase(phase)
        m.network_bytes += nbytes
        m.packets += self.spec.packets_in(nbytes)
        return self.charge(seconds, phase)

    def broadcast_weights(self, vector_bytes, phase):
        """Broadcast the model vector to every node for the next iteration."""
        seconds, nbytes = network.broadcast(
            self.spec, self.spec.n_nodes, vector_bytes
        )
        m = self.metrics.phase(phase)
        m.network_bytes += nbytes
        return self.charge(seconds, phase)

    def write_dataset(self, dataset, phase):
        """Write a full dataset (e.g. SystemML binary-block conversion)."""
        spec = self.spec
        nbytes = dataset.total_bytes
        # Disk-write the bytes spread across the available parallel writers.
        writers = min(spec.cap, max(1, dataset.n_partitions))
        seconds = (
            dataset.n_partitions * spec.seek_disk_s
            + nbytes / spec.page_bytes * spec.page_io_disk_s
        ) / writers
        self.metrics.phase(phase).pages_disk += spec.pages_in(nbytes)
        return self.charge(seconds, phase)
