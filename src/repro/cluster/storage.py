"""Partitioned dataset storage: the simulated HDFS layer.

A :class:`PartitionedDataset` pairs

* **physical data** -- the numpy / scipy arrays the math actually runs on,
  typically a ~100x scaled-down sample of the paper's dataset, and
* **simulated statistics** -- the row count and byte sizes of the *paper
  scale* dataset, restored through a ``sim_replication`` factor.

The byte model distinguishes a ``text`` representation (the raw CSV /
LIBSVM file the Transform operator parses) from the ``binary``
representation produced by Transform; lazy-transformation plans read text
bytes inside the loop, eager plans pay the parse once (Section 6).

Partitions are HDFS-like blocks.  Each partition knows its simulated row
span and byte size *and* the physical row slice standing in for it, so
partition-local sampling (random-partition, shuffled-partition) sees the
same row-order skew as the paper's storage layout.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import math

import numpy as np
from scipy import sparse as sp

from repro.cluster.hardware import DOUBLE_BYTES, SPARSE_ENTRY_BYTES, ClusterSpec
from repro.errors import PlanError

_dataset_ids = itertools.count(1)

#: Average text characters used to serialise one dense feature ("0.12345,").
TEXT_BYTES_PER_DENSE_VALUE = 8
#: Average text characters for one sparse "index:value" entry.
TEXT_BYTES_PER_SPARSE_ENTRY = 12
#: Text characters for the label and the line terminator.
TEXT_BYTES_PER_ROW_BASE = 4


def text_bytes_per_row(d, density, is_sparse) -> float:
    """Average raw-text bytes of one data unit."""
    if is_sparse:
        nnz = max(1.0, d * density)
        return TEXT_BYTES_PER_ROW_BASE + nnz * TEXT_BYTES_PER_SPARSE_ENTRY
    return TEXT_BYTES_PER_ROW_BASE + d * TEXT_BYTES_PER_DENSE_VALUE


def binary_bytes_per_row(d, density, is_sparse) -> float:
    """Average parsed (binary) bytes of one data unit."""
    if is_sparse:
        nnz = max(1.0, d * density)
        return DOUBLE_BYTES + nnz * SPARSE_ENTRY_BYTES
    return DOUBLE_BYTES + d * DOUBLE_BYTES


@dataclasses.dataclass(frozen=True)
class DatasetStats:
    """Simulated (paper-scale) statistics of a dataset.

    These are the quantities Table 1 of the paper feeds into the cost
    model: n (#data units), d (#features), byte sizes, and the storage
    layout derived from them.
    """

    name: str
    task: str
    n: int
    d: int
    density: float = 1.0
    is_sparse: bool = False
    #: Optional overrides so registry datasets can match the exact file
    #: sizes of the paper's Table 2 (text encodings vary per dataset).
    row_text_bytes: float | None = None
    row_binary_bytes: float | None = None

    @property
    def nnz_per_row(self) -> float:
        """Average number of non-zero features per data unit."""
        if self.is_sparse:
            return max(1.0, self.d * self.density)
        return float(self.d)

    @property
    def text_bytes(self) -> int:
        return int(self.n * self.bytes_per_row("text"))

    @property
    def binary_bytes(self) -> int:
        return int(self.n * self.bytes_per_row("binary"))

    def bytes_for(self, representation) -> int:
        """Total bytes of the dataset in ``"text"`` or ``"binary"`` form."""
        if representation == "text":
            return self.text_bytes
        if representation == "binary":
            return self.binary_bytes
        raise PlanError(f"unknown representation {representation!r}")

    def bytes_per_row(self, representation) -> float:
        if representation == "text":
            if self.row_text_bytes is not None:
                return self.row_text_bytes
            return text_bytes_per_row(self.d, self.density, self.is_sparse)
        if representation == "binary":
            if self.row_binary_bytes is not None:
                return self.row_binary_bytes
            return binary_bytes_per_row(self.d, self.density, self.is_sparse)
        raise PlanError(f"unknown representation {representation!r}")

    @property
    def weight_vector_bytes(self) -> int:
        """Bytes of one model vector (dense, d doubles)."""
        return self.d * DOUBLE_BYTES


@dataclasses.dataclass(frozen=True)
class Partition:
    """One HDFS-like block of a partitioned dataset."""

    pid: int
    #: Simulated data units stored in this block.
    sim_rows: int
    #: Simulated bytes of this block in the dataset's *current* representation.
    sim_bytes: int
    #: Physical row slice [phys_lo, phys_hi) standing in for this block.
    phys_lo: int
    phys_hi: int

    @property
    def phys_rows(self) -> int:
        return self.phys_hi - self.phys_lo


class PartitionedDataset:
    """A dataset laid out as HDFS-like partitions on the simulated cluster.

    Parameters
    ----------
    X, y:
        Physical feature matrix (ndarray or CSR) and labels.
    stats:
        Paper-scale :class:`DatasetStats`.  ``stats.n`` may exceed
        ``X.shape[0]``; the ratio is the ``sim_replication`` factor.
    spec:
        Cluster description; supplies the HDFS block size.
    representation:
        ``"text"`` for a raw (un-parsed) file, ``"binary"`` once
        transformed.  Eager transformation produces a *new*
        PartitionedDataset via :meth:`as_binary`.
    """

    def __init__(self, X, y, stats, spec=None, representation="text"):
        spec = spec or ClusterSpec()
        n_phys = X.shape[0]
        if n_phys == 0:
            raise PlanError("cannot partition an empty dataset")
        if y.shape[0] != n_phys:
            raise PlanError(
                f"X has {n_phys} rows but y has {y.shape[0]} labels"
            )
        if stats.n < n_phys:
            raise PlanError(
                f"simulated row count {stats.n} is smaller than the physical "
                f"row count {n_phys}; sim_replication must be >= 1"
            )
        self.dataset_id = next(_dataset_ids)
        self.X = X
        self.y = y
        self.stats = stats
        self.spec = spec
        self.representation = representation
        self.partitions = self._build_partitions()
        self._binary_form = None
        self._content_digest = None

    # ------------------------------------------------------------------
    @property
    def n_phys(self) -> int:
        return self.X.shape[0]

    @property
    def sim_replication(self) -> float:
        """How many simulated rows each physical row stands for."""
        return self.stats.n / self.n_phys

    @property
    def total_bytes(self) -> int:
        return self.stats.bytes_for(self.representation)

    @property
    def n_partitions(self) -> int:
        return len(self.partitions)

    @property
    def is_sparse(self) -> bool:
        return sp.issparse(self.X)

    def _build_partitions(self):
        total_bytes = self.total_bytes
        block = self.spec.hdfs_block_bytes
        n_parts = max(1, math.ceil(total_bytes / block))
        # A block cannot hold fewer than one physical row; clamp so every
        # partition has at least one physical row to run real math on.
        n_parts = min(n_parts, self.n_phys)
        sim_rows_total = self.stats.n
        partitions = []
        for pid in range(n_parts):
            sim_lo = pid * sim_rows_total // n_parts
            sim_hi = (pid + 1) * sim_rows_total // n_parts
            phys_lo = pid * self.n_phys // n_parts
            phys_hi = (pid + 1) * self.n_phys // n_parts
            sim_rows = sim_hi - sim_lo
            sim_bytes = int(
                sim_rows * self.stats.bytes_per_row(self.representation)
            )
            partitions.append(
                Partition(pid, sim_rows, sim_bytes, phys_lo, phys_hi)
            )
        return partitions

    # ------------------------------------------------------------------
    def rows(self, indices):
        """Physical feature rows / labels for the given physical indices."""
        return self.X[indices], self.y[indices]

    def partition_rows(self, pid):
        """All physical rows of partition ``pid``."""
        part = self.partitions[pid]
        idx = np.arange(part.phys_lo, part.phys_hi)
        return idx

    def as_binary(self) -> "PartitionedDataset":
        """The same data after Transform: binary representation.

        Physical arrays are shared (parsing is deterministic); only the
        byte model and partition layout change.  The binary form is
        memoized so repeated calls return the *same* dataset identity --
        cache residency established by one plan execution is then visible
        to the next one, like a persisted RDD.
        """
        if self.representation == "binary":
            return self
        if self._binary_form is None:
            self._binary_form = PartitionedDataset(
                self.X, self.y, self.stats, self.spec,
                representation="binary",
            )
        return self._binary_form

    def content_digest(self) -> str:
        """Digest of the physical arrays (memoized).

        Distinguishes datasets whose *statistics* coincide but whose
        data differ -- anything data-dependent (e.g. speculative
        iteration estimates) must key on this, not just on ``stats``.
        """
        if self._content_digest is None:
            digest = hashlib.sha256()
            if sp.issparse(self.X):
                csr = self.X.tocsr()
                digest.update(csr.data.tobytes())
                digest.update(csr.indices.tobytes())
                digest.update(csr.indptr.tobytes())
            else:
                digest.update(np.ascontiguousarray(self.X).tobytes())
            digest.update(np.ascontiguousarray(self.y).tobytes())
            self._content_digest = digest.hexdigest()
        return self._content_digest

    def describe(self) -> str:
        return (
            f"{self.stats.name}: task={self.stats.task} n={self.stats.n:,} "
            f"(physical {self.n_phys:,}) d={self.stats.d} "
            f"density={self.stats.density:g} repr={self.representation} "
            f"bytes={self.total_bytes:,} partitions={self.n_partitions}"
        )

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<PartitionedDataset {self.describe()}>"
