"""The seven GD operators (Section 4 of the paper).

    Preparation  : Transform, Stage
    Processing   : Compute, Update, Sample (optional)
    Convergence  : Converge, Loop

The paper exposes these as UDFs over single data units; this reproduction
keeps the same operator boundaries but lets each operator work on a
*batch* of data units at once (a numpy matrix slice), which is the
vectorised equivalent -- semantics per unit are unchanged, and the
executor still invokes ``Compute`` once per partition so that partial
aggregation and the Compute/Update separation (the key to parallelism,
Section 4.2) remain visible in the execution trace.

Why two preparation operators?  "GD algorithms need to transform the
entire input dataset, but, to set their global variables, they usually
need no (or a small sample of) input data" (Section 4.1).  Why two
processing operators?  Merging them "would lead to centralizing the
process phase" (Section 4.2) -- this is what the Bismarck baseline does,
and what Figure 11 punishes.
"""

from __future__ import annotations


class Operator:
    """Base class for all GD operators."""

    name = "operator"

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class Transform(Operator):
    """Prepares input data units: ``Transform(U) -> U_T``.

    Parses / normalises raw data units so the processing phase can consume
    them (Listing 1 parses a CSV line into a double[]).
    """

    name = "transform"

    def transform(self, X, y, context):
        """Transform a batch of raw data units; returns ``(X_T, y_T)``."""
        raise NotImplementedError


class Stage(Operator):
    """Sets initial values for all algorithm-specific parameters.

    ``Stage(null | U_T | list<U_T>) -> null | U_T | list<U_T>`` -- it is
    *not* a data transformation; any data units it receives (e.g. a sample
    used to initialise weights, Figure 3(b)) pass through unchanged.
    """

    name = "stage"

    def stage(self, context, data_sample=None):
        """Initialise context globals; returns ``data_sample`` unchanged."""
        raise NotImplementedError


class Compute(Operator):
    """Performs the core computation: ``Compute(U_T) -> U_C``.

    For GD this is the (partial) gradient of a batch of data units
    (Listing 2).  Partials from different partitions are merged with
    :meth:`combine` before Update sees them.
    """

    name = "compute"

    def compute(self, X, y, context):
        """Partial result over a batch; opaque to the executor."""
        raise NotImplementedError

    def combine(self, partial_a, partial_b):
        """Merge two partials (defaults to elementwise tuple addition)."""
        return tuple(a + b for a, b in zip(partial_a, partial_b))


class Update(Operator):
    """Re-sets the global parameters: ``Update(U_C) -> U_U``.

    Receives the aggregated Compute output ("U_C is the sum of all data
    units") and produces the new weight vector (Listing 3).  The only
    operator whose cost involves network transfer (Section 7.1).
    """

    name = "update"

    def update(self, aggregated, context):
        """New weight vector from the aggregated partials."""
        raise NotImplementedError


class Sample(Operator):
    """Narrows the scope of computation: ``Sample(n | list<U>) -> list``.

    The logical operator only decides *how many / which* simulated data
    units the iteration touches; the physical strategy (Bernoulli /
    random-partition / shuffled-partition) is a plan property bound by the
    executor (Section 6).
    """

    name = "sample"

    def sample_size(self, context):
        """Number of data units the next iteration should draw."""
        raise NotImplementedError


class Converge(Operator):
    """Produces the delta data unit: ``Converge(U_U) -> U_Delta``.

    E.g. the L1/L2 norm of the difference between successive weight
    vectors (Listing 5).
    """

    name = "converge"

    def converge(self, weights_new, context):
        """Delta value fed to Loop."""
        raise NotImplementedError


class Loop(Operator):
    """Stopping condition: ``Loop(U_Delta) -> true | false``.

    Returns True while the algorithm should keep iterating (note the
    paper's Listing 6 returns the *stop* flag; we use the continue flag
    and document it to avoid double negation in the executor).
    """

    name = "loop"

    def should_continue(self, delta, context):
        raise NotImplementedError


class GDOperators:
    """Bundle of the seven operators forming one abstracted GD plan."""

    def __init__(self, transform, stage, compute, update, sample,
                 converge, loop):
        self.transform = transform
        self.stage = stage
        self.compute = compute
        self.update = update
        self.sample = sample  # may be None (BGD plans, Figure 3(b))
        self.converge = converge
        self.loop = loop

    def operators(self):
        """All non-None operators in phase order."""
        ops = [self.transform, self.stage, self.sample, self.compute,
               self.update, self.converge, self.loop]
        return [op for op in ops if op is not None]

    def __repr__(self):  # pragma: no cover - debugging aid
        names = ", ".join(op.name for op in self.operators())
        return f"<GDOperators [{names}]>"
