"""Reference implementations of the seven GD operators.

These mirror the paper's Java listings (Listings 1-7 plus the SVRG
variants of Appendix C) as vectorised Python.  "While we provide reference
implementations for all the common use cases, expert users could readily
customize or override them if necessary" (Section 4) -- the executor
accepts any :class:`~repro.core.operators.GDOperators` bundle, and
``examples/custom_gd_algorithm.py`` shows an override in action.
"""

from __future__ import annotations

import numpy as np

from repro.core.operators import (
    Compute,
    Converge,
    GDOperators,
    Loop,
    Sample,
    Stage,
    Transform,
    Update,
)
from repro.errors import PlanError
from repro.gd.base import Updater
from repro.gd.convergence import make_convergence
from repro.gd.step_size import make_step_size


class ParseTransform(Transform):
    """Listing 1: parse raw units into numeric form.

    The physical arrays are already numeric (parsing raw text is charged
    by the engine's cost accounting; see DESIGN.md), so the reference
    Transform optionally applies feature scaling and otherwise passes the
    batch through -- exactly the information-preserving map the listing
    performs.
    """

    def __init__(self, feature_scale=1.0):
        if feature_scale <= 0:
            raise PlanError("feature_scale must be positive")
        self.feature_scale = float(feature_scale)

    def transform(self, X, y, context):
        if self.feature_scale != 1.0:
            X = X * self.feature_scale
        return X, y


class DefaultStage(Stage):
    """Listing 4: weights = 0-vector, step schedule, iteration counter.

    ``iteration_offset`` stages the *global* iteration count already
    completed before this (resumed) segment: Update evaluates the step
    schedule and the updater at ``iter + iteration_offset``, so a resumed
    segment continues the ``beta/sqrt(i)`` decay at global ``k + 1``
    instead of restarting at the schedule's largest first step.
    """

    def __init__(self, d, step_size=1.0, tolerance=1e-3, max_iter=1000,
                 iteration_offset=0):
        self.d = int(d)
        self.step_size = step_size
        self.tolerance = float(tolerance)
        self.max_iter = int(max_iter)
        self.iteration_offset = int(iteration_offset)

    def stage(self, context, data_sample=None):
        context.put("weights", np.zeros(self.d))
        context.put("step", make_step_size(self.step_size))
        context.put("iter", 0)
        context.put("iteration_offset", self.iteration_offset)
        context.put("tolerance", self.tolerance)
        context.put("max_iter", self.max_iter)
        return data_sample


class GradientCompute(Compute):
    """Listing 2: the task gradient of a batch of data units.

    Emits ``(gradient_sum, count)`` partials so distributed partitions can
    be combined by addition before Update normalises to the mean.
    """

    def __init__(self, gradient):
        self.gradient = gradient

    def compute(self, X, y, context):
        w = context.require("weights")
        n = X.shape[0]
        # gradient() returns the mean; re-scale to a sum-partial so that
        # combining partitions of different sizes stays exact.
        return self.gradient.gradient(w, X, y) * n, n


class WeightUpdate(Update):
    """Listing 3: w <- w - alpha_i * direction(mean gradient).

    Both the step schedule and the updater see the **global** iteration
    ``iter + iteration_offset`` -- the schedule position and Adam's bias
    correction are optimizer state that survives a plan switch.
    """

    def __init__(self, updater=None):
        self.updater = updater or Updater()
        self._initialised_for = None

    def update(self, aggregated, context):
        grad_sum, count = aggregated
        if count <= 0:
            raise PlanError("Update received an empty aggregate")
        w = context.require("weights")
        if self._initialised_for != w.shape[0]:
            self.updater.reset(w.shape[0])
            self._initialised_for = w.shape[0]
        i = context.require("iter") + context.get("iteration_offset", 0)
        step = context.require("step")
        mean_grad = grad_sum / count
        w_new = w - step(i) * self.updater.direction(mean_grad, i)
        context.put("weights", w_new)
        return w_new

    # -- carry-over hooks (duck-typed by PlanExecutor) -------------------
    @property
    def updater_name(self) -> str:
        return self.updater.name

    def export_updater_state(self) -> dict:
        return self.updater.state_dict()

    def load_updater_state(self, buffers, d) -> None:
        """Seed the updater's buffers for a d-dimensional resume."""
        self.updater.reset(int(d))
        self._initialised_for = int(d)
        self.updater.load_state(buffers)


class FixedSizeSample(Sample):
    """Listing 7's role: declare how many units the iteration draws.

    The physical strategy (Bernoulli / random / shuffle) is a plan
    property; this logical operator only fixes the batch size (1 for SGD,
    b for MGD -- "It is via Sample that users can enable the MGD and SGD
    methods, by setting the right sample size", Section 4.2).
    """

    def __init__(self, batch_size):
        if batch_size < 1:
            raise PlanError("sample batch size must be >= 1")
        self.batch_size = int(batch_size)

    def sample_size(self, context):
        return self.batch_size


class L1Converge(Converge):
    """Listing 5: delta = sum_j |w_j - w'_j| (criterion is pluggable)."""

    def __init__(self, criterion="l1"):
        self.criterion = make_convergence(criterion)
        self._previous = None

    def converge(self, weights_new, context):
        if self._previous is None:
            delta = float("inf")
        else:
            delta = self.criterion.delta(self._previous, weights_new)
        self._previous = np.array(weights_new, copy=True)
        return delta

    # -- carry-over hooks (duck-typed by PlanExecutor) -------------------
    def export_state(self):
        if self._previous is None:
            return None
        return {"previous": self._previous.tolist()}

    def import_state(self, payload) -> None:
        if payload is not None and "previous" in payload:
            self._previous = np.asarray(payload["previous"], dtype=float)


class ToleranceLoop(Loop):
    """Listing 6 plus the iteration cap: continue while delta >= tol."""

    def should_continue(self, delta, context):
        tolerance = context.require("tolerance")
        max_iter = context.require("max_iter")
        i = context.require("iter")
        if i >= max_iter:
            return False
        return not delta < tolerance


def default_operators(
    d,
    gradient,
    batch_size=None,
    step_size=1.0,
    tolerance=1e-3,
    max_iter=1000,
    convergence="l1",
    updater=None,
    feature_scale=1.0,
    iteration_offset=0,
) -> GDOperators:
    """The reference operator bundle for BGD/MGD/SGD plans.

    ``batch_size=None`` omits the Sample operator (a BGD plan, Figure
    3(b)); any positive value yields the stochastic plan of Figure 3(a).
    ``iteration_offset`` resumes the step schedule / updater at that
    many completed global iterations (see :class:`DefaultStage`).
    """
    sample = FixedSizeSample(batch_size) if batch_size else None
    return GDOperators(
        transform=ParseTransform(feature_scale),
        stage=DefaultStage(d, step_size, tolerance, max_iter,
                           iteration_offset=iteration_offset),
        compute=GradientCompute(gradient),
        update=WeightUpdate(updater),
        sample=sample,
        converge=L1Converge(convergence),
        loop=ToleranceLoop(),
    )


# ---------------------------------------------------------------------------
# SVRG expressed in the abstraction (Appendix C, Listing 8)
# ---------------------------------------------------------------------------

def svrg_is_anchor(i, context, m) -> bool:
    """Whether local iteration ``i`` is an SVRG anchor pass.

    Cadence is tracked by ``svrg_last_anchor`` -- the *global* iteration
    of the most recent anchor -- so it survives segment boundaries: a
    resumed same-algorithm segment anchors every ``m`` global iterations
    as if never interrupted, while a segment entered without SVRG state
    (``svrg_last_anchor`` is None, e.g. after a cross-algorithm plan
    switch) recomputes its anchor immediately on entry.  For fresh runs
    this reproduces the paper's ``(i % m) - 1 == 0`` schedule exactly;
    bundles whose context predates the tracking key (no
    ``svrg_last_anchor`` staged) fall back to that modulo rule.
    """
    if "svrg_last_anchor" not in context:
        return (i % m) - 1 == 0
    last = context.get("svrg_last_anchor")
    gi = i + context.get("iteration_offset", 0)
    return last is None or gi - last >= m


class SVRGCompute(Compute):
    """Listing 8: if-else on the iteration flattens SVRG's nested loops.

    Anchor iterations emit the plain gradient partial; other iterations
    emit the pair (grad at w, grad at w_bar) so Update can form the
    variance-reduced direction.  Anchor cadence: :func:`svrg_is_anchor`.
    """

    def __init__(self, gradient, update_frequency):
        if update_frequency < 2:
            raise PlanError("SVRG update_frequency must be >= 2")
        self.gradient = gradient
        self.m = int(update_frequency)

    def compute(self, X, y, context):
        w = context.require("weights")
        i = context.require("iter")
        n = X.shape[0]
        if svrg_is_anchor(i, context, self.m):
            grad = self.gradient.gradient(w, X, y)
            return grad * n, np.zeros_like(grad), n, True
        w_bar = context.require("weights_bar")
        grad = self.gradient.gradient(w, X, y)
        grad_bar = self.gradient.gradient(w_bar, X, y)
        return grad * n, grad_bar * n, n, False

    def combine(self, a, b):
        return a[0] + b[0], a[1] + b[1], a[2] + b[2], a[3] and b[3]


class SVRGUpdate(Update):
    """The Appendix C update rule with anchor bookkeeping.

    An anchor pass re-anchors at the *current* weights (``weights_bar``
    <- w) and records the global anchor iteration, so resumed segments
    -- which always enter on carried weights -- anchor correctly instead
    of at the staged zero vector.
    """

    def update(self, aggregated, context):
        grad_sum, grad_bar_sum, count, is_anchor = aggregated
        if count <= 0:
            raise PlanError("Update received an empty aggregate")
        w = context.require("weights")
        i = context.require("iter") + context.get("iteration_offset", 0)
        step = context.require("step")
        alpha = step(i)
        if is_anchor:
            context.put("weights_bar", w.copy())
            context.put("svrg_last_anchor", i)
            mu = grad_sum / count
            context.put("mu", mu)
            w_new = w - alpha * mu
        else:
            mu = context.require("mu")
            direction = (grad_sum - grad_bar_sum) / count + mu
            w_new = w - alpha * direction
        context.put("weights", w_new)
        return w_new


class SVRGStage(DefaultStage):
    """Stage for SVRG: also initialises the anchor point and mu."""

    def stage(self, context, data_sample=None):
        out = super().stage(context, data_sample)
        context.put("weights_bar", np.zeros(self.d))
        context.put("mu", np.zeros(self.d))
        context.put("svrg_last_anchor", None)
        return out


def svrg_operators(
    d,
    gradient,
    update_frequency=50,
    step_size="constant:0.05",
    tolerance=1e-3,
    max_iter=1000,
    convergence="l1",
    iteration_offset=0,
) -> GDOperators:
    """SVRG as a GDOperators bundle (same plan shape as SGD, Figure 3(a)).

    Note: the executor runs anchor iterations over the full dataset and
    stochastic iterations over the Sample draw, recognising them through
    the duck-typed ``full_batch_when`` hook below (``anchor_every`` is
    the same cadence as a plain attribute, kept for older callers).  The
    ``state_namespace`` + ``export_algorithm_state`` /
    ``import_algorithm_state`` hooks carry the anchor point, ``mu`` and
    the anchor cadence through :class:`~repro.gd.state.OptimizerState`
    snapshots.
    """
    ops = GDOperators(
        transform=ParseTransform(),
        stage=SVRGStage(d, step_size, tolerance, max_iter,
                        iteration_offset=iteration_offset),
        compute=SVRGCompute(gradient, update_frequency),
        update=SVRGUpdate(),
        sample=FixedSizeSample(1),
        converge=L1Converge(convergence),
        loop=ToleranceLoop(),
    )
    m = int(update_frequency)
    ops.anchor_every = m
    ops.state_namespace = "svrg"

    def full_batch_when(i, context):
        return svrg_is_anchor(i, context, m)

    def export_algorithm_state(context):
        if "weights_bar" not in context:
            return None
        return {
            "w_bar": np.asarray(
                context.require("weights_bar"), dtype=float
            ).tolist(),
            "mu": np.asarray(context.require("mu"), dtype=float).tolist(),
            "last_anchor": context.get("svrg_last_anchor"),
        }

    def import_algorithm_state(context, payload):
        if "weights_bar" not in context:
            return
        context.put("weights_bar", np.asarray(payload["w_bar"], dtype=float))
        context.put("mu", np.asarray(payload["mu"], dtype=float))
        context.put("svrg_last_anchor", payload.get("last_anchor"))

    ops.full_batch_when = full_batch_when
    ops.export_algorithm_state = export_algorithm_state
    ops.import_algorithm_state = import_algorithm_state
    return ops
