"""Cost-based hyperparameter tuning (the paper's proposed extension).

The conclusion of the paper: "our approach can easily be extended to
assist in other design choices in ML systems, such as hyperparameter
tuning".  This module is that extension: hyperparameter candidates
(step-size schedules, MGD batch sizes) are treated exactly like GD plans
-- each candidate is *speculated* on a sample (Algorithm 1 gives its
T(epsilon)), *costed* with the Section 7 cost model, and the cheapest
estimated total time wins.  No accuracy proxy is needed: a step size that
diverges or crawls simply gets a huge estimated iteration count.
"""

from __future__ import annotations

import dataclasses
import time

from repro.core.cost_model import CostModel
from repro.core.iterations import SpeculativeEstimator
from repro.core.plans import GDPlan
from repro.errors import EstimationError, PlanError
from repro.gd.step_size import make_step_size

#: Default step-size candidates: the MLlib schedule at three scales plus
#: the Appendix E adaptive schedules.
DEFAULT_STEP_CANDIDATES = (
    "inv_sqrt:0.5", "inv_sqrt:1", "inv_sqrt:2", "1/i:1", "constant:0.1",
)

DEFAULT_BATCH_CANDIDATES = (100, 1_000, 10_000)


@dataclasses.dataclass
class TuningCandidate:
    """One hyperparameter setting with its speculation-backed estimate."""

    setting: object
    plan: GDPlan
    estimated_iterations: int | None
    estimated_total_s: float | None
    #: Why the candidate was rejected, if it was (e.g. fit failure on a
    #: diverging step size).
    rejected: str | None = None

    @property
    def feasible(self) -> bool:
        return self.rejected is None

    def summary(self) -> str:
        if not self.feasible:
            return f"{self.setting}: rejected ({self.rejected})"
        return (
            f"{self.setting}: est. {self.estimated_iterations} iters, "
            f"{self.estimated_total_s:.2f}s total"
        )


@dataclasses.dataclass
class TuningReport:
    """Outcome of one tuning sweep."""

    parameter: str
    best: TuningCandidate
    candidates: list
    wall_s: float

    def summary(self) -> str:
        lines = [f"tuned {self.parameter}: best = {self.best.setting} "
                 f"({self.wall_s:.2f}s wall)"]
        ordered = sorted(
            self.candidates,
            key=lambda c: (not c.feasible,
                           c.estimated_total_s
                           if c.estimated_total_s is not None else 1e30),
        )
        lines.extend(f"  {c.summary()}" for c in ordered)
        return "\n".join(lines)


class CostBasedTuner:
    """Chooses hyperparameters by estimated training time.

    Reuses the two ingredients of the GD optimizer: the speculation-based
    iterations estimator (per candidate) and the plan cost model.  The
    candidate minimizing ``one_time + T(eps) x per_iteration`` wins.
    """

    def __init__(self, engine, estimator=None, seed=0):
        self.engine = engine
        self.estimator = estimator or SpeculativeEstimator(seed=seed)
        self.cost_model = CostModel(engine.spec)

    # ------------------------------------------------------------------
    def _evaluate(self, dataset, training, plan, step_size, batch_size,
                  sample):
        """Speculate one candidate; returns (iterations, total) or raises."""
        estimate = self.estimator.estimate(
            dataset.X,
            dataset.y,
            training.gradient(),
            plan.algorithm,
            target_tolerance=training.tolerance,
            step_size=step_size,
            batch_size=batch_size,
            convergence=training.convergence,
            sample=sample,
        )
        iterations = min(estimate.estimated_iterations, training.max_iter)
        _, _, total, _ = self.cost_model.estimate(
            plan, dataset.stats, iterations
        )
        return iterations, total

    def tune_step_size(
        self,
        dataset,
        training,
        algorithm="bgd",
        candidates=DEFAULT_STEP_CANDIDATES,
        plan=None,
    ) -> TuningReport:
        """Pick the step schedule minimizing estimated training time."""
        if not candidates:
            raise PlanError("need at least one step-size candidate")
        start = time.perf_counter()
        if plan is None:
            from repro.gd.registry import info as algo_info

            if algo_info(algorithm).stochastic:
                plan = GDPlan(algorithm, "lazy", "shuffle")
            else:
                plan = GDPlan(algorithm)
        sample = self.estimator.take_sample(dataset.X, dataset.y)

        out = []
        for spec in candidates:
            make_step_size(spec)  # validate eagerly
            try:
                iterations, total = self._evaluate(
                    dataset, training, plan, spec,
                    plan.effective_batch_size, sample,
                )
                out.append(TuningCandidate(spec, plan, iterations, total))
            except EstimationError as exc:
                out.append(TuningCandidate(spec, plan, None, None,
                                           rejected=str(exc)))
        feasible = [c for c in out if c.feasible]
        if not feasible:
            raise EstimationError(
                "no step-size candidate produced a usable error sequence; "
                "all speculations failed to fit"
            )
        best = min(feasible, key=lambda c: c.estimated_total_s)
        return TuningReport("step_size", best, out,
                            time.perf_counter() - start)

    def tune_batch_size(
        self,
        dataset,
        training,
        candidates=DEFAULT_BATCH_CANDIDATES,
        transform_mode="eager",
        sampling="shuffle",
    ) -> TuningReport:
        """Pick the MGD batch size minimizing estimated training time.

        Larger batches cut the iteration count (less gradient noise) but
        raise the per-iteration cost -- precisely the statistical- vs
        hardware-efficiency trade-off DimmWitted studies and the paper
        cites; here it falls out of the cost framework for free.
        """
        if not candidates:
            raise PlanError("need at least one batch-size candidate")
        start = time.perf_counter()
        sample = self.estimator.take_sample(dataset.X, dataset.y)

        out = []
        for batch in candidates:
            plan = GDPlan("mgd", transform_mode, sampling, batch_size=batch)
            try:
                iterations, total = self._evaluate(
                    dataset, training, plan, training.step_size, batch,
                    sample,
                )
                out.append(TuningCandidate(batch, plan, iterations, total))
            except EstimationError as exc:
                out.append(TuningCandidate(batch, plan, None, None,
                                           rejected=str(exc)))
        feasible = [c for c in out if c.feasible]
        if not feasible:
            raise EstimationError(
                "no batch-size candidate produced a usable error sequence"
            )
        best = min(feasible, key=lambda c: c.estimated_total_s)
        return TuningReport("batch_size", best, out,
                            time.perf_counter() - start)
