"""The paper's primary contribution: the cost-based GD optimizer.

Maps to the architecture of Figure 2: the GD abstraction (``operators``,
``reference_ops``), the iterations estimator (``iterations``,
``curve_fit``), the plan space (``plans``, ``plan_space``), the cost model
(``cost_model``) and the planner itself (``optimizer``), executing through
``executor`` on the simulated cluster.
"""

from repro.core.context import Context
from repro.core.cost_model import CostModel, DatasetLayout, layout_for
from repro.core.curve_fit import (
    FittedCurve,
    fit_error_sequence,
    fit_exponential,
    fit_inverse,
    fit_power,
)
from repro.core.executor import PlanExecutor, execute_plan
from repro.core.iterations import (
    IterationsEstimate,
    SpeculationSettings,
    SpeculativeEstimator,
)
from repro.core.operators import (
    Compute,
    Converge,
    GDOperators,
    Loop,
    Operator,
    Sample,
    Stage,
    Transform,
    Update,
)
from repro.core.optimizer import GDOptimizer
from repro.core.plan_space import (
    STOCHASTIC_VARIANTS,
    enumerate_plans,
    plans_for_algorithm,
    space_size,
)
from repro.core.plans import GDPlan, TrainingSpec
from repro.core.reference_ops import (
    DefaultStage,
    FixedSizeSample,
    GradientCompute,
    L1Converge,
    ParseTransform,
    SVRGCompute,
    SVRGUpdate,
    ToleranceLoop,
    WeightUpdate,
    default_operators,
    svrg_operators,
)
from repro.core.result import OptimizationReport, PlanCostEstimate, TrainResult
from repro.core.tuning import CostBasedTuner, TuningCandidate, TuningReport

__all__ = [
    "Context",
    "CostModel",
    "DatasetLayout",
    "layout_for",
    "FittedCurve",
    "fit_error_sequence",
    "fit_exponential",
    "fit_inverse",
    "fit_power",
    "PlanExecutor",
    "execute_plan",
    "IterationsEstimate",
    "SpeculationSettings",
    "SpeculativeEstimator",
    "Compute",
    "Converge",
    "GDOperators",
    "Loop",
    "Operator",
    "Sample",
    "Stage",
    "Transform",
    "Update",
    "GDOptimizer",
    "STOCHASTIC_VARIANTS",
    "enumerate_plans",
    "plans_for_algorithm",
    "space_size",
    "GDPlan",
    "TrainingSpec",
    "DefaultStage",
    "FixedSizeSample",
    "GradientCompute",
    "L1Converge",
    "ParseTransform",
    "SVRGCompute",
    "SVRGUpdate",
    "ToleranceLoop",
    "WeightUpdate",
    "default_operators",
    "svrg_operators",
    "OptimizationReport",
    "PlanCostEstimate",
    "TrainResult",
    "CostBasedTuner",
    "TuningCandidate",
    "TuningReport",
]
