"""Error-sequence models for the iterations estimator (Section 5).

"Gradient descent based methods on convex functions routinely exhibit
only three standard convergence rates -- linear, supra linear and
quadratic ... Each of these convergence rates can be identified purely
through the error sequence."  The estimator runs a short speculative GD,
collects the ``(iteration, error)`` pairs, fits a rate model and inverts
it: ``T(epsilon_d) = a / epsilon_d`` for the paper's default sub-linear
``a/epsilon`` model (Algorithm 1, lines 9-10).

Three models are provided; ``fit_error_sequence`` fits the requested one
or auto-selects by log-space R^2:

    inverse      error_i = a / i          ->  T(e) = a / e
    power        error_i = a / i^p        ->  T(e) = (a / e)^(1/p)
    exponential  error_i = a * r^i        ->  T(e) = log(e/a) / log(r)
                 (linear convergence in the optimization sense)
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.errors import EstimationError

#: Hard cap returned by iterations_for(); avoids absurd extrapolations.
MAX_ESTIMATED_ITERATIONS = 100_000_000

MODELS = ("inverse", "power", "exponential")


@dataclasses.dataclass(frozen=True)
class FittedCurve:
    """A fitted error-sequence model ``error(i)`` with its inverse."""

    model: str
    params: tuple
    r2: float
    n_points: int

    def error_at(self, i) -> float:
        """Predicted error after iteration ``i``."""
        if i < 1:
            raise EstimationError("iteration index must be >= 1")
        if self.model == "inverse":
            (a,) = self.params
            return a / i
        if self.model == "power":
            a, p = self.params
            return a / i ** p
        if self.model == "exponential":
            a, r = self.params
            return a * r ** i
        raise EstimationError(f"unknown model {self.model!r}")

    def iterations_for(self, epsilon) -> int:
        """T(epsilon): iterations needed to reach the given error."""
        if epsilon <= 0:
            raise EstimationError("tolerance must be positive")
        if self.model == "inverse":
            (a,) = self.params
            raw = a / epsilon
        elif self.model == "power":
            a, p = self.params
            raw = (a / epsilon) ** (1.0 / p)
        elif self.model == "exponential":
            a, r = self.params
            if epsilon >= a:
                return 1
            raw = math.log(epsilon / a) / math.log(r)
        else:
            raise EstimationError(f"unknown model {self.model!r}")
        if not math.isfinite(raw):
            raise EstimationError(
                f"{self.model} fit produced a non-finite iteration estimate"
            )
        return int(min(max(1, math.ceil(raw)), MAX_ESTIMATED_ITERATIONS))

    def describe(self) -> str:
        if self.model == "inverse":
            return f"error(i) = {self.params[0]:.4g}/i (R2={self.r2:.3f})"
        if self.model == "power":
            a, p = self.params
            return f"error(i) = {a:.4g}/i^{p:.3f} (R2={self.r2:.3f})"
        a, r = self.params
        return f"error(i) = {a:.4g}*{r:.4f}^i (R2={self.r2:.3f})"


def _clean_sequence(errors, iterations=None):
    """Positive, finite (i, e) pairs as float arrays."""
    errors = np.asarray(errors, dtype=float)
    if iterations is None:
        iterations = np.arange(1, len(errors) + 1, dtype=float)
    else:
        iterations = np.asarray(iterations, dtype=float)
    if len(errors) != len(iterations):
        raise EstimationError("iterations and errors must have equal length")
    mask = np.isfinite(errors) & (errors > 0) & (iterations >= 1)
    iterations, errors = iterations[mask], errors[mask]
    if len(errors) < 3:
        raise EstimationError(
            f"need at least 3 positive error observations to fit, "
            f"have {len(errors)}"
        )
    return iterations, errors


def _log_r2(log_e, log_pred):
    ss_res = float(np.sum((log_e - log_pred) ** 2))
    ss_tot = float(np.sum((log_e - log_e.mean()) ** 2))
    if ss_tot == 0:
        return 1.0 if ss_res == 0 else 0.0
    return 1.0 - ss_res / ss_tot


def fit_inverse(errors, iterations=None) -> FittedCurve:
    """Least-squares fit of error_i = a/i (the paper's T(e) = a/e model).

    Minimises sum_i (e_i - a/i)^2, giving the closed form
    a = sum(e_i / i) / sum(1 / i^2).
    """
    it, e = _clean_sequence(errors, iterations)
    inv = 1.0 / it
    a = float(np.dot(e, inv) / np.dot(inv, inv))
    if a <= 0:
        raise EstimationError("inverse fit produced non-positive a")
    r2 = _log_r2(np.log(e), np.log(a * inv))
    return FittedCurve("inverse", (a,), r2, len(e))


def fit_power(errors, iterations=None) -> FittedCurve:
    """Log-log linear fit of error_i = a / i^p (generalised sub-linear)."""
    it, e = _clean_sequence(errors, iterations)
    log_i, log_e = np.log(it), np.log(e)
    slope, intercept = np.polyfit(log_i, log_e, 1)
    p = -float(slope)
    a = float(np.exp(intercept))
    if p <= 0:
        raise EstimationError(
            "power fit found a non-decreasing error sequence (p <= 0)"
        )
    r2 = _log_r2(log_e, intercept + slope * log_i)
    return FittedCurve("power", (a, p), r2, len(e))


def fit_exponential(errors, iterations=None) -> FittedCurve:
    """Semi-log fit of error_i = a * r^i (linear convergence rate)."""
    it, e = _clean_sequence(errors, iterations)
    log_e = np.log(e)
    slope, intercept = np.polyfit(it, log_e, 1)
    r = float(np.exp(slope))
    a = float(np.exp(intercept))
    if not 0 < r < 1:
        raise EstimationError(
            f"exponential fit found rate r={r:.4f} outside (0, 1)"
        )
    r2 = _log_r2(log_e, intercept + slope * it)
    return FittedCurve("exponential", (a, r), r2, len(e))


_FITTERS = {
    "inverse": fit_inverse,
    "power": fit_power,
    "exponential": fit_exponential,
}


def fit_error_sequence(errors, iterations=None, model="inverse") -> FittedCurve:
    """Fit the requested model, or the best of all three for ``"auto"``."""
    if model in _FITTERS:
        return _FITTERS[model](errors, iterations)
    if model != "auto":
        raise EstimationError(
            f"unknown model {model!r}; expected one of {MODELS + ('auto',)}"
        )
    best = None
    failures = []
    for name, fitter in _FITTERS.items():
        try:
            curve = fitter(errors, iterations)
        except EstimationError as exc:
            failures.append(f"{name}: {exc}")
            continue
        if best is None or curve.r2 > best.r2:
            best = curve
    if best is None:
        raise EstimationError(
            "no convergence-rate model could be fitted: " + "; ".join(failures)
        )
    return best
