"""The GD cost model (Section 7: Table 1 and formulas 3-9).

The optimizer estimates every candidate plan as

    total = one_time + T x per_iteration        (formulas 7-9)

where T comes from the iterations estimator and the per-iteration cost is
assembled from per-operator costs:

    c_op(D) = c_IO(D) + c_NT(D) + c_CPU(D, op)   (formula 6)

"Transform, Compute, Sample, Converge, and Loop involve only IO and CPU
costs ... Stage may incur only CPU cost ... Update is the only operator
that involves network transfers" (Section 7.1).

The model is deliberately *coarser* than the execution engine: it assumes
the loop representation is fully cached iff it fits the cluster cache,
ignores jitter/stragglers and cache dynamics.  The resulting estimation
error against the engine is what Figure 7 measures (paper: <= 17%).
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import PlanError


@dataclasses.dataclass(frozen=True)
class DatasetLayout:
    """Derived Table 1 quantities for one dataset representation.

    n       #data units in D
    p       #partitions of D:        p(D) = ceil(|D|_b / |P|_b)
    k       #data units per partition: k = ceil(n * |P|_b / |D|_b)
    waves   w(D) = p / cap
    """

    n: int
    d: int
    nnz_per_row: float
    bytes_total: int
    bytes_per_row: float
    p: int
    k: int

    @property
    def partition_bytes(self) -> int:
        return int(math.ceil(self.bytes_total / self.p))


def layout_for(spec, stats, representation) -> DatasetLayout:
    """Compute the Table 1 layout of ``stats`` in the given representation."""
    bytes_total = stats.bytes_for(representation)
    p = max(1, math.ceil(bytes_total / spec.hdfs_block_bytes))
    k = max(1, math.ceil(stats.n / p))
    return DatasetLayout(
        n=stats.n,
        d=stats.d,
        nnz_per_row=stats.nnz_per_row,
        bytes_total=bytes_total,
        bytes_per_row=stats.bytes_per_row(representation),
        p=p,
        k=k,
    )


# ---------------------------------------------------------------------------
# formulas 3-5
# ---------------------------------------------------------------------------

def io_cost(spec, layout, in_memory=False) -> float:
    """Formula 3: wave-parallel cost of reading a dataset once.

    full waves x (SK + |P|_b/|page|_b x pageIO) + the last partial wave.
    """
    page_io = spec.page_io_mem_s if in_memory else spec.page_io_disk_s
    seek = spec.seek_mem_s if in_memory else spec.seek_disk_s
    full_waves = layout.p // spec.cap
    remaining = layout.p - full_waves * spec.cap
    per_partition = seek + layout.partition_bytes / spec.page_bytes * page_io
    cost = full_waves * per_partition
    if remaining:
        cost += per_partition
    return cost


def cpu_cost(spec, layout, cpu_per_unit) -> float:
    """Formula 4: wave-parallel CPU cost of processing every data unit."""
    full_waves = layout.p // spec.cap
    remaining = layout.p - full_waves * spec.cap
    cost = full_waves * layout.k * cpu_per_unit
    if remaining:
        cost += layout.k * cpu_per_unit
    return cost


def network_cost(spec, nbytes) -> float:
    """Formula 5: |D|_b / |packet|_b packets through the switch."""
    return spec.transfer_s(nbytes)


# ---------------------------------------------------------------------------
# per-operator CPU constants
# ---------------------------------------------------------------------------

def transform_cpu_per_unit(spec, layout) -> float:
    return spec.transform_base_s + spec.transform_per_nnz_s * layout.nnz_per_row


def compute_cpu_per_unit(spec, layout) -> float:
    return spec.compute_base_s + spec.compute_per_nnz_s * layout.nnz_per_row


def update_cpu(spec, layout) -> float:
    return spec.update_per_dim_s * layout.d


def converge_cpu(spec, layout) -> float:
    return spec.converge_per_dim_s * layout.d


# ---------------------------------------------------------------------------
# the plan cost model
# ---------------------------------------------------------------------------

class CostModel:
    """Assembles formulas 3-9 into per-plan cost estimates."""

    def __init__(self, spec):
        self.spec = spec

    # -- helpers --------------------------------------------------------
    def _fits_cache(self, nbytes) -> bool:
        return nbytes <= self.spec.cache_bytes

    def _weight_bytes(self, layout) -> int:
        return layout.d * 8

    def one_time_cost(self, plan, stats) -> dict:
        """Costs paid once, before the loop (Stage; eager Transform)."""
        spec = self.spec
        breakdown = {}
        # Stage: driver-local parameter initialisation.
        breakdown["stage"] = spec.local_overhead_s

        if plan.transform_mode == "eager":
            text = layout_for(spec, stats, "text")
            binary = layout_for(spec, stats, "binary")
            cost = io_cost(spec, text, in_memory=False)
            cost += cpu_cost(spec, text, transform_cpu_per_unit(spec, text))
            # Parsed units are written into executor cache memory.
            cost += binary.bytes_total / spec.page_bytes * spec.page_io_mem_s \
                / spec.cap
            if text.p > 1:
                cost += spec.job_overhead_s
            breakdown["transform"] = cost
        return breakdown

    # -- per-iteration components ---------------------------------------
    def per_iteration_cost(self, plan, stats) -> dict:
        """Per-iteration breakdown {phase: seconds} for a plan."""
        if plan.is_stochastic:
            return self._stochastic_iteration(plan, stats)
        return self._full_batch_iteration(plan, stats)

    def _full_batch_iteration(self, plan, stats) -> dict:
        """Formula 7's T-multiplied term: Compute + Update + Converge + Loop."""
        spec = self.spec
        binary = layout_for(spec, stats, "binary")
        cached = self._fits_cache(binary.bytes_total)
        distributed = binary.p > 1

        breakdown = {}
        compute = io_cost(spec, binary, in_memory=cached)
        compute += cpu_cost(spec, binary, compute_cpu_per_unit(spec, binary))
        if distributed:
            compute += spec.job_overhead_s
        breakdown["compute"] = compute

        update = update_cpu(spec, binary)
        if distributed:
            update += network_cost(spec, binary.p * self._weight_bytes(binary))
            update += network_cost(spec, self._weight_bytes(binary)) * math.ceil(
                math.log2(max(2, spec.n_nodes))
            )  # weight broadcast for the next iteration
        breakdown["update"] = update
        breakdown["converge"] = converge_cpu(spec, binary) + spec.local_overhead_s
        breakdown["loop"] = spec.loop_s + spec.iteration_overhead_s
        return breakdown

    def _stochastic_iteration(self, plan, stats) -> dict:
        spec = self.spec
        m = plan.effective_batch_size
        # The representation read inside the loop: lazy plans sample raw
        # text units; eager plans sample parsed binary units.
        loop_repr = "text" if plan.transform_mode == "lazy" else "binary"
        loop_layout = layout_for(spec, stats, loop_repr)
        cached = (
            plan.transform_mode == "eager"
            and self._fits_cache(loop_layout.bytes_total)
        )
        distributed = loop_layout.p > 1

        local_parallelism = spec.slots_per_node if distributed else 1
        breakdown = {}
        breakdown["sample"] = self._sample_cost(
            plan, loop_layout, m, cached, distributed
        )

        if plan.transform_mode == "lazy":
            breakdown["transform"] = (
                m * transform_cpu_per_unit(spec, loop_layout)
                / local_parallelism
            )

        if plan.sampling == "bernoulli" and distributed:
            # Gradient computed where the sampled units live; partials
            # aggregated at the driver (the paper's distributed MGD path).
            compute = m * compute_cpu_per_unit(spec, loop_layout) / spec.cap
            update = update_cpu(spec, loop_layout)
            update += network_cost(
                spec, loop_layout.p * self._weight_bytes(loop_layout)
            )
            update += network_cost(spec, self._weight_bytes(loop_layout))
        else:
            # Mix-based plan (Appendix D): the gradient is computed
            # data-locally on the sampled partition's executor; the model
            # travels out and the partial gradient travels back.
            compute = m * compute_cpu_per_unit(spec, loop_layout) \
                / local_parallelism
            update = update_cpu(spec, loop_layout)
            if distributed:
                update += 2 * network_cost(
                    spec, self._weight_bytes(loop_layout)
                )
        breakdown["compute"] = compute
        breakdown["update"] = update
        breakdown["converge"] = converge_cpu(spec, loop_layout) + spec.local_overhead_s
        breakdown["loop"] = spec.loop_s + spec.iteration_overhead_s
        return breakdown

    def _sample_cost(self, plan, layout, m, cached, distributed) -> float:
        """Per-iteration cost of the chosen sampling strategy."""
        spec = self.spec
        if plan.sampling == "bernoulli":
            # Full scan with an inclusion test per unit; expected number
            # of scans accounts for possibly-empty Poisson(m) samples.
            retry = 1.0 / (1.0 - math.exp(-m)) if m < 50 else 1.0
            cost = io_cost(spec, layout, in_memory=cached)
            cost += cpu_cost(spec, layout, spec.sample_test_s)
            if distributed:
                cost += spec.job_overhead_s
            return retry * cost

        page_io = spec.page_io_mem_s if cached else spec.page_io_disk_s
        seek = spec.seek_mem_s if cached else spec.seek_disk_s
        batch_bytes = m * layout.bytes_per_row
        cost = 0.0
        if plan.sampling == "random":
            pages_each = spec.pages_in(int(math.ceil(layout.bytes_per_row)))
            cost += m * (seek + pages_each * page_io)
        elif plan.sampling == "shuffle":
            # One-partition shuffle amortised over the k/m iterations it
            # serves, plus the sequential cursor read of the batch.
            shuffle = seek + layout.partition_bytes / spec.page_bytes * page_io
            shuffle += layout.k * spec.shuffle_per_row_s
            shuffle += layout.partition_bytes / spec.page_bytes * spec.page_io_mem_s
            iterations_served = max(1.0, layout.k / m)
            cost += shuffle / iterations_served
            cost += batch_bytes / spec.page_bytes * page_io
        else:  # pragma: no cover - plans validate sampling names
            raise PlanError(f"unknown sampling {plan.sampling!r}")
        if distributed:
            # One Spark job per iteration drives the data-local sample.
            cost += spec.job_overhead_s
        return cost

    # -- totals (formulas 7-9) ------------------------------------------
    def estimate(self, plan, stats, iterations) -> tuple:
        """(one_time_s, per_iteration_s, total_s, breakdown).

        ``breakdown`` maps ``"one_time:<phase>"`` and ``"iter:<phase>"``
        to seconds.
        """
        one_time = self.one_time_cost(plan, stats)
        per_iter = self.per_iteration_cost(plan, stats)
        one_time_s = sum(one_time.values())
        per_iter_s = sum(per_iter.values())
        total = one_time_s + iterations * per_iter_s
        breakdown = {f"one_time:{k}": v for k, v in one_time.items()}
        breakdown.update({f"iter:{k}": v for k, v in per_iter.items()})
        return one_time_s, per_iter_s, total, breakdown
