"""The GD cost model (Section 7: Table 1 and formulas 3-9).

The optimizer estimates every candidate plan as

    total = one_time + T x per_iteration        (formulas 7-9)

where T comes from the iterations estimator and the per-iteration cost is
assembled from per-operator costs:

    c_op(D) = c_IO(D) + c_NT(D) + c_CPU(D, op)   (formula 6)

"Transform, Compute, Sample, Converge, and Loop involve only IO and CPU
costs ... Stage may incur only CPU cost ... Update is the only operator
that involves network transfers" (Section 7.1).

The model is deliberately *coarser* than the execution engine: it assumes
the loop representation is fully cached iff it fits the cluster cache,
ignores jitter/stragglers and cache dynamics.  The resulting estimation
error against the engine is what Figure 7 measures (paper: <= 17%).
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.errors import PlanError
from repro.gd import registry as gd_registry


@dataclasses.dataclass(frozen=True)
class DatasetLayout:
    """Derived Table 1 quantities for one dataset representation.

    n       #data units in D
    p       #partitions of D:        p(D) = ceil(|D|_b / |P|_b)
    k       #data units per partition: k = ceil(n * |P|_b / |D|_b)
    waves   w(D) = p / cap
    """

    n: int
    d: int
    nnz_per_row: float
    bytes_total: int
    bytes_per_row: float
    p: int
    k: int

    @property
    def partition_bytes(self) -> int:
        return int(math.ceil(self.bytes_total / self.p))


def layout_for(spec, stats, representation) -> DatasetLayout:
    """Compute the Table 1 layout of ``stats`` in the given representation."""
    bytes_total = stats.bytes_for(representation)
    p = max(1, math.ceil(bytes_total / spec.hdfs_block_bytes))
    k = max(1, math.ceil(stats.n / p))
    return DatasetLayout(
        n=stats.n,
        d=stats.d,
        nnz_per_row=stats.nnz_per_row,
        bytes_total=bytes_total,
        bytes_per_row=stats.bytes_per_row(representation),
        p=p,
        k=k,
    )


# ---------------------------------------------------------------------------
# formulas 3-5
# ---------------------------------------------------------------------------

def io_cost(spec, layout, in_memory=False) -> float:
    """Formula 3: wave-parallel cost of reading a dataset once.

    full waves x (SK + |P|_b/|page|_b x pageIO) + the last partial wave.
    """
    page_io = spec.page_io_mem_s if in_memory else spec.page_io_disk_s
    seek = spec.seek_mem_s if in_memory else spec.seek_disk_s
    full_waves = layout.p // spec.cap
    remaining = layout.p - full_waves * spec.cap
    per_partition = seek + layout.partition_bytes / spec.page_bytes * page_io
    cost = full_waves * per_partition
    if remaining:
        cost += per_partition
    return cost


def cpu_cost(spec, layout, cpu_per_unit) -> float:
    """Formula 4: wave-parallel CPU cost of processing every data unit."""
    full_waves = layout.p // spec.cap
    remaining = layout.p - full_waves * spec.cap
    cost = full_waves * layout.k * cpu_per_unit
    if remaining:
        cost += layout.k * cpu_per_unit
    return cost


def network_cost(spec, nbytes) -> float:
    """Formula 5: |D|_b / |packet|_b packets through the switch."""
    return spec.transfer_s(nbytes)


# ---------------------------------------------------------------------------
# per-operator CPU constants
# ---------------------------------------------------------------------------

def transform_cpu_per_unit(spec, layout) -> float:
    return spec.transform_base_s + spec.transform_per_nnz_s * layout.nnz_per_row


def compute_cpu_per_unit(spec, layout) -> float:
    return spec.compute_base_s + spec.compute_per_nnz_s * layout.nnz_per_row


def update_cpu(spec, layout) -> float:
    return spec.update_per_dim_s * layout.d


def converge_cpu(spec, layout) -> float:
    return spec.converge_per_dim_s * layout.d


# ---------------------------------------------------------------------------
# the plan cost model
# ---------------------------------------------------------------------------

class CostModel:
    """Assembles formulas 3-9 into per-plan cost estimates."""

    def __init__(self, spec):
        self.spec = spec

    # -- helpers --------------------------------------------------------
    def _fits_cache(self, nbytes) -> bool:
        return nbytes <= self.spec.cache_bytes

    def _weight_bytes(self, layout) -> int:
        return layout.d * 8

    def one_time_cost(self, plan, stats) -> dict:
        """Costs paid once, before the loop (Stage; eager Transform)."""
        spec = self.spec
        breakdown = {}
        # Stage: driver-local parameter initialisation.
        breakdown["stage"] = spec.local_overhead_s

        if plan.transform_mode == "eager":
            text = layout_for(spec, stats, "text")
            binary = layout_for(spec, stats, "binary")
            cost = io_cost(spec, text, in_memory=False)
            cost += cpu_cost(spec, text, transform_cpu_per_unit(spec, text))
            # Parsed units are written into executor cache memory.
            cost += binary.bytes_total / spec.page_bytes * spec.page_io_mem_s \
                / spec.cap
            if text.p > 1:
                cost += spec.job_overhead_s
            breakdown["transform"] = cost
        return breakdown

    # -- per-iteration components ---------------------------------------
    @staticmethod
    def _algorithm_terms(algorithm):
        """The algorithm's CostTerms, or None when they are the identity
        (or the algorithm is unregistered -- custom operator bundles)."""
        spec = gd_registry.ALGORITHMS.get(algorithm)
        if spec is None or spec.cost.is_identity():
            return None
        return spec.cost

    def per_iteration_cost(self, plan, stats) -> dict:
        """Per-iteration breakdown {phase: seconds} for a plan.

        When the algorithm's registered spec declares non-identity
        :class:`~repro.gd.spec.CostTerms`, their correction lands in an
        extra ``"algorithm"`` phase: the per-iteration multiplier scales
        the shape-derived base, ``extra_update_cost_factor`` adds
        multiples of the Update CPU cost, and ``full_pass_fraction``
        re-prices that fraction of a stochastic plan's iterations at the
        full-batch per-iteration cost (SVRG-style anchor passes).
        """
        if plan.is_stochastic:
            breakdown = self._stochastic_iteration(plan, stats)
        else:
            breakdown = self._full_batch_iteration(plan, stats)
        terms = self._algorithm_terms(plan.algorithm)
        if terms is None:
            return breakdown
        spec = self.spec
        binary = layout_for(spec, stats, "binary")
        base = sum(breakdown.values())
        correction = base * (terms.per_iteration_multiplier - 1.0)
        correction += terms.extra_update_cost_factor * update_cpu(spec, binary)
        if terms.full_pass_fraction > 0.0 and plan.is_stochastic:
            full = sum(self._full_batch_iteration(plan, stats).values())
            correction += terms.full_pass_fraction * max(0.0, full - base)
        breakdown["algorithm"] = correction
        return breakdown

    def _full_batch_iteration(self, plan, stats) -> dict:
        """Formula 7's T-multiplied term: Compute + Update + Converge + Loop."""
        spec = self.spec
        binary = layout_for(spec, stats, "binary")
        cached = self._fits_cache(binary.bytes_total)
        distributed = binary.p > 1

        breakdown = {}
        compute = io_cost(spec, binary, in_memory=cached)
        compute += cpu_cost(spec, binary, compute_cpu_per_unit(spec, binary))
        if distributed:
            compute += spec.job_overhead_s
        breakdown["compute"] = compute

        update = update_cpu(spec, binary)
        if distributed:
            update += network_cost(spec, binary.p * self._weight_bytes(binary))
            update += network_cost(spec, self._weight_bytes(binary)) * math.ceil(
                math.log2(max(2, spec.n_nodes))
            )  # weight broadcast for the next iteration
        breakdown["update"] = update
        breakdown["converge"] = converge_cpu(spec, binary) + spec.local_overhead_s
        breakdown["loop"] = spec.loop_s + spec.iteration_overhead_s
        return breakdown

    def _stochastic_iteration(self, plan, stats) -> dict:
        spec = self.spec
        m = plan.effective_batch_size
        # The representation read inside the loop: lazy plans sample raw
        # text units; eager plans sample parsed binary units.
        loop_repr = "text" if plan.transform_mode == "lazy" else "binary"
        loop_layout = layout_for(spec, stats, loop_repr)
        cached = (
            plan.transform_mode == "eager"
            and self._fits_cache(loop_layout.bytes_total)
        )
        distributed = loop_layout.p > 1

        local_parallelism = spec.slots_per_node if distributed else 1
        breakdown = {}
        breakdown["sample"] = self._sample_cost(
            plan, loop_layout, m, cached, distributed
        )

        if plan.transform_mode == "lazy":
            breakdown["transform"] = (
                m * transform_cpu_per_unit(spec, loop_layout)
                / local_parallelism
            )

        if plan.sampling == "bernoulli" and distributed:
            # Gradient computed where the sampled units live; partials
            # aggregated at the driver (the paper's distributed MGD path).
            compute = m * compute_cpu_per_unit(spec, loop_layout) / spec.cap
            update = update_cpu(spec, loop_layout)
            update += network_cost(
                spec, loop_layout.p * self._weight_bytes(loop_layout)
            )
            update += network_cost(spec, self._weight_bytes(loop_layout))
        else:
            # Mix-based plan (Appendix D): the gradient is computed
            # data-locally on the sampled partition's executor; the model
            # travels out and the partial gradient travels back.
            compute = m * compute_cpu_per_unit(spec, loop_layout) \
                / local_parallelism
            update = update_cpu(spec, loop_layout)
            if distributed:
                update += 2 * network_cost(
                    spec, self._weight_bytes(loop_layout)
                )
        breakdown["compute"] = compute
        breakdown["update"] = update
        breakdown["converge"] = converge_cpu(spec, loop_layout) + spec.local_overhead_s
        breakdown["loop"] = spec.loop_s + spec.iteration_overhead_s
        return breakdown

    def _sample_cost(self, plan, layout, m, cached, distributed) -> float:
        """Per-iteration cost of the chosen sampling strategy."""
        spec = self.spec
        if plan.sampling == "bernoulli":
            # Full scan with an inclusion test per unit; expected number
            # of scans accounts for possibly-empty Poisson(m) samples.
            retry = 1.0 / (1.0 - math.exp(-m)) if m < 50 else 1.0
            cost = io_cost(spec, layout, in_memory=cached)
            cost += cpu_cost(spec, layout, spec.sample_test_s)
            if distributed:
                cost += spec.job_overhead_s
            return retry * cost

        page_io = spec.page_io_mem_s if cached else spec.page_io_disk_s
        seek = spec.seek_mem_s if cached else spec.seek_disk_s
        batch_bytes = m * layout.bytes_per_row
        cost = 0.0
        if plan.sampling == "random":
            pages_each = spec.pages_in(int(math.ceil(layout.bytes_per_row)))
            cost += m * (seek + pages_each * page_io)
        elif plan.sampling == "shuffle":
            # One-partition shuffle amortised over the k/m iterations it
            # serves, plus the sequential cursor read of the batch.
            shuffle = seek + layout.partition_bytes / spec.page_bytes * page_io
            shuffle += layout.k * spec.shuffle_per_row_s
            shuffle += layout.partition_bytes / spec.page_bytes * spec.page_io_mem_s
            iterations_served = max(1.0, layout.k / m)
            cost += shuffle / iterations_served
            cost += batch_bytes / spec.page_bytes * page_io
        else:  # pragma: no cover - plans validate sampling names
            raise PlanError(f"unknown sampling {plan.sampling!r}")
        if distributed:
            # One Spark job per iteration drives the data-local sample.
            cost += spec.job_overhead_s
        return cost

    # -- totals (formulas 7-9) ------------------------------------------
    def estimate(self, plan, stats, iterations) -> tuple:
        """(one_time_s, per_iteration_s, total_s, breakdown).

        ``breakdown`` maps ``"one_time:<phase>"`` and ``"iter:<phase>"``
        to seconds.
        """
        one_time = self.one_time_cost(plan, stats)
        per_iter = self.per_iteration_cost(plan, stats)
        one_time_s = sum(one_time.values())
        per_iter_s = sum(per_iter.values())
        total = one_time_s + iterations * per_iter_s
        breakdown = {f"one_time:{k}": v for k, v in one_time.items()}
        breakdown.update({f"iter:{k}": v for k, v in per_iter.items()})
        return one_time_s, per_iter_s, total, breakdown

    # -- vectorized totals over a whole plan space ----------------------
    def estimate_batch(self, plans, stats, iterations) -> "BatchCostEstimate":
        """Cost every plan in one NumPy pass over the plan space.

        ``iterations`` is a per-plan sequence of iteration counts (the
        T(epsilon) estimates).  The formulas are the same as
        :meth:`estimate`; only the evaluation strategy changes: all
        plan-dependent quantities become arrays indexed by plan, so the
        optimizer costs an arbitrarily large search space without a
        Python loop per plan.  Rankings are identical to the per-plan
        path.
        """
        spec = self.spec
        plans = tuple(plans)
        n = len(plans)
        iters = np.asarray(list(iterations), dtype=float)
        if iters.shape != (n,):
            raise PlanError(
                f"estimate_batch needs one iteration count per plan "
                f"({n} plans, iterations shape {iters.shape})"
            )
        if n == 0:
            empty = np.zeros(0)
            return BatchCostEstimate(plans, iters, empty, empty, empty, {})

        text = layout_for(spec, stats, "text")
        binary = layout_for(spec, stats, "binary")

        # Per-plan masks and batch sizes.
        stoch = np.fromiter((p.is_stochastic for p in plans), bool, n)
        eager = np.fromiter(
            (p.transform_mode == "eager" for p in plans), bool, n
        )
        lazy = ~eager
        bern = np.fromiter((p.sampling == "bernoulli" for p in plans), bool, n)
        rand = np.fromiter((p.sampling == "random" for p in plans), bool, n)
        shuf = np.fromiter((p.sampling == "shuffle" for p in plans), bool, n)
        if bool(np.any(stoch & ~(bern | rand | shuf))):  # pragma: no cover
            raise PlanError("unknown sampling strategy in plan batch")
        # Placeholder m=1 for full-batch plans keeps divisions finite;
        # every use is masked by ``stoch``.
        m = np.fromiter(
            (float(p.effective_batch_size or 1) for p in plans), float, n
        )

        # Loop-representation context, selected per plan: eager plans
        # read binary units inside the loop, lazy plans raw text units.
        bin_cached = self._fits_cache(binary.bytes_total)
        bin_dist = binary.p > 1
        text_dist = text.p > 1

        def pick(bin_val, text_val):
            return np.where(eager, bin_val, text_val)

        distributed = pick(bin_dist, text_dist)
        local_par = pick(
            spec.slots_per_node if bin_dist else 1,
            spec.slots_per_node if text_dist else 1,
        )
        seek = pick(
            spec.seek_mem_s if bin_cached else spec.seek_disk_s,
            spec.seek_disk_s,
        )
        page_io = pick(
            spec.page_io_mem_s if bin_cached else spec.page_io_disk_s,
            spec.page_io_disk_s,
        )
        pages_each = pick(
            spec.pages_in(int(math.ceil(binary.bytes_per_row))),
            spec.pages_in(int(math.ceil(text.bytes_per_row))),
        )
        ccpu = pick(
            compute_cpu_per_unit(spec, binary),
            compute_cpu_per_unit(spec, text),
        )
        bytes_per_row = pick(binary.bytes_per_row, text.bytes_per_row)
        part_bytes = pick(binary.partition_bytes, text.partition_bytes)
        k = pick(binary.k, text.k)
        job = np.where(distributed, spec.job_overhead_s, 0.0)

        # Sample (stochastic plans only).
        bern_base = io_cost(spec, binary, in_memory=bin_cached)
        bern_base += cpu_cost(spec, binary, spec.sample_test_s)
        if bin_dist:
            bern_base += spec.job_overhead_s
        retry = np.where(m < 50, 1.0 / (1.0 - np.exp(-m)), 1.0)
        sample_bern = retry * bern_base
        sample_rand = m * (seek + pages_each * page_io) + job
        shuffle_once = (
            seek
            + part_bytes / spec.page_bytes * page_io
            + k * spec.shuffle_per_row_s
            + part_bytes / spec.page_bytes * spec.page_io_mem_s
        )
        served = np.maximum(1.0, k / m)
        sample_shuf = (
            shuffle_once / served
            + (m * bytes_per_row) / spec.page_bytes * page_io
            + job
        )
        sample = np.select(
            [bern, rand, shuf], [sample_bern, sample_rand, sample_shuf], 0.0
        )

        # Lazy plans parse the sampled units inside the loop.
        transform_iter = np.where(
            lazy & stoch,
            m * transform_cpu_per_unit(spec, text) / local_par,
            0.0,
        )

        # Compute + Update (the two distribution-shape branches).
        wb = self._weight_bytes(binary)
        ucpu = update_cpu(spec, binary)
        net_partials = network_cost(spec, binary.p * wb)
        net_weights = network_cost(spec, wb)
        bern_dist_mask = bern & bin_dist
        compute_st = np.where(
            bern_dist_mask,
            m * compute_cpu_per_unit(spec, binary) / spec.cap,
            m * ccpu / local_par,
        )
        update_st = np.where(
            bern_dist_mask,
            ucpu + net_partials + net_weights,
            ucpu + np.where(distributed, 2 * net_weights, 0.0),
        )
        converge = converge_cpu(spec, binary) + spec.local_overhead_s
        loop = spec.loop_s + spec.iteration_overhead_s

        # Full-batch components (identical for every full-batch plan, so
        # one scalar evaluation through the per-plan path suffices).
        fb_compute = fb_update = fb_converge = fb_loop = 0.0
        fb_indices = np.flatnonzero(~stoch)
        if fb_indices.size:
            # Shape-only base costs; algorithm CostTerms corrections are
            # applied per plan below.
            fb = self._full_batch_iteration(plans[fb_indices[0]], stats)
            fb_compute = fb["compute"]
            fb_update = fb["update"]
            fb_converge = fb["converge"]
            fb_loop = fb["loop"]

        compute_all = np.where(stoch, compute_st, fb_compute)
        update_all = np.where(stoch, update_st, fb_update)
        converge_all = np.where(stoch, converge, fb_converge)
        loop_all = np.where(stoch, loop, fb_loop)
        sample = np.where(stoch, sample, 0.0)

        per_iter = np.where(
            stoch,
            sample + transform_iter + compute_st + update_st
            + converge + loop,
            fb_compute + fb_update + fb_converge + fb_loop,
        )

        # Algorithm CostTerms corrections (identical math to the scalar
        # path in per_iteration_cost; identity terms contribute nothing
        # and skip the extra component entirely).
        mult = np.ones(n)
        extra = np.zeros(n)
        fpf = np.zeros(n)
        nonid = np.zeros(n, dtype=bool)
        for idx, p in enumerate(plans):
            terms = self._algorithm_terms(p.algorithm)
            if terms is not None:
                nonid[idx] = True
                mult[idx] = terms.per_iteration_multiplier
                extra[idx] = terms.extra_update_cost_factor
                fpf[idx] = terms.full_pass_fraction
        if bool(nonid.any()):
            full_total = fb_compute + fb_update + fb_converge + fb_loop
            if not fb_indices.size and bool((fpf > 0).any()):
                # No full-batch plan in the batch: evaluate the scalar
                # full-batch base once (it depends only on the dataset).
                ref = plans[int(np.flatnonzero(fpf > 0)[0])]
                full_total = sum(self._full_batch_iteration(ref, stats).values())
            correction = per_iter * (mult - 1.0)
            correction += extra * ucpu
            correction += np.where(
                stoch, fpf * np.maximum(0.0, full_total - per_iter), 0.0
            )
            correction = np.where(nonid, correction, 0.0)
            per_iter = per_iter + correction

        # One-time costs: Stage always; eager Transform (same scalar for
        # every eager plan).
        stage = spec.local_overhead_s
        transform_once = 0.0
        eager_indices = np.flatnonzero(eager)
        if eager_indices.size:
            transform_once = self.one_time_cost(
                plans[eager_indices[0]], stats
            ).get("transform", 0.0)
        one_time = np.where(eager, stage + transform_once, stage)

        total = one_time + iters * per_iter

        everywhere = np.ones(n, dtype=bool)
        components = {
            "one_time:stage": (everywhere, np.full(n, stage)),
            "one_time:transform": (
                eager,
                np.where(eager, transform_once, 0.0),
            ),
            "iter:sample": (stoch, sample),
            "iter:transform": (lazy & stoch, transform_iter),
            "iter:compute": (everywhere, compute_all),
            "iter:update": (everywhere, update_all),
            "iter:converge": (everywhere, converge_all),
            "iter:loop": (everywhere, loop_all),
        }
        if bool(nonid.any()):
            components["iter:algorithm"] = (nonid, correction)
        return BatchCostEstimate(
            plans=plans,
            iterations=iters,
            one_time_s=one_time,
            per_iteration_s=per_iter,
            total_s=total,
            components=components,
        )


@dataclasses.dataclass
class BatchCostEstimate:
    """Vectorized :meth:`CostModel.estimate` results for many plans.

    Arrays are indexed by plan position.  ``components`` maps breakdown
    keys (``"one_time:<phase>"`` / ``"iter:<phase>"``) to an
    ``(applicability_mask, values)`` pair so per-plan breakdown dicts can
    be reassembled without recomputing any cost.
    """

    plans: tuple
    iterations: np.ndarray
    one_time_s: np.ndarray
    per_iteration_s: np.ndarray
    total_s: np.ndarray
    components: dict

    def __len__(self) -> int:
        return len(self.plans)

    def breakdown(self, i) -> dict:
        """The :meth:`CostModel.estimate` breakdown dict for plan ``i``."""
        return {
            name: float(values[i])
            for name, (mask, values) in self.components.items()
            if mask[i]
        }

    def argmin(self) -> int:
        """Index of the cheapest plan."""
        return int(np.argmin(self.total_s))
