"""GD execution plans (Section 6, Figure 5).

A :class:`GDPlan` fixes the three *physical* choices the optimizer
searches over:

* which GD algorithm computes the gradient (BGD / MGD / SGD, or any
  registered stochastic extension),
* **transformation mode** -- eager (Transform the whole dataset before
  the loop) vs lazy (commute Transform after Sample, parsing only the
  sampled units each iteration),
* **sampling strategy** -- Bernoulli / random-partition /
  shuffled-partition (stochastic algorithms only).

:class:`TrainingSpec` carries the *logical* task parameters (gradient,
step size, tolerance, iteration cap) shared by every plan in a search.
"""

from __future__ import annotations

import dataclasses

from repro.cluster.sampling import SAMPLER_NAMES
from repro.errors import PlanError
from repro.gd import registry as gd_registry

TRANSFORM_MODES = ("eager", "lazy")


@dataclasses.dataclass(frozen=True)
class GDPlan:
    """One point of the optimizer's search space."""

    algorithm: str
    transform_mode: str = "eager"
    sampling: str | None = None
    batch_size: int | None = None

    def __post_init__(self):
        info = gd_registry.info(self.algorithm)  # validates the name
        if self.transform_mode not in TRANSFORM_MODES:
            raise PlanError(
                f"transform_mode must be one of {TRANSFORM_MODES}, "
                f"got {self.transform_mode!r}"
            )
        if info.stochastic:
            if self.sampling is None:
                raise PlanError(
                    f"{self.algorithm} plans require a sampling strategy"
                )
            if self.sampling not in SAMPLER_NAMES:
                raise PlanError(
                    f"unknown sampling strategy {self.sampling!r}; expected "
                    f"one of {SAMPLER_NAMES}"
                )
            if self.transform_mode == "lazy" and self.sampling == "bernoulli":
                # "Our optimizer also discards the lazy-transformation plan
                # with Bernoulli sampling, because Bernoulli sampling goes
                # through all the data anyways." (Section 6)
                raise PlanError(
                    "lazy transformation with Bernoulli sampling is never "
                    "beneficial and is excluded from the plan space"
                )
        else:
            if self.sampling is not None:
                raise PlanError(
                    f"{self.algorithm} is a full-batch algorithm; it does "
                    "not take a sampling strategy"
                )
            if self.transform_mode == "lazy":
                # BGD touches every unit every iteration; lazy would
                # re-parse the full dataset per iteration.
                raise PlanError(
                    "full-batch plans must use eager transformation"
                )
        if self.batch_size is not None and self.batch_size < 1:
            raise PlanError("batch_size must be >= 1")

    @property
    def info(self) -> gd_registry.AlgorithmInfo:
        return gd_registry.info(self.algorithm)

    @property
    def is_stochastic(self) -> bool:
        return self.info.stochastic

    @property
    def effective_batch_size(self) -> int | None:
        """Sample size per iteration (None for full-batch plans)."""
        if not self.is_stochastic:
            return None
        if self.batch_size is not None:
            return self.batch_size
        return self.info.default_batch_size

    @property
    def label(self) -> str:
        """Human-readable plan name, e.g. ``"SGD-lazy-shuffle"``."""
        parts = [self.algorithm.upper()]
        if self.is_stochastic:
            parts.append(self.transform_mode)
            parts.append(self.sampling)
        return "-".join(parts)

    def __str__(self):
        return self.label


@dataclasses.dataclass(frozen=True)
class TrainingSpec:
    """Logical task parameters shared across all candidate plans."""

    task: str = "classification"
    step_size: object = 1.0
    tolerance: float = 1e-3
    max_iter: int = 1000
    convergence: str = "l1"
    l2: float = 0.0
    #: Optional wall budget on *simulated* training time, from the
    #: declarative ``having time`` clause.
    time_budget_s: float | None = None
    seed: int = 0

    def __post_init__(self):
        if self.tolerance <= 0:
            raise PlanError("tolerance must be positive")
        if self.max_iter < 1:
            raise PlanError("max_iter must be >= 1")
        if self.time_budget_s is not None and self.time_budget_s <= 0:
            raise PlanError("time budget must be positive")

    def gradient(self):
        """Materialise the task gradient (Table 3 + optional L2)."""
        from repro.gd.gradients import task_gradient

        return task_gradient(self.task, l2=self.l2)
