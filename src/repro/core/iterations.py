"""Speculation-based iterations estimator (Section 5, Algorithm 1).

    Input : desired tolerance e_d, speculation tolerance e_s,
            speculation time budget B, dataset D
    Output: estimated number of iterations T(e_d)

    1. D' <- sample of D
    2. run the GD algorithm on D' collecting (iteration, error) pairs
       until error <= e_s or the budget B is consumed
    3. fit T(e) = a/e and return T(e_d) = a / e_d

Defaults follow the paper: speculation tolerance 0.05, a small fixed
sample (the experiments use 1,000 data units and a 10 s budget; this
laptop-scale reproduction defaults to a 2 s wall budget).  "MGD and SGD
take their data samples from sample D' and not from the input dataset D.
BGD runs over the entire D'."
"""

from __future__ import annotations

import contextvars
import dataclasses
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import numpy as np

from repro.core.curve_fit import FittedCurve, fit_error_sequence
from repro.errors import EstimationError, ReproError
from repro.gd import registry as gd_registry
from repro.obs import span


@dataclasses.dataclass
class IterationsEstimate:
    """Estimate of T(e_d) for one GD algorithm."""

    algorithm: str
    target_tolerance: float
    estimated_iterations: int
    curve: FittedCurve
    #: (iteration, error) pairs observed during speculation.
    speculation_errors: np.ndarray
    speculation_iterations: int
    speculation_wall_s: float
    #: True when speculation itself already reached the target tolerance,
    #: in which case the estimate is the observed iteration count.
    observed_directly: bool = False


@dataclasses.dataclass
class SpeculationSettings:
    """Knobs of Algorithm 1 (user/administrator adjustable, Section 5)."""

    sample_size: int = 1000
    speculation_tolerance: float = 0.05
    time_budget_s: float = 2.0
    #: Error-sequence model.  The paper's main text fits T(e) = a/e; its
    #: Appendix E fits the observed curve shape under other step sizes as
    #: well, so the default here is the generalised power law a/i^p
    #: (p = 1 recovers the paper's model exactly).
    model: str = "power"
    #: Iteration cap for one speculative run, so tiny wall budgets still
    #: terminate deterministically in tests.
    max_speculation_iters: int = 5000
    min_points_for_fit: int = 5


class SpeculativeEstimator:
    """Runs Algorithm 1 for each GD algorithm on a shared sample D'.

    ``max_workers`` controls how many per-algorithm speculative trials
    run concurrently in :meth:`estimate_all`.  The trials are
    independent -- each draws its own RNG from the fixed seed and shares
    the same pre-drawn D' -- so results match the sequential order
    *provided every trial terminates by tolerance or iteration cap*;
    when the wall-clock ``time_budget_s`` is what stops a trial, thread
    contention can shave iterations off it relative to a sequential run.
    The default (``1``) therefore keeps the legacy sequential,
    fully-reproducible behavior; pass ``"auto"`` for one thread per
    algorithm up to the CPU count (what the serving layer uses), an
    explicit thread count, or ``"process"`` for a process pool.

    ``"process"`` sidesteps the GIL entirely (the thread pool only helps
    while numpy's BLAS work releases it), at the price of pickling the
    sample and the gradient to the workers.  When anything in the
    payload cannot be pickled (e.g. a closure-based custom gradient),
    :meth:`estimate_all` transparently falls back to the thread pool.
    """

    def __init__(self, settings=None, seed=0, max_workers=1,
                 model_overrides=None):
        self.settings = settings or SpeculationSettings()
        self.seed = seed
        self.max_workers = max_workers
        #: Per-algorithm error-curve family overrides ({algorithm:
        #: model name}), e.g. fed back from the learned model's
        #: curve-family votes.  Applied after any registry-level
        #: speculation overrides, before fitting.
        self.model_overrides = dict(model_overrides or {})

    # ------------------------------------------------------------------
    def take_sample(self, X, y, rng=None):
        """Line 1: D' <- sample on D (uniform, without replacement)."""
        rng = rng if rng is not None else np.random.default_rng(self.seed)
        n = X.shape[0]
        size = min(self.settings.sample_size, n)
        idx = rng.choice(n, size=size, replace=False)
        return X[idx], y[idx]

    def estimate(
        self,
        X,
        y,
        gradient,
        algorithm,
        target_tolerance,
        step_size=1.0,
        batch_size=None,
        convergence="l1",
        sample=None,
    ) -> IterationsEstimate:
        """Estimate T(target_tolerance) for one algorithm.

        ``sample`` may carry a pre-drawn (X', y') so that all algorithms
        speculate on the same D' (as Algorithm 1 prescribes).
        """
        if target_tolerance <= 0:
            raise EstimationError("target tolerance must be positive")
        cfg = self.settings
        overrides = gd_registry.speculation_overrides(algorithm)
        if overrides:
            # A spec may tune Algorithm 1's knobs for its own convergence
            # profile (e.g. a longer budget for slow-start algorithms).
            cfg = dataclasses.replace(cfg, **overrides)
        family = self.model_overrides.get(algorithm)
        if family:
            # Learned per-algorithm curve family (adaptive refits that
            # kept preferring a different family voted it in).
            cfg = dataclasses.replace(cfg, model=family)
        rng = np.random.default_rng(self.seed)
        Xs, ys = sample if sample is not None else self.take_sample(X, y, rng)

        errors = []

        def collect(i, w, delta):
            errors.append(delta)
            return delta <= cfg.speculation_tolerance

        start = time.perf_counter()
        result = gd_registry.run(
            algorithm,
            Xs,
            ys,
            gradient,
            batch_size=batch_size,
            step_size=step_size,
            tolerance=min(target_tolerance, cfg.speculation_tolerance) / 10,
            max_iter=cfg.max_speculation_iters,
            convergence=convergence,
            rng=rng,
            time_budget_s=cfg.time_budget_s,
            iteration_callback=collect,
        )
        wall = time.perf_counter() - start
        observations = np.column_stack(
            [np.arange(1, len(errors) + 1), np.asarray(errors)]
        )

        # If speculation itself got to the target, report what we saw.
        reached = [i for i, e in enumerate(errors, start=1) if e < target_tolerance]
        if reached:
            curve = self._safe_fit(errors)
            return IterationsEstimate(
                algorithm=algorithm,
                target_tolerance=target_tolerance,
                estimated_iterations=reached[0],
                curve=curve,
                speculation_errors=observations,
                speculation_iterations=result.iterations,
                speculation_wall_s=wall,
                observed_directly=True,
            )

        if len(errors) < cfg.min_points_for_fit:
            raise EstimationError(
                f"speculation for {algorithm} produced only {len(errors)} "
                f"observations (need {cfg.min_points_for_fit}); increase the "
                "time budget or the speculation tolerance"
            )
        curve = fit_error_sequence(errors, model=cfg.model)
        return IterationsEstimate(
            algorithm=algorithm,
            target_tolerance=target_tolerance,
            estimated_iterations=curve.iterations_for(target_tolerance),
            curve=curve,
            speculation_errors=observations,
            speculation_iterations=result.iterations,
            speculation_wall_s=wall,
        )

    def _safe_fit(self, errors):
        """Best-effort curve for reporting when we converged directly."""
        try:
            return fit_error_sequence(errors, model=self.settings.model)
        except EstimationError:
            # Degenerate sequences (e.g. one hinge step to zero delta)
            # still need a placeholder curve for the report.
            first = next((e for e in errors if e > 0), 1.0)
            return FittedCurve("inverse", (float(first),), 0.0, len(errors))

    # ------------------------------------------------------------------
    def estimate_all(
        self,
        X,
        y,
        gradient,
        target_tolerance,
        algorithms=gd_registry.CORE_ALGORITHMS,
        step_size=1.0,
        batch_sizes=None,
        convergence="l1",
        max_workers=None,
        on_error="raise",
    ) -> dict:
        """Run Algorithm 1 for every algorithm on one shared sample D'.

        Trials run concurrently in a thread pool (numpy releases the GIL
        for the underlying BLAS work); each algorithm seeds its own RNG
        from ``self.seed`` inside :meth:`estimate`, so the estimates do
        not depend on scheduling order (see the class docstring for the
        wall-budget caveat).

        ``on_error="skip"`` drops algorithms whose speculative trial
        cannot be fitted (a registered plugin may simply not converge on
        this workload's sample) instead of failing the whole sweep; the
        returned dict then only holds the algorithms that fitted.  When
        *every* algorithm fails, the first failure is raised regardless
        -- an empty estimate dict would just defer the error.
        """
        algorithms = tuple(algorithms)
        batch_sizes = batch_sizes or {}
        rng = np.random.default_rng(self.seed)
        sample = self.take_sample(X, y, rng)
        failures = {}

        def speculate(algorithm):
            with span("speculation", algorithm=algorithm) as trial_span:
                estimate = self.estimate(
                    X,
                    y,
                    gradient,
                    algorithm,
                    target_tolerance,
                    step_size=step_size,
                    batch_size=batch_sizes.get(algorithm),
                    convergence=convergence,
                    sample=sample,
                )
                trial_span.set(
                    "estimated_iterations", estimate.estimated_iterations
                )
                trial_span.set(
                    "speculation_iterations", estimate.speculation_iterations
                )
                trial_span.set(
                    "observed_directly", estimate.observed_directly
                )
                return estimate

        def speculate_tolerant(algorithm):
            try:
                return speculate(algorithm)
            except EstimationError as exc:
                if on_error != "skip":
                    raise
                failures[algorithm] = exc
                return None

        def finish(results) -> dict:
            results = {alg: est for alg, est in results.items()
                       if est is not None}
            if failures and not results:
                raise next(iter(failures.values()))
            return results

        workers = max_workers if max_workers is not None else self.max_workers
        use_processes = workers == "process"
        if workers in ("auto", "process"):
            workers = min(len(algorithms), os.cpu_count() or 1)
        workers = max(1, min(int(workers), len(algorithms) or 1))
        if use_processes and len(algorithms) > 1:
            try:
                return finish(self._estimate_all_processes(
                    workers, algorithms, sample, gradient, target_tolerance,
                    step_size, batch_sizes, convergence, failures,
                    tolerant=on_error == "skip",
                ))
            except ReproError:
                raise
            except Exception:
                # Unpicklable payload (closure gradients, exotic step
                # schedules) or a broken pool: threads still work.
                pass
        if workers == 1 or len(algorithms) <= 1:
            return finish(
                {alg: speculate_tolerant(alg) for alg in algorithms}
            )
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="speculate"
        ) as pool:
            # copy_context() carries the ambient trace context onto the
            # pool threads, so per-trial spans land in the request trace.
            futures = {
                alg: pool.submit(
                    contextvars.copy_context().run, speculate_tolerant, alg
                )
                for alg in algorithms
            }
            return finish(
                {alg: futures[alg].result() for alg in algorithms}
            )

    def _estimate_all_processes(
        self, workers, algorithms, sample, gradient, target_tolerance,
        step_size, batch_sizes, convergence, failures=None, tolerant=False,
    ) -> dict:
        """Fan the speculative trials over a process pool."""
        payloads = [
            (
                self.settings, self.seed, sample, gradient, alg,
                target_tolerance, step_size, batch_sizes.get(alg),
                convergence, self.model_overrides,
            )
            for alg in algorithms
        ]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_speculate_in_process, payload)
                for payload in payloads
            ]
            results = []
            try:
                for alg, future in zip(algorithms, futures):
                    try:
                        results.append(future.result())
                    except EstimationError as exc:
                        if not tolerant:
                            raise
                        if failures is not None:
                            failures[alg] = exc
                        results.append(None)
            except BrokenProcessPool:
                for future in futures:
                    future.cancel()
                raise
        return dict(zip(algorithms, results))


def _speculate_in_process(payload) -> IterationsEstimate:
    """Process-pool worker: one speculative trial, fully reconstructed.

    Module-level (picklable) on purpose.  The estimator is rebuilt from
    its settings/seed; the pre-drawn sample D' travels with the payload
    so every worker speculates on the same data, exactly like the
    thread/sequential paths.
    """
    (settings, seed, sample, gradient, algorithm, target_tolerance,
     step_size, batch_size, convergence, model_overrides) = payload
    estimator = SpeculativeEstimator(
        settings, seed=seed, model_overrides=model_overrides
    )
    Xs, ys = sample
    return estimator.estimate(
        Xs, ys, gradient, algorithm, target_tolerance,
        step_size=step_size, batch_size=batch_size,
        convergence=convergence, sample=sample,
    )
