"""Enumeration of the GD plan search space (Figure 5).

Combining transformation and sampling choices yields, for the three core
algorithms, exactly 11 plans:

    BGD : eager                                  (1 plan)
    MGD : eager x {bernoulli, random, shuffle}
          lazy  x {random, shuffle}              (5 plans)
    SGD : same five                              (5 plans)

"Our search space size is fully parameterized based on the number of GD
algorithms and optimizations that need to be evaluated" (Section 6):
passing extra registered stochastic algorithms (svrg, momentum, ...)
grows the space by five plans each.
"""

from __future__ import annotations

from repro.core.plans import GDPlan
from repro.gd import registry as gd_registry

#: The (transform_mode, sampling) combinations valid for stochastic plans.
STOCHASTIC_VARIANTS = (
    ("eager", "bernoulli"),
    ("eager", "random"),
    ("eager", "shuffle"),
    ("lazy", "random"),
    ("lazy", "shuffle"),
)


def plans_for_algorithm(algorithm, batch_size=None):
    """All valid plans for one algorithm.

    A spec may pin its own ``plan_variants`` (``(transform_mode,
    sampling)`` pairs); otherwise the Figure 5 defaults apply -- one
    eager plan for full-batch algorithms, the five stochastic variants
    for stochastic ones.
    """
    info = gd_registry.info(algorithm)
    variants = info.plan_variants
    if variants is None:
        variants = STOCHASTIC_VARIANTS if info.stochastic else (("eager", None),)
    return [
        GDPlan(algorithm, mode, sampling, batch_size)
        for mode, sampling in variants
    ]


def enumerate_plans(algorithms=gd_registry.CORE_ALGORITHMS, batch_sizes=None):
    """The full search space for the given algorithms.

    ``batch_sizes`` optionally maps algorithm name -> batch size override
    (e.g. ``{"mgd": 10_000}``).
    """
    batch_sizes = batch_sizes or {}
    plans = []
    for algorithm in algorithms:
        plans.extend(
            plans_for_algorithm(algorithm, batch_sizes.get(algorithm))
        )
    return plans


def space_size(algorithms=gd_registry.CORE_ALGORITHMS) -> int:
    """Number of plans the optimizer will cost for these algorithms."""
    return len(enumerate_plans(algorithms))
