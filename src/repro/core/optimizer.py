"""The cost-based GD optimizer (Sections 3, 6, 7).

Given a dataset and a training spec, the optimizer

1. estimates T(epsilon) for each candidate GD algorithm with the
   speculation-based iterations estimator (skipped -- "less than 100 msec"
   in the paper -- when the user fixed the iteration count),
2. enumerates the plan space of Figure 5,
3. costs every plan with the Section 7 cost model, and
4. picks the cheapest plan that satisfies the user's constraints,
   raising :class:`~repro.errors.ConstraintError` naming the constraint
   to revisit when none does (Appendix A semantics).

Like database optimizers, "the main goal of our optimizer is to avoid the
worst execution plans" (Section 3) -- correctness of the *ranking* matters
more than absolute accuracy.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.cost_model import CostModel
from repro.core.executor import execute_plan
from repro.core.iterations import SpeculativeEstimator
from repro.core.plan_space import enumerate_plans
from repro.core.result import OptimizationReport, PlanCostEstimate
from repro.errors import ConstraintError
from repro.gd.registry import CORE_ALGORITHMS
from repro.obs import span


class GDOptimizer:
    """Cost-based choice among GD execution plans."""

    def __init__(
        self,
        engine,
        estimator=None,
        algorithms=CORE_ALGORITHMS,
        batch_sizes=None,
        cost_model=None,
        calibration=None,
        learned=None,
    ):
        self.engine = engine
        self.estimator = estimator or SpeculativeEstimator()
        self.algorithms = tuple(algorithms)
        self.batch_sizes = dict(batch_sizes or {})
        self.cost_model = cost_model or CostModel(engine.spec)
        #: Optional :class:`~repro.runtime.calibration.CalibrationStore`.
        #: When set, learned per-(algorithm, cluster) correction factors
        #: scale the cost model's per-iteration estimates and the
        #: speculative iteration counts; an empty store is the identity.
        self.calibration = calibration
        #: Optional :class:`~repro.learned.mixed.MixedCostModel`.  For
        #: algorithms it gates in (enough training data), its blended
        #: factor replaces the EWMA one; for everything else the ranking
        #: is bit-identical to the calibration-only path.
        self.learned = learned

    # ------------------------------------------------------------------
    def optimize(self, dataset, training, fixed_iterations=None,
                 iteration_estimates=None) -> OptimizationReport:
        """Choose the best plan; returns the full :class:`OptimizationReport`.

        ``fixed_iterations`` short-circuits speculation with a known
        iteration count (the "run for exactly N iterations" query shape;
        the paper reports sub-100 ms optimization time for it).

        ``iteration_estimates`` short-circuits speculation with
        *precomputed* per-algorithm :class:`IterationsEstimate` results
        (e.g. the serving layer re-costing a cached workload after the
        calibration store learned new correction factors -- calibrated
        estimates without re-speculation).
        """
        with span(
            "plan_choice",
            fixed_iterations=fixed_iterations,
            precosted=iteration_estimates is not None,
        ) as choice_span:
            report = self._optimize(
                dataset, training, fixed_iterations, iteration_estimates
            )
            choice_span.set("chosen", str(report.chosen_plan))
            choice_span.set(
                "estimated_iterations", report.chosen.estimated_iterations
            )
            choice_span.set("estimated_total_s", report.chosen.total_s)
            # The "explain" record: the full ranked candidate table.
            choice_span.set("candidates", [
                {
                    "plan": str(candidate.plan),
                    "total_s": candidate.total_s,
                    "per_iteration_s": candidate.per_iteration_s,
                    "iterations": candidate.estimated_iterations,
                    "feasible": candidate.feasible,
                }
                for candidate in sorted(
                    report.candidates, key=lambda c: c.total_s
                )
            ])
            return report

    def _optimize(self, dataset, training, fixed_iterations=None,
                  iteration_estimates=None) -> OptimizationReport:
        start = time.perf_counter()
        speculation_sim_s = 0.0
        speculated = False

        if fixed_iterations is not None:
            iteration_estimates = None
            iters_for = {alg: int(fixed_iterations) for alg in self.algorithms}
        else:
            if iteration_estimates is None:
                # on_error="skip": a registered plugin whose error curve
                # cannot be fitted on this workload's sample drops out of
                # this optimization instead of failing it (the sweep
                # still raises when *no* algorithm fits).
                iteration_estimates = self.estimator.estimate_all(
                    dataset.X,
                    dataset.y,
                    training.gradient(),
                    target_tolerance=training.tolerance,
                    algorithms=self.algorithms,
                    step_size=training.step_size,
                    batch_sizes=self.batch_sizes,
                    convergence=training.convergence,
                    on_error="skip",
                )
                # Collecting D' is one Spark job over the input (the paper
                # measures ~4s of the 4.6-8s optimization overhead here).
                speculation_sim_s = self._charge_speculation(dataset)
            speculated = True
            iters_for = {
                alg: min(est.estimated_iterations, training.max_iter)
                for alg, est in iteration_estimates.items()
            }

        corrections = self._corrections(dataset)
        mixed = self._mixed_factors(dataset, training, corrections)

        def iterations_factor(alg) -> float:
            if alg in mixed:
                return mixed[alg].iterations_factor
            return corrections[alg].iterations_factor if corrections else 1.0

        if (corrections or mixed) and speculated:
            # Learned iteration corrections apply only to speculative
            # estimates; a user-fixed count is a constraint, not a guess.
            iters_for = {
                alg: min(
                    max(1, int(round(count * iterations_factor(alg)))),
                    training.max_iter,
                )
                for alg, count in iters_for.items()
            }

        # Cost the whole plan space in one vectorized pass (the batch
        # path ranks identically to per-plan estimate() calls).  Only
        # algorithms with an iteration estimate are enumerated (ones
        # whose speculation was skipped have no T(epsilon) to cost).
        algorithms = tuple(a for a in self.algorithms if a in iters_for)
        plans = enumerate_plans(algorithms, self.batch_sizes)
        iterations = [iters_for[plan.algorithm] for plan in plans]
        batch = self.cost_model.estimate_batch(
            plans, dataset.stats, iterations
        )
        cost_factors = np.ones(len(plans))
        if corrections:
            cost_factors = np.array([
                corrections[plan.algorithm].cost_factor for plan in plans
            ])
        if mixed:
            for i, plan in enumerate(plans):
                if plan.algorithm in mixed:
                    cost_factors[i] = mixed[plan.algorithm].cost_factor
        per_iteration_s = batch.per_iteration_s * cost_factors
        total_s = batch.one_time_s + batch.iterations * per_iteration_s
        if training.time_budget_s is None:
            feasible_mask = [True] * len(plans)
        else:
            feasible_mask = (total_s <= training.time_budget_s).tolist()
        candidates = []
        for i, plan in enumerate(plans):
            breakdown = batch.breakdown(i)
            if cost_factors[i] != 1.0:
                # The *applied* factor, whichever source produced it:
                # the feedback loop composes observed ratios with this
                # slot, so the store keeps learning absolute ratios
                # whether the factor was EWMA-only or blended.
                breakdown["calibration:cost_factor"] = float(cost_factors[i])
            if (corrections or mixed) and speculated:
                iter_factor = iterations_factor(plan.algorithm)
                if iter_factor != 1.0:
                    breakdown["calibration:iterations_factor"] = float(
                        iter_factor
                    )
            if plan.algorithm in mixed:
                breakdown["learned:blend_weight"] = float(
                    mixed[plan.algorithm].blend_weight
                )
            candidates.append(PlanCostEstimate(
                plan=plan,
                estimated_iterations=iterations[i],
                one_time_s=float(batch.one_time_s[i]),
                per_iteration_s=float(per_iteration_s[i]),
                total_s=float(total_s[i]),
                breakdown=breakdown,
                feasible=feasible_mask[i],
            ))

        feasible = [c for c in candidates if c.feasible]
        if not feasible:
            best_total = min(c.total_s for c in candidates)
            raise ConstraintError(
                "time",
                f"no GD plan fits the {training.time_budget_s:.0f}s budget; "
                f"the cheapest plan needs an estimated {best_total:.0f}s -- "
                "revisit the time constraint (or relax epsilon/max_iter)",
            )
        chosen = min(feasible, key=lambda c: c.total_s)
        return OptimizationReport(
            chosen=chosen,
            candidates=candidates,
            iteration_estimates=iteration_estimates,
            optimizer_wall_s=time.perf_counter() - start,
            speculation_sim_s=speculation_sim_s,
            corrections=corrections or None,
        )

    def _corrections(self, dataset=None) -> dict:
        """Learned corrections per algorithm ({} without a store).

        When ``dataset`` is given its workload signature selects the
        store's workload-specific corrections (with the algorithm-level
        aggregate as fallback -- see
        :meth:`~repro.runtime.calibration.CalibrationStore.correction`).
        """
        if self.calibration is None:
            return {}
        workload = None
        if dataset is not None:
            from repro.runtime.calibration import workload_signature

            workload = workload_signature(dataset.stats)
        return {
            alg: self.calibration.correction(
                alg, self.engine.spec, workload=workload
            )
            for alg in self.algorithms
        }

    def _mixed_factors(self, dataset, training, corrections) -> dict:
        """Learned blended factors per gated-in algorithm ({} without a
        mixed model -- and for every algorithm short of training data,
        which keeps the fallback ranking bit-identical)."""
        if self.learned is None:
            return {}
        return self.learned.factors(
            self.algorithms,
            dataset.stats,
            self.engine.spec,
            epsilon=training.tolerance,
            batch_sizes=self.batch_sizes,
            corrections=corrections,
        )

    def _charge_speculation(self, dataset) -> float:
        """Charge the simulated cost of collecting the speculation sample."""
        engine = self.engine
        t0 = engine.clock
        sample_size = self.estimator.settings.sample_size
        row_bytes = dataset.stats.bytes_per_row(dataset.representation)
        if dataset.n_partitions > 1:
            engine.job("speculation")
        # Read + ship one sample's worth of raw units to the driver.
        engine.sequential_read(
            dataset, nbytes=sample_size * row_bytes, phase="speculation",
            new_segment=True,
        )
        engine.collect(int(sample_size * row_bytes), "speculation")
        return engine.clock - t0

    # ------------------------------------------------------------------
    def train(self, dataset, training, fixed_iterations=None, operators=None):
        """Optimize, then execute the chosen plan.

        Returns ``(report, result)``.  The speculative runs' wall time is
        charged into the simulated clock so Figure 8's "speculation +
        execution" bars can be reproduced.
        """
        report = self.optimize(dataset, training, fixed_iterations)
        report.speculation_sim_s += report.charge_speculation(self.engine)
        result = execute_plan(
            self.engine, dataset, report.chosen_plan, training, operators
        )
        return report, result
