"""Result types returned by the executor and the optimizer."""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass
class TrainResult:
    """Outcome of executing one GD plan on the simulated cluster."""

    plan: object
    weights: np.ndarray
    iterations: int
    converged: bool
    #: Per-iteration convergence deltas (the error sequence).
    deltas: np.ndarray
    #: Simulated seconds spent executing the plan (training time).
    sim_seconds: float
    #: Simulated seconds per phase label (transform/sample/compute/...).
    phase_seconds: dict
    #: Engine metrics snapshot (pages, seeks, network bytes, jobs, ...).
    metrics: dict
    #: True when a simulated time budget stopped the run early.
    timed_out: bool = False
    #: True when an execution monitor (e.g. the adaptive runtime's
    #: convergence monitor) requested a graceful stop mid-training.
    stopped_by_monitor: bool = False
    #: Carry-over :class:`~repro.gd.state.OptimizerState` snapshot at
    #: exit (schedule position, updater buffers, SVRG anchor, RNG
    #: stream); feeding it back via ``execute_plan(initial_state=...)``
    #: resumes the run bit-identically.  None for custom executors that
    #: predate state export.
    state: object = None

    @property
    def final_delta(self) -> float:
        return float(self.deltas[-1]) if len(self.deltas) else float("inf")

    def summary(self) -> str:
        if self.converged:
            status = "converged"
        elif self.timed_out:
            status = "TIMED OUT"
        elif self.stopped_by_monitor:
            status = "stopped by monitor"
        else:
            status = "max-iterations"
        return (
            f"{self.plan}: {self.iterations} iterations, {status}, "
            f"final delta {self.final_delta:.3g}, "
            f"simulated training time {self.sim_seconds:.2f}s"
        )


@dataclasses.dataclass
class PlanCostEstimate:
    """The optimizer's cost-model view of one candidate plan."""

    plan: object
    estimated_iterations: int
    one_time_s: float
    per_iteration_s: float
    total_s: float
    #: Component breakdown {phase: seconds-per-iteration or one-time}.
    breakdown: dict
    #: True when the plan satisfies the user's time constraint (if any).
    feasible: bool = True

    def summary(self) -> str:
        return (
            f"{self.plan}: est. {self.estimated_iterations} iters x "
            f"{self.per_iteration_s * 1e3:.3f} ms/iter + "
            f"{self.one_time_s:.2f}s one-time = {self.total_s:.2f}s"
            + ("" if self.feasible else "  [infeasible]")
        )


@dataclasses.dataclass
class OptimizationReport:
    """Everything the cost-based optimizer decided and why."""

    chosen: PlanCostEstimate
    candidates: list
    #: algorithm name -> IterationsEstimate (None when the user supplied
    #: a fixed iteration count and speculation was skipped).
    iteration_estimates: dict | None
    #: Wall-clock seconds the optimizer itself spent (speculation + costing).
    optimizer_wall_s: float
    #: Simulated seconds charged for speculation (sample collection job).
    speculation_sim_s: float
    #: algorithm -> applied calibration Correction (None when the
    #: optimizer ran without a calibration store).
    corrections: dict | None = None

    @property
    def calibrated(self) -> bool:
        """True when any non-identity correction factored into the costs."""
        return bool(self.corrections) and any(
            not c.is_identity for c in self.corrections.values()
        )

    @property
    def chosen_plan(self):
        return self.chosen.plan

    def speculation_wall_s(self) -> float:
        """Total wall seconds the speculative GD trials took (0 when
        speculation was skipped or estimates were precomputed)."""
        if not self.iteration_estimates:
            return 0.0
        return sum(
            est.speculation_wall_s
            for est in self.iteration_estimates.values()
        )

    def charge_speculation(self, engine, include_sample_collection=False):
        """Charge this report's speculation overhead into ``engine``.

        Every train path (direct, adaptive, service) must account the
        same way: the trials' wall time, plus -- when the engine did not
        itself run the optimization -- the already-simulated sample
        collection cost.  Returns the trial wall seconds.
        """
        wall = self.speculation_wall_s()
        seconds = wall
        if include_sample_collection:
            seconds += self.speculation_sim_s
        if seconds > 0:
            engine.charge(seconds, "speculation", jitter=False)
        return wall

    def ranking(self):
        """Candidates sorted by estimated total cost (feasible first)."""
        return sorted(
            self.candidates,
            key=lambda c: (not c.feasible, c.total_s),
        )

    def summary(self) -> str:
        lines = [
            f"chosen plan: {self.chosen.plan} "
            f"(estimated {self.chosen.total_s:.2f}s simulated)",
            f"optimizer overhead: {self.optimizer_wall_s:.2f}s wall, "
            f"{self.speculation_sim_s:.2f}s simulated",
            "candidates:",
        ]
        lines.extend(f"  {c.summary()}" for c in self.ranking())
        return "\n".join(lines)
