"""GD plan executor: real math on physical data, simulated time.

Runs a :class:`~repro.core.plans.GDPlan` against a
:class:`~repro.cluster.engine.SimulatedCluster`:

* every data touch charges the engine (IO waves, sampling strategies,
  network aggregation, job overheads) so ``TrainResult.sim_seconds`` is
  the plan's simulated training time, and
* every gradient/update/convergence decision is computed for real through
  the plan's operator bundle, so iteration counts and the learned model
  are genuine.

Operator placement follows Appendix D: an operator whose input spans more
than one partition runs distributed (waves + job overhead); otherwise it
runs driver-local.  Stochastic plans with random/shuffled sampling become
"mix-based" plans -- Sample runs on the cluster, the batch is collected,
and Compute/Update run at the driver -- exactly the SGD plan the paper
reports ML4all producing.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.sampling import FullScanSampler, make_sampler
from repro.core.context import Context
from repro.core.cost_model import (
    compute_cpu_per_unit,
    converge_cpu,
    layout_for,
    transform_cpu_per_unit,
    update_cpu,
)
from repro.core.reference_ops import svrg_is_anchor
from repro.core.result import TrainResult
from repro.errors import PlanError
from repro.gd import registry as gd_registry
from repro.gd.state import OptimizerState, capture_rng, restore_rng


class PlanExecutor:
    """Executes one GD plan on the simulated cluster.

    ``monitor`` is an optional execution observer (duck-typed; see
    :mod:`repro.runtime.telemetry`): after every iteration the executor
    calls ``monitor.on_iteration(iteration, delta, clock)``.  A truthy
    return value requests a *graceful stop* -- the loop exits with
    ``TrainResult.stopped_by_monitor`` set, keeping the current model
    state, which is how the adaptive runtime switches plans mid-flight.
    With ``monitor=None`` (the default) behaviour is bit-identical to
    the unobserved executor.

    ``initial_weights`` seeds the model vector after Stage runs, so a
    follow-up plan can resume from where a stopped one left off.

    ``initial_state`` additionally resumes the *rest* of the optimizer
    state -- the step-schedule position (global iteration offset),
    updater buffers, SVRG anchor cadence, convergence-criterion memory
    and the sampling RNG stream -- from an
    :class:`~repro.gd.state.OptimizerState` a previous run exported
    (every :class:`~repro.core.result.TrainResult` carries one).  With
    both set, stop-at-k + resume reproduces the uninterrupted run
    bit-identically for same-algorithm segments; a cross-algorithm
    resume applies whatever the transfer policy kept (see
    :meth:`OptimizerState.transfer_to`).
    """

    def __init__(self, engine, dataset, plan, training, operators=None,
                 monitor=None, initial_weights=None, initial_state=None,
                 checkpoint_every=None, checkpoint_callback=None):
        self.engine = engine
        self.dataset = dataset
        self.plan = plan
        self.training = training
        self.monitor = monitor
        if checkpoint_every is not None and checkpoint_every < 1:
            raise PlanError("checkpoint_every must be >= 1")
        #: Mid-run state export: every ``checkpoint_every`` *global*
        #: iterations the loop passes (and keeps going),
        #: ``checkpoint_callback(global_iteration, weights_copy,
        #: OptimizerState)`` fires.  Pure observation -- attaching it is
        #: behaviour-preserving -- but each exported snapshot resumes the
        #: run bit-identically, which is what makes crash-and-resume
        #: training jobs equivalent to uninterrupted ones.
        self.checkpoint_every = checkpoint_every
        self.checkpoint_callback = checkpoint_callback
        self.initial_weights = (
            None if initial_weights is None
            else np.array(initial_weights, dtype=float, copy=True)
        )
        self.initial_state = (
            OptimizerState.from_dict(initial_state)
            if isinstance(initial_state, dict) else initial_state
        )
        offset = (
            0 if self.initial_state is None
            else int(self.initial_state.iteration_offset)
        )
        self._iteration_offset = offset
        d = dataset.stats.d
        if operators is None:
            # The algorithm's registered spec decides the operator
            # bundle: its own make_operators factory when it has one,
            # the reference bundle (with the spec's updater) otherwise.
            operators = gd_registry.make_operators(
                plan, d=d, training=training, iteration_offset=offset,
            )
        self.ops = operators
        self._rng = np.random.default_rng(training.seed)
        if self.initial_state is not None:
            restore_rng(self._rng, self.initial_state.rng_state)

    # ------------------------------------------------------------------
    def run(self) -> TrainResult:
        engine, plan, ds = self.engine, self.plan, self.dataset
        spec = engine.spec
        training = self.training
        t0 = engine.clock
        phase0 = {k: v.sim_seconds for k, v in engine.metrics.phases.items()}

        context = Context()
        # Stage: driver-local initialisation (Listing 4).
        self.ops.stage.stage(context)
        engine.local_op("stage")
        if self.initial_weights is not None:
            staged = context.require("weights")
            if staged.shape != self.initial_weights.shape:
                raise PlanError(
                    f"initial_weights shape {self.initial_weights.shape} does "
                    f"not match the staged model shape {staged.shape}"
                )
            context.put("weights", self.initial_weights)

        # ---- preparation: eager vs lazy transformation ----------------
        if plan.transform_mode == "eager":
            loop_ds = ds.as_binary()
            text_layout = layout_for(spec, ds.stats, "text")
            engine.scan(
                ds,
                phase="transform",
                cpu_per_row_s=transform_cpu_per_unit(spec, text_layout),
                cache=False,
            )
            # Parsed units are written into executor cache memory.
            engine.charge(
                loop_ds.total_bytes / spec.page_bytes * spec.page_io_mem_s
                / spec.cap,
                "transform",
            )
            engine.cache.insert(loop_ds)
            X_full, y_full = self.ops.transform.transform(ds.X, ds.y, context)
        else:
            if not plan.is_stochastic:
                raise PlanError("full-batch plans cannot use lazy transformation")
            loop_ds = ds
            X_full, y_full = ds.X, ds.y

        loop_layout = layout_for(spec, ds.stats, loop_ds.representation)
        weight_bytes = ds.stats.weight_vector_bytes
        distributed = loop_ds.n_partitions > 1

        sampler = None
        if plan.is_stochastic:
            sampler = make_sampler(
                plan.sampling, engine, loop_ds, plan.effective_batch_size,
                rng=self._rng,
            )

        converge_imported = self._import_state(context, sampler)
        if not converge_imported:
            # Prime Converge with the initial weights so the first delta
            # compares Update's output against w0.
            self.ops.converge.converge(context.require("weights"), context)

        # A stochastic bundle may declare a ``full_batch_when(i, context)``
        # hook marking iterations that must run as full-batch passes
        # (SVRG anchors, Arc GD's gradient probes).  ``anchor_every`` is
        # the legacy duck-typed spelling of the SVRG cadence, honoured
        # for bundles that only set the attribute.
        full_batch_when = getattr(self.ops, "full_batch_when", None)
        if full_batch_when is None:
            anchor_every = getattr(self.ops, "anchor_every", None)
            if anchor_every is not None:
                def full_batch_when(i, context, _m=int(anchor_every)):
                    return svrg_is_anchor(i, context, _m)
        deltas = []
        converged = False
        timed_out = False
        stopped_by_monitor = False
        iterations = 0

        for i in range(1, training.max_iter + 1):
            context.put("iter", i)
            is_anchor = (
                full_batch_when is not None
                and full_batch_when(i, context)
            )
            if plan.is_stochastic and not is_anchor:
                aggregated = self._stochastic_iteration(
                    context, sampler, loop_ds, loop_layout, X_full, y_full,
                    weight_bytes, distributed,
                )
            else:
                aggregated = self._full_batch_iteration(
                    context, loop_ds, loop_layout, X_full, y_full,
                    weight_bytes, distributed,
                )

            w_new = self.ops.update.update(aggregated, context)
            engine.charge(update_cpu(spec, loop_layout), "update")

            delta = self.ops.converge.converge(w_new, context)
            engine.charge(
                converge_cpu(spec, loop_layout) + spec.local_overhead_s,
                "converge",
            )
            engine.charge(spec.loop_s + spec.iteration_overhead_s, "loop")
            deltas.append(delta)
            iterations = i

            # The monitor observes every iteration (telemetry); its stop
            # request is honoured only after the plan's own exit checks,
            # so convergence always wins over a mid-flight switch.
            stop_requested = (
                self.monitor is not None
                and bool(self.monitor.on_iteration(i, delta, engine.clock))
            )
            if delta < training.tolerance:
                converged = True
                break
            if not self.ops.loop.should_continue(delta, context):
                break
            if (
                training.time_budget_s is not None
                and engine.clock - t0 > training.time_budget_s
            ):
                timed_out = True
                break
            if stop_requested:
                stopped_by_monitor = True
                break
            if (
                self.checkpoint_every is not None
                and self.checkpoint_callback is not None
                and i < training.max_iter
                and (self._iteration_offset + i) % self.checkpoint_every == 0
            ):
                # Iterations the loop exits on are not exported here --
                # the TrainResult's own state snapshot covers them.
                self.checkpoint_callback(
                    self._iteration_offset + i,
                    context.require("weights").copy(),
                    self._export_state(context, sampler, i),
                )

        phase_seconds = {
            k: v.sim_seconds - phase0.get(k, 0.0)
            for k, v in engine.metrics.phases.items()
            if v.sim_seconds - phase0.get(k, 0.0) > 0
        }
        return TrainResult(
            plan=plan,
            weights=context.require("weights"),
            iterations=iterations,
            converged=converged,
            deltas=np.asarray(deltas),
            sim_seconds=engine.clock - t0,
            phase_seconds=phase_seconds,
            metrics=engine.metrics.snapshot(),
            timed_out=timed_out,
            stopped_by_monitor=stopped_by_monitor,
            state=self._export_state(context, sampler, iterations),
        )

    # ------------------------------------------------------------------
    def _import_state(self, context, sampler) -> bool:
        """Seed context/operators/sampler from ``initial_state``.

        Runs after Stage and the ``initial_weights`` injection.  All
        operator hooks are duck-typed so custom bundles degrade to a
        weights-only resume rather than crashing.  Returns True when the
        Converge operator's memory was restored (the caller then skips
        re-priming it).
        """
        state = self.initial_state
        if state is None:
            return False
        context.put("iteration_offset", self._iteration_offset)
        if state.updater_buffers and hasattr(self.ops.update,
                                             "load_updater_state"):
            if state.updater == getattr(self.ops.update, "updater_name",
                                        None):
                self.ops.update.load_updater_state(
                    state.updater_buffers, self.dataset.stats.d
                )
        namespace = getattr(self.ops, "state_namespace", None)
        import_hook = getattr(self.ops, "import_algorithm_state", None)
        if namespace is not None and import_hook is not None:
            payload = state.algorithm_state.get(namespace)
            if payload is not None:
                import_hook(context, payload)
        if sampler is not None and state.sampler is not None \
                and hasattr(sampler, "load_state"):
            sampler.load_state(state.sampler)
        if state.convergence is not None and hasattr(self.ops.converge,
                                                     "import_state"):
            self.ops.converge.import_state(state.convergence)
            return True
        return False

    def _export_state(self, context, sampler, iterations) -> OptimizerState:
        """Snapshot the run's carry-over state at exit (duck-typed;
        custom operator bundles export whatever hooks they provide)."""
        algorithm_state = {}
        namespace = getattr(self.ops, "state_namespace", None)
        export_hook = getattr(self.ops, "export_algorithm_state", None)
        if namespace is not None and export_hook is not None:
            payload = export_hook(context)
            if payload is not None:
                algorithm_state[namespace] = payload
        sampler_state = None
        if sampler is not None and hasattr(sampler, "state_dict"):
            sampler_state = sampler.state_dict() or None
        buffers = {}
        if hasattr(self.ops.update, "export_updater_state"):
            buffers = self.ops.update.export_updater_state()
        convergence = None
        if hasattr(self.ops.converge, "export_state"):
            convergence = self.ops.converge.export_state()
        return OptimizerState(
            iteration_offset=self._iteration_offset + iterations,
            updater=getattr(self.ops.update, "updater_name", "vanilla"),
            updater_buffers=buffers,
            algorithm_state=algorithm_state,
            convergence=convergence,
            rng_state=capture_rng(self._rng),
            sampler=sampler_state,
        )

    # ------------------------------------------------------------------
    def _full_batch_iteration(
        self, context, loop_ds, loop_layout, X_full, y_full,
        weight_bytes, distributed,
    ):
        """One BGD-style pass: distributed partial gradients, aggregate."""
        engine, spec = self.engine, self.engine.spec
        engine.scan(
            loop_ds,
            phase="compute",
            cpu_per_row_s=compute_cpu_per_unit(spec, loop_layout),
        )
        aggregated = None
        for part in loop_ds.partitions:
            Xp = X_full[part.phys_lo:part.phys_hi]
            yp = y_full[part.phys_lo:part.phys_hi]
            partial = self.ops.compute.compute(Xp, yp, context)
            aggregated = (
                partial if aggregated is None
                else self.ops.compute.combine(aggregated, partial)
            )
        if distributed:
            engine.aggregate(
                loop_ds.n_partitions, weight_bytes, phase="update"
            )
            engine.broadcast_weights(weight_bytes, phase="update")
        return aggregated

    def _stochastic_iteration(
        self, context, sampler, loop_ds, loop_layout, X_full, y_full,
        weight_bytes, distributed,
    ):
        """One Sample -> (lazy Transform) -> Compute pass.

        For random/shuffled sampling on a distributed dataset this is the
        mix-based plan of Appendix D: Sample (and lazy Transform, and the
        gradient) run *data-locally* on the executor holding the sampled
        partition -- parallel across that node's cores -- and only the
        partial gradient (a weight-sized vector) travels to the driver,
        where Update runs.  This is the Compute/Update separation the
        Bismarck baseline cannot express.
        """
        engine, spec, plan = self.engine, self.engine.spec, self.plan
        draw = sampler.draw()
        Xb, yb = X_full[draw.indices], y_full[draw.indices]
        local_parallelism = spec.slots_per_node if distributed else 1

        if plan.transform_mode == "lazy":
            engine.charge(
                draw.sim_size * transform_cpu_per_unit(spec, loop_layout)
                / local_parallelism,
                "transform",
            )
            Xb, yb = self.ops.transform.transform(Xb, yb, context)

        if plan.sampling == "bernoulli" and distributed:
            # Sampled units stay spread over the cluster: distributed
            # gradient with partial aggregation (the sampling scan
            # already launched the job).
            engine.charge(
                draw.sim_size * compute_cpu_per_unit(spec, loop_layout)
                / spec.cap,
                "compute",
            )
            engine.aggregate(
                loop_ds.n_partitions, weight_bytes, phase="update"
            )
            engine.broadcast_weights(weight_bytes, phase="update")
        else:
            if distributed:
                # One job per iteration: ship the model to the sampled
                # partition's executor, compute there, return the partial.
                engine.job("sample")
                engine.collect(weight_bytes, "update")
            engine.charge(
                draw.sim_size * compute_cpu_per_unit(spec, loop_layout)
                / local_parallelism,
                "compute",
            )
            if distributed:
                engine.collect(weight_bytes, "update")
        return self.ops.compute.compute(Xb, yb, context)


def execute_plan(engine, dataset, plan, training, operators=None,
                 monitor=None, initial_weights=None,
                 initial_state=None, checkpoint_every=None,
                 checkpoint_callback=None) -> TrainResult:
    """Convenience wrapper: build a :class:`PlanExecutor` and run it."""
    return PlanExecutor(
        engine, dataset, plan, training, operators,
        monitor=monitor, initial_weights=initial_weights,
        initial_state=initial_state, checkpoint_every=checkpoint_every,
        checkpoint_callback=checkpoint_callback,
    ).run()
