"""The Context: shared global variables of a GD plan.

The paper's operator UDFs communicate exclusively through a context object
("the context contains all global variables", Section 4.1; the Java
listings call ``context.getByKey`` / ``context.put``).  This is the Python
equivalent, with a tiny amount of sugar for the conventional keys.
"""

from __future__ import annotations

from repro.errors import PlanError


class Context:
    """Key-value store of a plan's global variables.

    Conventional keys used by the reference operators:

    ``weights``   current model vector
    ``step``      step-size schedule (callable i -> alpha_i)
    ``iter``      current iteration (1-based during the loop)
    ``tolerance`` convergence tolerance (epsilon)
    ``max_iter``  iteration cap
    """

    def __init__(self, initial=None):
        self._store = dict(initial or {})

    def get(self, key, default=None):
        """Value by key (the listings' ``context.getByKey``)."""
        return self._store.get(key, default)

    def require(self, key):
        """Value by key; raises :class:`PlanError` when missing."""
        try:
            return self._store[key]
        except KeyError:
            raise PlanError(
                f"context is missing required global variable {key!r}"
            ) from None

    def put(self, key, value):
        """Set a global variable (the listings' ``context.put``)."""
        self._store[key] = value

    def __contains__(self, key):
        return key in self._store

    def keys(self):
        return self._store.keys()

    def as_dict(self) -> dict:
        """A shallow copy of all globals (for inspection/tests)."""
        return dict(self._store)

    def __repr__(self):  # pragma: no cover - debugging aid
        keys = ", ".join(sorted(self._store))
        return f"<Context keys=[{keys}]>"
