"""Abstract syntax tree of the ML4all declarative language."""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class ColumnSpec:
    """A column selection like ``:2`` (single) or ``:4-20`` (range)."""

    start: int
    end: int | None = None  # inclusive; None means a single column

    def __str__(self):
        if self.end is None:
            return str(self.start)
        return f"{self.start}-{self.end}"


@dataclasses.dataclass(frozen=True)
class DataSource:
    """A dataset reference: path/name, optional parser, optional columns.

    ``run classification on libsvm(training.txt)`` yields
    ``DataSource("training.txt", parser="libsvm")``;
    ``input_data.txt:2, input_data.txt:4-20`` yields two sources whose
    columns identify the label and the features respectively (query Q2).
    """

    path: str
    parser: str | None = None
    columns: ColumnSpec | None = None


@dataclasses.dataclass(frozen=True)
class Constraints:
    """The ``having`` clause: time / epsilon / max iter (all optional)."""

    time_s: float | None = None
    epsilon: float | None = None
    max_iter: int | None = None


@dataclasses.dataclass(frozen=True)
class Controls:
    """The ``using`` clause: expert knobs for the optimizer (query Q3)."""

    algorithm: str | None = None
    convergence: str | None = None
    step: float | None = None
    sampler: str | None = None
    batch: int | None = None


@dataclasses.dataclass(frozen=True)
class RunStatement:
    """``[name =] run <task> on <sources> [having ...] [using ...];``"""

    task: str
    sources: tuple
    having: Constraints = Constraints()
    using: Controls = Controls()
    result_name: str | None = None


@dataclasses.dataclass(frozen=True)
class PersistStatement:
    """``persist <query-name> on <path>;``"""

    name: str
    path: str


@dataclasses.dataclass(frozen=True)
class PredictStatement:
    """``[name =] predict on <source> with <model>;``"""

    source: DataSource
    model: str
    result_name: str | None = None
