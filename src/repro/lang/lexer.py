"""Tokenizer for the ML4all declarative language (Appendix A).

The language is tiny -- three main commands (``run``, ``having``,
``using``) plus ``persist`` and ``predict`` -- but queries mix keywords
with file paths (``training_data.txt``), durations (``1h30m``), numbers
(``0.01``), column specs (``:2``, ``:4-20``) and function-call syntax
(``libsvm(training_data.txt)``, ``hinge()``).
"""

from __future__ import annotations

import dataclasses
import re

from repro.errors import QueryError

KEYWORDS = frozenset({
    "run", "on", "having", "using", "persist", "predict", "with",
    "time", "epsilon", "max", "iter", "algorithm", "convergence",
    "step", "sampler", "batch",
})

#: token kinds
(KEYWORD, WORD, NUMBER, DURATION, SYMBOL, EOF) = (
    "KEYWORD", "WORD", "NUMBER", "DURATION", "SYMBOL", "EOF",
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<duration>\d+h(?:\d+m)?(?:\d+s)?|\d+m(?:\d+s)?|\d+s)(?![\w.])
  | (?P<number>\d+\.\d+(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?
       |\d+[eE][+-]?\d+|\d+)(?![\w.])
  | (?P<word>[A-Za-z_][\w./-]*|/[\w./-]+|\.{1,2}/[\w./-]+)
  | (?P<symbol>[=,;:()\-])
    """,
    re.VERBOSE,
)


@dataclasses.dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: str
    value: str
    line: int
    column: int

    def is_keyword(self, *names) -> bool:
        return self.kind == KEYWORD and self.value in names

    def is_symbol(self, *symbols) -> bool:
        return self.kind == SYMBOL and self.value in symbols

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r}@{self.line}:{self.column})"


def tokenize(text):
    """Tokenize a query string; returns a list ending with an EOF token."""
    tokens = []
    line = 1
    line_start = 0
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            column = pos - line_start + 1
            raise QueryError(
                f"unexpected character {text[pos]!r}", line=line, column=column
            )
        column = pos - line_start + 1
        if match.lastgroup == "ws":
            newlines = match.group().count("\n")
            if newlines:
                line += newlines
                line_start = match.start() + match.group().rindex("\n") + 1
        elif match.lastgroup == "duration":
            tokens.append(Token(DURATION, match.group(), line, column))
        elif match.lastgroup == "number":
            tokens.append(Token(NUMBER, match.group(), line, column))
        elif match.lastgroup == "word":
            value = match.group()
            kind = KEYWORD if value.lower() in KEYWORDS else WORD
            value = value.lower() if kind == KEYWORD else value
            tokens.append(Token(kind, value, line, column))
        else:
            tokens.append(Token(SYMBOL, match.group(), line, column))
        pos = match.end()
    tokens.append(Token(EOF, "", line, len(text) - line_start + 1))
    return tokens


def parse_duration(text, line=None, column=None) -> float:
    """Parse a duration literal like ``1h30m`` into seconds."""
    match = re.fullmatch(
        r"(?:(?P<h>\d+)h)?(?:(?P<m>\d+)m)?(?:(?P<s>\d+)s)?", text
    )
    if match is None or not any(match.groupdict().values()):
        raise QueryError(f"invalid duration {text!r}", line=line, column=column)
    hours = int(match.group("h") or 0)
    minutes = int(match.group("m") or 0)
    seconds = int(match.group("s") or 0)
    return float(hours * 3600 + minutes * 60 + seconds)
