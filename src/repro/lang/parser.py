"""Recursive-descent parser for the ML4all declarative language.

Implements the grammar sketched in Appendix A:

    statement  := run | persist | predict
    run        := [WORD '='] 'run' task 'on' source (',' source)*
                  ['having' having (',' having)*]
                  ['using'  using  (',' using)*]  ';'
    source     := callable | WORD [':' INT ['-' INT]]
    callable   := WORD '(' [WORD] ')'
    having     := 'time' DURATION | 'epsilon' NUMBER | 'max' 'iter' INT
    using      := 'algorithm' WORD | 'convergence' callable | 'step' NUMBER
                | 'sampler' callable | 'batch' INT
    persist    := 'persist' WORD 'on' WORD ';'
    predict    := [WORD '='] 'predict' 'on' source 'with' WORD ';'
"""

from __future__ import annotations

from repro.errors import QueryError
from repro.lang import ast
from repro.lang.lexer import (
    DURATION,
    EOF,
    KEYWORD,
    NUMBER,
    SYMBOL,
    WORD,
    parse_duration,
    tokenize,
)


class Parser:
    """Parses one query string into a list of AST statements."""

    def __init__(self, text):
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token plumbing --------------------------------------------------
    @property
    def current(self):
        return self.tokens[self.pos]

    def advance(self):
        token = self.current
        if token.kind != EOF:
            self.pos += 1
        return token

    def peek(self, offset=1):
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def error(self, message):
        token = self.current
        found = token.value or "end of input"
        raise QueryError(
            f"{message} (found {found!r})", line=token.line, column=token.column
        )

    def expect_symbol(self, symbol):
        if not self.current.is_symbol(symbol):
            self.error(f"expected {symbol!r}")
        return self.advance()

    def expect_keyword(self, *names):
        if not self.current.is_keyword(*names):
            self.error(f"expected {' or '.join(names)!r}")
        return self.advance()

    def expect_word(self, what="identifier"):
        if self.current.kind != WORD:
            self.error(f"expected {what}")
        return self.advance().value

    def expect_number(self, what="number"):
        if self.current.kind != NUMBER:
            self.error(f"expected {what}")
        return float(self.advance().value)

    def expect_int(self, what="integer"):
        value = self.expect_number(what)
        if value != int(value):
            self.error(f"expected an integer {what}")
        return int(value)

    # -- grammar ----------------------------------------------------------
    def parse(self):
        """Parse all statements in the input."""
        statements = []
        while self.current.kind != EOF:
            statements.append(self.statement())
        if not statements:
            raise QueryError("empty query")
        return statements

    def statement(self):
        result_name = None
        if self.current.kind == WORD and self.peek().is_symbol("="):
            result_name = self.advance().value
            self.advance()  # '='
        if self.current.is_keyword("run"):
            return self.run_statement(result_name)
        if self.current.is_keyword("predict"):
            return self.predict_statement(result_name)
        if self.current.is_keyword("persist"):
            if result_name is not None:
                self.error("persist does not produce a result to assign")
            return self.persist_statement()
        self.error("expected 'run', 'predict' or 'persist'")

    def run_statement(self, result_name):
        self.expect_keyword("run")
        task = self.expect_word("task name or gradient function")
        if self.current.is_symbol("("):
            # gradient-function call syntax: hinge()
            self.advance()
            self.expect_symbol(")")
        self.expect_keyword("on")
        sources = [self.data_source()]
        while self.current.is_symbol(","):
            self.advance()
            sources.append(self.data_source())
        having = ast.Constraints()
        using = ast.Controls()
        if self.current.is_keyword("having"):
            self.advance()
            having = self.having_clause()
        if self.current.is_keyword("using"):
            self.advance()
            using = self.using_clause()
        self.expect_symbol(";")
        return ast.RunStatement(
            task=task,
            sources=tuple(sources),
            having=having,
            using=using,
            result_name=result_name,
        )

    def data_source(self):
        name = self.expect_word("dataset path or name")
        parser = None
        if self.current.is_symbol("("):
            self.advance()
            inner = self.expect_word("dataset path")
            self.expect_symbol(")")
            parser, name = name, inner
        columns = None
        if self.current.is_symbol(":"):
            self.advance()
            start = self.expect_int("column index")
            end = None
            if self.current.is_symbol("-"):
                self.advance()
                end = self.expect_int("column range end")
                if end < start:
                    self.error("column range end before start")
            columns = ast.ColumnSpec(start, end)
        return ast.DataSource(path=name, parser=parser, columns=columns)

    def having_clause(self):
        time_s = epsilon = max_iter = None
        while True:
            if self.current.is_keyword("time"):
                self.advance()
                token = self.current
                if token.kind == DURATION:
                    self.advance()
                    time_s = parse_duration(token.value, token.line, token.column)
                elif token.kind == NUMBER:
                    # bare seconds, e.g. "time 90"
                    time_s = self.expect_number("duration")
                else:
                    self.error("expected a duration like 1h30m")
            elif self.current.is_keyword("epsilon"):
                self.advance()
                epsilon = self.expect_number("tolerance value")
                if epsilon <= 0:
                    self.error("epsilon must be positive")
            elif self.current.is_keyword("max"):
                self.advance()
                self.expect_keyword("iter")
                max_iter = self.expect_int("iteration count")
                if max_iter < 1:
                    self.error("max iter must be >= 1")
            else:
                self.error("expected 'time', 'epsilon' or 'max iter'")
            if self.current.is_symbol(","):
                # Only continue when the next token starts another having
                # item; otherwise the comma belongs to an outer list.
                if self.peek().is_keyword("time", "epsilon", "max"):
                    self.advance()
                    continue
            break
        return ast.Constraints(time_s=time_s, epsilon=epsilon, max_iter=max_iter)

    def using_clause(self):
        algorithm = convergence = sampler = None
        step = batch = None
        while True:
            if self.current.is_keyword("algorithm"):
                self.advance()
                algorithm = self.expect_word("algorithm name").lower()
            elif self.current.is_keyword("convergence"):
                self.advance()
                convergence = self.callable_name("convergence function")
            elif self.current.is_keyword("step"):
                self.advance()
                step = self.expect_number("step size")
            elif self.current.is_keyword("sampler"):
                self.advance()
                sampler = self.callable_name("sampler name").lower()
            elif self.current.is_keyword("batch"):
                self.advance()
                batch = self.expect_int("batch size")
            else:
                self.error(
                    "expected 'algorithm', 'convergence', 'step', "
                    "'sampler' or 'batch'"
                )
            if self.current.is_symbol(",") and self.peek().is_keyword(
                "algorithm", "convergence", "step", "sampler", "batch"
            ):
                self.advance()
                continue
            break
        return ast.Controls(
            algorithm=algorithm,
            convergence=convergence,
            step=step,
            sampler=sampler,
            batch=batch,
        )

    def callable_name(self, what):
        name = self.expect_word(what)
        if self.current.is_symbol("("):
            self.advance()
            self.expect_symbol(")")
        return name

    def persist_statement(self):
        self.expect_keyword("persist")
        name = self.expect_word("query name")
        self.expect_keyword("on")
        path = self.expect_word("output path")
        self.expect_symbol(";")
        return ast.PersistStatement(name=name, path=path)

    def predict_statement(self, result_name):
        self.expect_keyword("predict")
        self.expect_keyword("on")
        source = self.data_source()
        self.expect_keyword("with")
        model = self.expect_word("model name or path")
        self.expect_symbol(";")
        return ast.PredictStatement(
            source=source, model=model, result_name=result_name
        )


def parse(text):
    """Parse a query string into AST statements."""
    return Parser(text).parse()
