"""Interpreter: executes parsed ML4all queries against the facade.

Maps the Appendix A commands onto :class:`repro.api.ML4all`:

* ``run``      -> cost-based optimization + training (``using`` pins)
* ``persist``  -> save a named run's model to disk
* ``predict``  -> apply a model (named result or persisted file) to data
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import QueryError
from repro.lang import ast
from repro.lang.parser import parse


class Interpreter:
    """Stateful session: named results persist across statements."""

    def __init__(self, system):
        self.system = system
        #: name -> TrainedModel for ``Q1 = run ...`` statements
        self.results = {}
        #: predictions of named ``predict`` statements
        self.predictions = {}
        self.last_result = None

    # ------------------------------------------------------------------
    def execute(self, text):
        """Parse and execute every statement; returns ``last_result``."""
        for statement in parse(text):
            self.last_result = self.execute_statement(statement)
        return self.last_result

    def execute_statement(self, statement):
        if isinstance(statement, ast.RunStatement):
            return self._run(statement)
        if isinstance(statement, ast.PersistStatement):
            return self._persist(statement)
        if isinstance(statement, ast.PredictStatement):
            return self._predict(statement)
        raise QueryError(f"unsupported statement {type(statement).__name__}")

    # ------------------------------------------------------------------
    def _resolve_source(self, sources):
        """Build (X, y)/dataset from one or two DataSource references.

        The two-source form (``file:2, file:4-20``) selects the label and
        feature columns of one CSV file (query Q2 of Appendix A).
        """
        primary = sources[0]
        if len(sources) == 1 and primary.columns is None:
            return self.system.load_dataset(primary.path)
        if len(sources) == 2:
            label_src, feature_src = sources
            if label_src.path != feature_src.path:
                raise QueryError(
                    "label and feature column specs must reference the "
                    "same file"
                )
            if label_src.columns is None or feature_src.columns is None:
                raise QueryError(
                    "both sources need column specs in the two-source form"
                )
            data = np.loadtxt(label_src.path, delimiter=",", ndmin=2)
            y = data[:, label_src.columns.start]
            end = feature_src.columns.end or feature_src.columns.start
            X = data[:, feature_src.columns.start:end + 1]
            return self.system.load_dataset((X, y), task="logreg")
        raise QueryError("expected one dataset or a label/feature pair")

    def _run(self, statement):
        dataset = self._resolve_source(statement.sources)
        having, using = statement.having, statement.using
        model = self.system.train(
            dataset,
            task=statement.task,
            epsilon=having.epsilon,
            max_iter=having.max_iter,
            time_budget=having.time_s,
            algorithm=using.algorithm,
            sampler=using.sampler,
            step=using.step,
            convergence=using.convergence,
            batch=using.batch,
        )
        if statement.result_name:
            self.results[statement.result_name] = model
        return model

    def _persist(self, statement):
        if statement.name not in self.results:
            raise QueryError(
                f"unknown query result {statement.name!r}; assign one with "
                f"'{statement.name} = run ...' first"
            )
        model = self.results[statement.name]
        model.save(statement.path)
        return statement.path

    def _predict(self, statement):
        from repro.api import TrainedModel

        if statement.model in self.results:
            model = self.results[statement.model]
        elif os.path.exists(statement.model):
            model = TrainedModel.load(statement.model)
        else:
            raise QueryError(
                f"unknown model {statement.model!r}: neither a named run "
                "result nor a model file"
            )
        dataset = self._resolve_source([statement.source])
        predictions = model.predict(dataset.X)
        output = {
            "predictions": predictions,
            "mse": model.mse(dataset.X, dataset.y),
        }
        if statement.result_name:
            self.predictions[statement.result_name] = output
        return output
