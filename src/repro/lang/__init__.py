"""Declarative ML4all language (Appendix A): lexer, parser, interpreter."""

from repro.lang.ast import (
    ColumnSpec,
    Constraints,
    Controls,
    DataSource,
    PersistStatement,
    PredictStatement,
    RunStatement,
)
from repro.lang.interpreter import Interpreter
from repro.lang.lexer import Token, parse_duration, tokenize
from repro.lang.parser import Parser, parse

__all__ = [
    "ColumnSpec",
    "Constraints",
    "Controls",
    "DataSource",
    "PersistStatement",
    "PredictStatement",
    "RunStatement",
    "Interpreter",
    "Token",
    "parse_duration",
    "tokenize",
    "Parser",
    "parse",
]
