"""Shared machinery for the baseline ML systems (Section 8.1).

The baselines run the *same GD math* as ML4all (same gradients, step
size, initial weights, convergence condition -- exactly how the paper
configured all systems identically) but charge the simulated cluster
according to each system's execution strategy: MLlib's Bernoulli sampling
and treeAggregate, SystemML's binary-block conversion and hybrid
local/distributed mode, Bismarck's serialized processing phase.

Each baseline implements

* :meth:`prepare`  -- one-time costs (parsing, caching, conversion);
  may raise :class:`~repro.errors.SimulatedOutOfMemory`, and
* :meth:`charge_iteration` -- per-iteration costs,

while :meth:`train` drives the shared math loop and assembles a
:class:`BaselineResult`.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.core.cost_model import (
    compute_cpu_per_unit,
    converge_cpu,
    layout_for,
    transform_cpu_per_unit,
    update_cpu,
)
from repro.errors import SimulatedTimeout
from repro.gd import registry as gd_registry
from repro.gd.convergence import make_convergence
from repro.gd.step_size import make_step_size


@dataclasses.dataclass
class BaselineResult:
    """Outcome of training one algorithm on one baseline system."""

    system: str
    algorithm: str
    dataset: str
    iterations: int
    converged: bool
    sim_seconds: float
    weights: np.ndarray | None
    #: One-time data preparation charged before the loop (SystemML's
    #: binary conversion; reported separately in Figure 9).
    conversion_s: float = 0.0
    #: Failure tag ("OOM", "timeout") when the system could not finish.
    failed: str | None = None

    @property
    def ok(self) -> bool:
        return self.failed is None

    def cell(self) -> str:
        """Figure-style cell text: seconds, 'fail', or '>limit'."""
        if self.failed == "OOM":
            return "OOM"
        if self.failed == "timeout":
            return f">{self.sim_seconds:.0f}s"
        return f"{self.sim_seconds:.1f}"


def wave_seconds(spec, n_partitions, per_partition_s) -> float:
    """Wave-parallel execution time of homogeneous partition tasks."""
    full_waves = n_partitions // spec.cap
    remaining = n_partitions - full_waves * spec.cap
    return (full_waves + (1 if remaining else 0)) * per_partition_s


class BaselineSystem:
    """Interface of one comparison system."""

    name = "baseline"

    def prepare(self, engine, dataset, training):
        """Charge one-time costs; returns opaque state for iterations."""
        raise NotImplementedError

    def charge_iteration(self, engine, state, iteration, sim_batch):
        """Charge the cost of one iteration touching ``sim_batch`` units."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def train(
        self,
        engine,
        dataset,
        training,
        algorithm,
        batch_size=1000,
        time_limit_s=None,
        raise_on_timeout=False,
    ) -> BaselineResult:
        """Run any registered GD algorithm on this system.

        The algorithm's batch sizing, sampling mode, and direction
        updater all come from its :class:`~repro.gd.spec.AlgorithmSpec`,
        so a newly registered algorithm is covered by every baseline
        without touching this loop.  ``time_limit_s`` is the
        simulated-time cut-off used to reproduce the paper's "we had to
        stop the execution after 3 hours" cells.
        """
        from repro.errors import SimulatedOutOfMemory

        spec = engine.spec
        t0 = engine.clock
        gradient = training.gradient()
        step = make_step_size(training.step_size)
        criterion = make_convergence(training.convergence)
        rng = np.random.default_rng(training.seed)

        try:
            state = self.prepare(engine, dataset, training)
        except SimulatedOutOfMemory:
            return BaselineResult(
                system=self.name,
                algorithm=algorithm,
                dataset=dataset.stats.name,
                iterations=0,
                converged=False,
                sim_seconds=engine.clock - t0,
                weights=None,
                failed="OOM",
            )
        conversion_s = engine.clock - t0

        n_phys = dataset.n_phys
        n_sim = dataset.stats.n
        d = dataset.stats.d
        w = np.zeros(d)
        converged = False
        iterations = 0
        spec_info = gd_registry.info(algorithm)
        if spec_info.default_batch_size is None:
            sim_batch = n_sim
        elif spec_info.batch_size_fixed:
            sim_batch = min(spec_info.default_batch_size, n_sim)
        else:
            sim_batch = min(batch_size, n_sim)
        phys_batch = max(1, min(sim_batch, n_phys))
        updater = gd_registry.updater_for(algorithm)
        if updater is not None:
            updater.reset(d)

        for i in range(1, training.max_iter + 1):
            if not spec_info.stochastic:
                Xb, yb = dataset.X, dataset.y
            else:
                idx = rng.choice(n_phys, size=phys_batch, replace=False)
                Xb, yb = dataset.X[idx], dataset.y[idx]
            grad = gradient.gradient(w, Xb, yb)
            direction = grad if updater is None else updater.direction(grad, i)
            w_new = w - step.step(i) * direction
            delta = criterion.delta(w, w_new)
            w = w_new

            self.charge_iteration(engine, state, i, sim_batch)
            iterations = i
            if delta < training.tolerance:
                converged = True
                break
            if time_limit_s is not None and engine.clock - t0 > time_limit_s:
                if raise_on_timeout:
                    raise SimulatedTimeout(self.name, engine.clock - t0,
                                           time_limit_s)
                return BaselineResult(
                    system=self.name,
                    algorithm=algorithm,
                    dataset=dataset.stats.name,
                    iterations=iterations,
                    converged=False,
                    sim_seconds=engine.clock - t0,
                    weights=w,
                    conversion_s=conversion_s,
                    failed="timeout",
                )

        return BaselineResult(
            system=self.name,
            algorithm=algorithm,
            dataset=dataset.stats.name,
            iterations=iterations,
            converged=converged,
            sim_seconds=engine.clock - t0,
            weights=w,
            conversion_s=conversion_s,
        )


__all__ = [
    "BaselineResult",
    "BaselineSystem",
    "wave_seconds",
    "layout_for",
    "transform_cpu_per_unit",
    "compute_cpu_per_unit",
    "update_cpu",
    "converge_cpu",
    "math",
]
