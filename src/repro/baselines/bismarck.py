"""Bismarck-abstraction baseline ([12], ported to Spark by the authors).

Bismarck models ML as a unified aggregate with a ``Prepare`` UDF and a
*combined* Compute/Update step.  The paper's architectural point
(Section 8.4.3): "a key advantage of separating Compute from Update is
that the former can be parallelized where the latter has to be
effectively serialized.  When these two operators are combined into one,
parallelization cannot be leveraged."

Modelled behaviours:

* ``Prepare`` (the transform) is parallelized, like ML4all's eager path.
* The gradient of every iteration's data is computed **serially** in the
  combined step: the touched units flow through a single execution slot
  (no wave parallelism), preceded by a collect of those units.
* The combined step materialises dense per-example state, so large
  batch-times-dimensionality products exhaust driver memory: "the
  Bismarck abstraction fails due to the large number of features of
  rcv1 ... but for svm1 the reason it fails is the large number of data
  points" (Figure 11).
"""

from __future__ import annotations

from repro.baselines.base import BaselineSystem
from repro.core.cost_model import (
    compute_cpu_per_unit,
    layout_for,
    transform_cpu_per_unit,
    update_cpu,
)
from repro.errors import SimulatedOutOfMemory

GB = 1024 ** 3


class BismarckBaseline(BaselineSystem):
    name = "Bismarck"

    #: Driver memory available to the combined Compute/Update step.
    driver_bytes = 2 * GB

    def __init__(self, batch_size=1000):
        self.batch_size = batch_size

    def prepare(self, engine, dataset, training):
        spec = engine.spec
        stats = dataset.stats
        text = layout_for(spec, stats, "text")
        binary = layout_for(spec, stats, "binary")
        # Prepare UDF: parallel parse + cache, like an eager transform.
        engine.scan(
            dataset,
            phase="transform",
            cpu_per_row_s=transform_cpu_per_unit(spec, text),
            cache=False,
        )
        prepared = dataset.as_binary()
        engine.cache.insert(prepared)
        engine.charge(
            binary.bytes_total / spec.page_bytes * spec.page_io_mem_s
            / spec.cap,
            "transform",
        )
        return {
            "prepared": prepared,
            "binary": binary,
            "weight_bytes": stats.weight_vector_bytes,
        }

    def _check_memory(self, touched_units, d):
        """The combined step materialises dense per-example vectors."""
        needed = touched_units * d * 8
        if needed > self.driver_bytes:
            raise SimulatedOutOfMemory(self.name, int(needed),
                                       self.driver_bytes)

    def charge_iteration(self, engine, state, iteration, sim_batch):
        spec = engine.spec
        binary = state["binary"]
        touched = min(sim_batch, binary.n)
        # The OOM check belongs to the first combined-step invocation.
        self._check_memory(touched, binary.d)

        engine.job("compute")
        batch_bytes = int(touched * binary.bytes_per_row)
        engine.collect(batch_bytes, "sample")
        # Serialized combined Compute/Update: one slot, no waves.
        io = batch_bytes / spec.page_bytes * spec.page_io_mem_s
        cpu = touched * compute_cpu_per_unit(spec, binary)
        engine.charge(io + cpu, "compute")
        engine.charge(update_cpu(spec, binary), "update")
        engine.charge(spec.iteration_overhead_s, "loop")

    # The OOM for full-batch plans must fire before any iteration math;
    # hook into prepare by overriding train()'s first charge via a
    # pre-check here.
    def train(self, engine, dataset, training, algorithm, batch_size=1000,
              time_limit_s=None, raise_on_timeout=False):
        sim_batch = {
            "bgd": dataset.stats.n,
            "mgd": min(batch_size, dataset.stats.n),
            "sgd": 1,
        }.get(algorithm, dataset.stats.n)
        try:
            self._check_memory(sim_batch, dataset.stats.d)
        except SimulatedOutOfMemory:
            from repro.baselines.base import BaselineResult

            return BaselineResult(
                system=self.name,
                algorithm=algorithm,
                dataset=dataset.stats.name,
                iterations=0,
                converged=False,
                sim_seconds=0.0,
                weights=None,
                failed="OOM",
            )
        return super().train(
            engine, dataset, training, algorithm, batch_size,
            time_limit_s, raise_on_timeout,
        )
