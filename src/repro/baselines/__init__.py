"""Baseline systems the paper compares against (Section 8.1).

All baselines execute the same GD mathematics with identical parameters
(step size, initial weights, convergence condition) and differ only in
the execution strategy they charge to the simulated cluster -- mirroring
how the paper configured MLlib, SystemML and the Bismarck port.
"""

from repro.baselines.base import BaselineResult, BaselineSystem
from repro.baselines.bismarck import BismarckBaseline
from repro.baselines.mllib import MLlibBaseline
from repro.baselines.spark_direct import run_spark_direct
from repro.baselines.systemml import SystemMLBaseline

__all__ = [
    "BaselineResult",
    "BaselineSystem",
    "BismarckBaseline",
    "MLlibBaseline",
    "run_spark_direct",
    "SystemMLBaseline",
]
