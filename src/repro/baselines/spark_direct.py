"""Hand-coded Spark baseline (Figure 11's "Spark" bars).

The paper implements ML4all's chosen plan directly against the Spark API
to measure the abstraction's overhead, finding it negligible ("ML4all
adds almost no additional overhead to plan execution as it has very
similar runtimes as the pure Spark implementation").

Here the hand-coded program and the executor share the engine, so the
only difference is the per-operator dispatch cost the abstraction adds
(the ``local_overhead_s`` charges); this baseline runs the identical
plan with those dispatch charges removed.
"""

from __future__ import annotations

from repro.core.executor import execute_plan


def run_spark_direct(engine, dataset, plan, training, operators=None):
    """Execute ``plan`` as a hand-written Spark job (no abstraction).

    Returns the same :class:`~repro.core.result.TrainResult`; the
    simulated time differs from ML4all's executor only by the operator
    dispatch overhead, which is what Figure 11 measures.
    """
    spec = engine.spec
    stripped = spec.with_overrides(local_overhead_s=0.0)
    engine.spec = stripped
    try:
        result = execute_plan(engine, dataset, plan, training, operators)
    finally:
        engine.spec = spec
    return result
