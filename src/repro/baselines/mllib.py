"""MLlib-like baseline (Spark MLlib 1.6.2 GradientDescent).

Cost behaviours modelled, each one named by the paper as a reason ML4all
wins (Section 8.4):

* **Eager parse into RDD[LabeledPoint]** cached MEMORY_ONLY with a JVM
  object-overhead factor, so large datasets only partially fit the cache.
* **Lineage recomputation**: partitions evicted from a MEMORY_ONLY cache
  are *recomputed from the text file* on every scan -- this is what made
  MLlib's per-iteration time explode to minutes on svm3 ("MLlib incurred
  disk IOs in each iteration resulting in a training time per iteration
  of 6 min").
* **Bernoulli sampling**: every iteration scans all partitions even for
  a 1-point SGD sample; the sample fraction is set "slightly higher to
  reduce the chances that the sample will be empty", and an empty draw
  triggers a rescan.
* **treeAggregate** (depth 2) for the gradient, adding per-level barriers
  versus ML4all's mapPartitions+reduce.
* **Boxed per-row processing**: JVM object overhead on the per-unit CPU.
"""

from __future__ import annotations

import math

from repro.baselines.base import BaselineSystem, wave_seconds
from repro.core.cost_model import (
    compute_cpu_per_unit,
    layout_for,
    transform_cpu_per_unit,
    update_cpu,
)


class MLlibBaseline(BaselineSystem):
    name = "MLlib"

    #: In-memory blow-up of RDD[LabeledPoint] vs on-disk binary bytes.
    memory_overhead = 2.5
    #: JVM boxing/dispatch factor on per-row CPU work.
    cpu_factor = 3.0
    #: Safety factor on the SGD sample fraction (avoids empty samples).
    sgd_fraction_slack = 1.3
    #: treeAggregate depth used by MLlib's GradientDescent.
    tree_depth = 2

    def prepare(self, engine, dataset, training):
        spec = engine.spec
        text = layout_for(spec, dataset.stats, "text")
        binary = layout_for(spec, dataset.stats, "binary")
        # Parse the text input once (first action materialises the RDD).
        engine.scan(
            dataset,
            phase="transform",
            cpu_per_row_s=transform_cpu_per_unit(spec, text) * self.cpu_factor,
            cache=False,
        )
        rdd = dataset.as_binary()
        cached_fraction = engine.cache.insert(
            rdd, memory_overhead=self.memory_overhead
        )
        # Writing the cached partitions into storage memory.
        engine.charge(
            cached_fraction * binary.bytes_total * self.memory_overhead
            / spec.page_bytes * spec.page_io_mem_s / spec.cap,
            "transform",
        )
        return {
            "rdd": rdd,
            "text": text,
            "binary": binary,
            "weight_bytes": dataset.stats.weight_vector_bytes,
        }

    # ------------------------------------------------------------------
    def _scan_with_recompute(self, engine, state, extra_cpu_per_row):
        """One full pass over the RDD with MEMORY_ONLY semantics.

        The cached fraction is read from memory; the evicted fraction is
        recomputed from lineage: text re-read from disk plus re-parsing
        CPU, all at JVM cost factors.
        """
        spec = engine.spec
        rdd, text, binary = state["rdd"], state["text"], state["binary"]
        f = engine.cache.cached_fraction(rdd)

        mem_bytes = f * binary.bytes_total * self.memory_overhead
        mem_io = mem_bytes / spec.page_bytes * spec.page_io_mem_s
        recompute_io = (1 - f) * text.bytes_total / spec.page_bytes \
            * spec.page_io_disk_s
        recompute_cpu = (1 - f) * text.n * transform_cpu_per_unit(spec, text) \
            * self.cpu_factor
        op_cpu = binary.n * extra_cpu_per_row

        per_partition = (
            (mem_io + recompute_io + recompute_cpu + op_cpu) / binary.p
            + (spec.seek_disk_s if f < 1.0 else spec.seek_mem_s)
        )
        seconds = wave_seconds(spec, binary.p, per_partition)
        engine.charge(seconds, "compute")
        m = engine.metrics.phase("compute")
        m.rows_processed += binary.n
        m.pages_disk += spec.pages_in(int((1 - f) * text.bytes_total)) if f < 1 else 0
        m.pages_mem += spec.pages_in(int(mem_bytes)) if f > 0 else 0
        engine.cache.touch(rdd)

    def charge_iteration(self, engine, state, iteration, sim_batch):
        spec = engine.spec
        binary = state["binary"]
        n = binary.n
        engine.job("compute")

        # Bernoulli sample + gradient in one pass (MLlib computes the
        # gradient inside treeAggregate over the sampled subset).
        expected_scans = 1.0
        if sim_batch < n:
            fraction = min(1.0, sim_batch * self.sgd_fraction_slack / n)
            p_empty = math.exp(-n * fraction) if n * fraction < 50 else 0.0
            expected_scans = 1.0 / (1.0 - p_empty) if p_empty < 1 else 8.0
        sample_cpu = spec.sample_test_s if sim_batch < n else 0.0
        grad_cpu = compute_cpu_per_unit(spec, binary) * self.cpu_factor \
            * (sim_batch / n)
        for _ in range(int(round(expected_scans))):
            self._scan_with_recompute(engine, state,
                                      sample_cpu + grad_cpu)

        # treeAggregate of the partial gradients.
        engine.aggregate(
            binary.p, state["weight_bytes"], phase="update",
            tree=True, depth=self.tree_depth,
        )
        engine.charge(update_cpu(spec, binary), "update")
        engine.broadcast_weights(state["weight_bytes"], "update")
        engine.charge(spec.iteration_overhead_s, "loop")
