"""SystemML-like baseline (SystemML 0.10, hybrid execution mode).

Cost behaviours modelled, matching the paper's observations:

* **Binary-block conversion**: the input must first be converted to
  SystemML's binary matrix-block format ("the authors of [8]" tooling);
  the paper plots this conversion separately in Figure 9, and for small
  datasets it dominates ("The largest bottleneck of SystemML for small
  datasets is the time to convert the dataset to its binary format").
* **Hybrid mode**: datasets whose binary form fits the driver run as
  fast local matrix programs (no job overheads, efficient binary ops --
  "SystemML is slightly faster than our system for the small datasets,
  because it processes them locally"); larger datasets run distributed
  Spark matrix programs with several jobs and a data-sized shuffle per
  iteration, which is what pushed higgs past the 3-hour cut-off.
* **Out-of-memory failures** on large dense data ("SystemML failed with
  out of memory exceptions" for the dense synthetic datasets).
"""

from __future__ import annotations

from repro.baselines.base import BaselineSystem, wave_seconds
from repro.core.cost_model import (
    compute_cpu_per_unit,
    layout_for,
    transform_cpu_per_unit,
    update_cpu,
)
from repro.errors import SimulatedOutOfMemory

GB = 1024 ** 3


class SystemMLBaseline(BaselineSystem):
    name = "SystemML"

    #: Dense datasets whose binary form exceeds this fail with OOM.
    oom_dense_bytes = 3 * GB
    #: Datasets whose binary form fits this run in local (driver) mode.
    local_threshold_bytes = 1 * GB
    #: Binary-block operations are faster than row-at-a-time processing.
    local_cpu_factor = 0.6
    #: Spark jobs SystemML launches per iteration in distributed mode
    #: (one per DML matrix operator in the update loop).
    distributed_jobs_per_iter = 3
    #: Fraction of the dataset shuffled per distributed iteration by
    #: matrix-block re-partitioning.
    shuffle_fraction = 1.0

    def prepare(self, engine, dataset, training):
        spec = engine.spec
        stats = dataset.stats
        binary = layout_for(spec, stats, "binary")
        if not stats.is_sparse and binary.bytes_total > self.oom_dense_bytes:
            raise SimulatedOutOfMemory(
                self.name, binary.bytes_total, self.oom_dense_bytes
            )
        text = layout_for(spec, stats, "text")
        # Conversion: read the text, build binary blocks, write them out.
        engine.scan(
            dataset,
            phase="conversion",
            cpu_per_row_s=transform_cpu_per_unit(spec, text),
            cache=False,
        )
        blocks = dataset.as_binary()
        engine.write_dataset(blocks, phase="conversion")
        engine.cache.insert(blocks)
        local = binary.bytes_total <= self.local_threshold_bytes
        return {
            "blocks": blocks,
            "binary": binary,
            "local": local,
            "weight_bytes": stats.weight_vector_bytes,
        }

    def charge_iteration(self, engine, state, iteration, sim_batch):
        spec = engine.spec
        binary = state["binary"]
        n = binary.n
        touched = min(sim_batch, n)
        grad_cpu = compute_cpu_per_unit(spec, binary)

        if state["local"]:
            # Driver-local matrix program: single-threaded binary-block
            # ops over the touched rows plus the sampling pass.
            io = touched * binary.bytes_per_row / spec.page_bytes \
                * spec.page_io_mem_s
            sample_cpu = n * spec.sample_test_s if touched < n else 0.0
            cpu = touched * grad_cpu * self.local_cpu_factor
            engine.charge(io + cpu + sample_cpu, "compute")
            engine.charge(update_cpu(spec, binary), "update")
            engine.charge(spec.iteration_overhead_s / 5, "loop")
            return

        # Distributed matrix program: several Spark jobs, a full
        # binary-block scan, and a data-sized block shuffle.
        for _ in range(self.distributed_jobs_per_iter):
            engine.job("compute")
        per_partition = (
            binary.bytes_total / binary.p / spec.page_bytes
            * spec.page_io_mem_s
            + (touched / binary.p) * grad_cpu
            + spec.seek_mem_s
        )
        engine.charge(wave_seconds(spec, binary.p, per_partition), "compute")
        shuffle_bytes = int(binary.bytes_total * self.shuffle_fraction)
        engine.collect(shuffle_bytes // spec.cap, "update")
        engine.aggregate(binary.p, state["weight_bytes"], phase="update")
        engine.charge(update_cpu(spec, binary), "update")
        engine.charge(spec.iteration_overhead_s, "loop")
