"""The ML4all system facade.

:class:`ML4all` wires the pieces of Figure 2 together: the declarative
language front-end, the cost-based GD optimizer, the plan executor and
the simulated cluster.  A typical session:

    >>> from repro.api import ML4all
    >>> system = ML4all(seed=7)
    >>> ds = system.load_dataset("adult")
    >>> model = system.train(ds, epsilon=0.01)
    >>> model.report.chosen_plan
    ...
    >>> model.error(ds.X, ds.y)
    ...

or, declaratively:

    >>> system.query("run classification on adult having epsilon 0.01;")
"""

from __future__ import annotations

import dataclasses
import os
import threading

import numpy as np

from repro.cluster import ClusterSpec, PartitionedDataset, SimulatedCluster
from repro.core.executor import execute_plan
from repro.core.iterations import SpeculationSettings, SpeculativeEstimator
from repro.core.optimizer import GDOptimizer
from repro.core.plans import GDPlan, TrainingSpec
from repro.data import datasets as dataset_registry
from repro.data import libsvm
from repro.errors import DataFormatError, PlanError
from repro.gd import registry as gd_registry
from repro.gd.registry import CORE_ALGORITHMS


@dataclasses.dataclass
class TrainedModel:
    """A trained model plus everything the optimizer decided on the way."""

    weights: np.ndarray
    task: str
    #: OptimizationReport, or None when the plan was fixed by the caller.
    report: object
    #: TrainResult of the executed plan.
    result: object
    l2: float = 0.0
    #: ExecutionTrace of the run (adaptive training only).
    trace: object = None
    #: AdaptiveResult when trained with ``adaptive=True``.
    adaptive: object = None
    #: :class:`~repro.service.JobProgress` when trained as a durable
    #: job (``job_id=``); check ``job.preempted`` to see whether the
    #: lease budget stopped the run before the job finished.
    job: object = None

    @property
    def switched(self) -> bool:
        """True when the adaptive runtime switched plans mid-flight."""
        return self.trace is not None and bool(self.trace.switches)

    def _gradient(self):
        from repro.gd.gradients import task_gradient

        return task_gradient(self.task, l2=self.l2)

    def predict(self, X):
        """Predicted labels (classification) or values (regression)."""
        return self._gradient().predict(self.weights, X)

    def mse(self, X, y):
        """Mean squared error of predictions against ground truth.

        This is the testing-error metric of the paper's Section 8.5
        ("we plot the mean square error of the output labels compared
        to the ground truth").
        """
        pred = self.predict(X)
        return float(np.mean((pred - y) ** 2))

    def error_rate(self, X, y):
        """Misclassification rate (classification tasks)."""
        return float(np.mean(self.predict(X) != y))

    def save(self, path):
        """Persist the model vector (the ``persist`` command)."""
        header = f"task={self.task} l2={self.l2:g}"
        np.savetxt(path, self.weights, header=header)

    @classmethod
    def load(cls, path):
        """Load a model persisted by :meth:`save`."""
        task = "logreg"
        l2 = 0.0
        with open(path) as handle:
            first = handle.readline()
        if first.startswith("#"):
            for item in first[1:].split():
                key, _, value = item.partition("=")
                if key == "task":
                    task = value
                elif key == "l2":
                    l2 = float(value)
        weights = np.loadtxt(path)
        return cls(
            weights=np.atleast_1d(weights),
            task=task,
            report=None,
            result=None,
            l2=l2,
        )


class ML4all:
    """Facade over the cost-based GD optimizer on the simulated cluster."""

    def __init__(
        self,
        cluster_spec=None,
        seed=0,
        speculation=None,
        algorithms=CORE_ALGORITHMS,
        calibration_path=None,
        cache_path=None,
        checkpoint_path=None,
        learned_path=None,
    ):
        self.spec = cluster_spec or ClusterSpec()
        self.seed = seed
        self.engine = SimulatedCluster(self.spec, seed=seed)
        self.speculation = speculation or SpeculationSettings()
        self.algorithms = tuple(algorithms)
        self.calibration_path = calibration_path
        #: Optional plan-store path: the service layer persists cached
        #: plan decisions here and warm-starts from it (see
        #: :mod:`repro.service.backends`).
        self.cache_path = cache_path
        #: Optional job-checkpoint-store path: durable training jobs
        #: (``train(job_id=...)``) persist their progress here and a
        #: restarted process resumes them (see
        #: :mod:`repro.service.checkpoint`).
        self.checkpoint_path = checkpoint_path
        #: Optional learned-residual-model path: when given, the model
        #: at that path (fitted via ``repro calibrate --fit-learned`` or
        #: :meth:`ResidualModel.fit <repro.learned.ResidualModel.fit>`)
        #: is blended into every plan ranking this system computes.
        self.learned_path = learned_path
        self._calibration = None
        self._calibration_lock = threading.Lock()
        self._learned = None
        self._learned_lock = threading.Lock()
        self._service = None
        self._service_lock = threading.Lock()
        #: (name, task) -> PartitionedDataset, so batch/serve request
        #: streams resolve each registry reference (and hash its content)
        #: once per system, not once per request line.
        self._dataset_memo = {}

    # ------------------------------------------------------------------
    # datasets
    # ------------------------------------------------------------------
    def load_dataset(self, source, task=None, columns=None, seed=None):
        """Resolve a dataset reference into a :class:`PartitionedDataset`.

        ``source`` may be a registry name (``"adult"``), a path to a
        LIBSVM/CSV file, an existing PartitionedDataset, or an ``(X, y)``
        pair (with ``task`` required).
        """
        if isinstance(source, PartitionedDataset):
            return source
        if isinstance(source, tuple) and len(source) == 2:
            X, y = source
            if task is None:
                raise DataFormatError(
                    "task= is required when loading raw (X, y) arrays"
                )
            from repro.cluster.storage import DatasetStats
            from scipy import sparse as sp

            stats = DatasetStats(
                name="user-data",
                task=_canonical_task(task),
                n=X.shape[0],
                d=X.shape[1],
                density=(
                    X.nnz / (X.shape[0] * X.shape[1])
                    if sp.issparse(X) else 1.0
                ),
                is_sparse=sp.issparse(X),
            )
            return PartitionedDataset(X, np.asarray(y, dtype=float), stats,
                                      self.spec, representation="text")
        if isinstance(source, str):
            if source in dataset_registry.REGISTRY:
                return dataset_registry.load(
                    source, self.spec, seed=self.seed if seed is None else seed
                )
            if os.path.exists(source):
                X, y = _read_file(source, columns)
                inferred = task or "logreg"
                return self.load_dataset((X, y), task=inferred)
            raise DataFormatError(
                f"unknown dataset {source!r}: not a registry name and not "
                "an existing file"
            )
        raise DataFormatError(f"cannot load a dataset from {type(source)}")

    # ------------------------------------------------------------------
    # optimizer entry points
    # ------------------------------------------------------------------
    def _training_spec(self, dataset, task, epsilon, max_iter, time_budget,
                       step, convergence, l2, seed):
        return TrainingSpec(
            task=_canonical_task(task or dataset.stats.task),
            step_size=1.0 if step is None else step,
            tolerance=1e-3 if epsilon is None else epsilon,
            max_iter=1000 if max_iter is None else max_iter,
            convergence=convergence or "l1",
            l2=l2,
            time_budget_s=time_budget,
            seed=self.seed if seed is None else seed,
        )

    @property
    def calibration(self):
        """This system's :class:`CalibrationStore` (created lazily).

        Loaded from ``calibration_path`` when one was given and exists;
        in-memory otherwise.  Empty stores are the identity, so sharing
        it with every optimizer is behaviour-preserving until adaptive
        traces populate it.
        """
        with self._calibration_lock:
            if self._calibration is None:
                from repro.runtime import CalibrationStore

                self._calibration = CalibrationStore.open(
                    self.calibration_path
                )
            return self._calibration

    def save_calibration(self, path=None):
        """Persist the calibration store (to ``path`` or its own path)."""
        return self.calibration.save(path)

    @property
    def learned(self):
        """This system's mixed learned cost model, or None.

        Created lazily from ``learned_path`` (a persisted
        :class:`~repro.learned.ResidualModel`, wrapped in a
        :class:`~repro.learned.MixedCostModel` with default gating).
        Systems without a ``learned_path`` rank purely analytic+EWMA.
        """
        if self.learned_path is None:
            return None
        with self._learned_lock:
            if self._learned is None:
                from repro.learned import MixedCostModel, ResidualModel

                self._learned = MixedCostModel(
                    ResidualModel.open(self.learned_path)
                )
            return self._learned

    def _optimizer(self, algorithms=None, batch=None):
        # The registry decides which algorithms a batch= request applies
        # to (every tunable mini-batch spec, plugins included).
        batch_sizes = gd_registry.batch_overrides(batch)
        learned = self.learned
        return GDOptimizer(
            self.engine,
            estimator=SpeculativeEstimator(
                self.speculation, seed=self.seed,
                model_overrides=(
                    learned.curve_families() if learned is not None
                    else None
                ),
            ),
            algorithms=algorithms or self.algorithms,
            batch_sizes=batch_sizes,
            calibration=self.calibration,
            learned=learned,
        )

    def optimize(self, dataset, task=None, epsilon=None, max_iter=None,
                 time_budget=None, algorithm=None, batch=None, step=None,
                 convergence=None, l2=0.0, fixed_iterations=None, seed=None):
        """Run the cost-based optimizer; returns the OptimizationReport."""
        dataset = self.load_dataset(dataset, task=task)
        training = self._training_spec(
            dataset, task, epsilon, max_iter, time_budget, step,
            convergence, l2, seed,
        )
        algorithms = (algorithm,) if algorithm else None
        return self._optimizer(algorithms, batch).optimize(
            dataset, training, fixed_iterations=fixed_iterations
        )

    # ------------------------------------------------------------------
    # concurrent serving
    # ------------------------------------------------------------------
    def service(self, cache_size=None, speculation_workers=None):
        """The shared :class:`~repro.service.OptimizerService` facade.

        Created lazily with this system's cluster spec, seed, speculation
        settings and algorithm set; repeated calls return the same
        service (and therefore the same warm plan cache).  Configuration
        arguments only apply on the call that creates the service; later
        calls that pass conflicting values get a warning, not a rebuild.
        """
        import warnings

        with self._service_lock:
            if self._service is None:
                from repro.service import OptimizerService

                self._service = OptimizerService(
                    spec=self.spec,
                    seed=self.seed,
                    speculation=self.speculation,
                    algorithms=self.algorithms,
                    cache_size=256 if cache_size is None else cache_size,
                    speculation_workers=(
                        "auto" if speculation_workers is None
                        else speculation_workers
                    ),
                    # The facade and its service learn from the same
                    # traces and serve the same corrected estimates.
                    calibration=self.calibration,
                    learned=self.learned,
                    cache_path=self.cache_path,
                    checkpoint_path=self.checkpoint_path,
                )
                return self._service
            service = self._service
        if cache_size is not None and cache_size != service.cache.maxsize:
            warnings.warn(
                "service() already created with cache_size="
                f"{service.cache.maxsize}; ignoring {cache_size}",
                stacklevel=2,
            )
        if (speculation_workers is not None
                and speculation_workers != service.speculation_workers):
            warnings.warn(
                "service() already created with speculation_workers="
                f"{service.speculation_workers}; ignoring "
                f"{speculation_workers}",
                stacklevel=2,
            )
        return service

    @property
    def metrics(self):
        """The service's :class:`~repro.service.MetricsRegistry`
        (operational counters/gauges/timers across every layer);
        creates the service if it does not exist yet."""
        return self.service().metrics

    def optimize_many(self, requests, max_workers=None, **shared):
        """Serve a batch of optimize() requests through the plan cache.

        Each request is either a dataset reference (registry name, path,
        PartitionedDataset, ``(X, y)`` pair) or a dict of
        :meth:`optimize` keyword arguments (``dataset`` plus ``task``,
        ``epsilon``, ``max_iter``, ``algorithm``, ``batch``, ...).
        ``shared`` supplies defaults merged into every request.  Returns
        one :class:`~repro.service.ServiceResult` per request, in order.
        """
        return self.service().optimize_many(
            self._normalize_requests(requests, shared),
            max_workers=max_workers,
        )

    def _normalize_requests(self, requests, shared) -> list:
        """Request dicts / dataset refs -> ServiceRequest instances.

        Resolves each named dataset reference once per system --
        repeated registry names (within one batch or across serve
        request lines) must not regenerate the arrays or recompute the
        content digest per request.
        """
        normalized = []
        for request in requests:
            kwargs = dict(shared)
            if isinstance(request, dict):
                kwargs.update(request)
            else:
                kwargs["dataset"] = request
            ref = kwargs.get("dataset")
            if kwargs.get("job_id") is not None and isinstance(ref, str):
                # Durable jobs checkpoint the *raw* request (dataset by
                # name), which is what lets a restarted server re-issue
                # an in-flight job it was never handed again.
                kwargs["_raw_request"] = dict(kwargs)
            if isinstance(ref, str):
                key = (ref, kwargs.get("task"))
                if key not in self._dataset_memo:
                    self._dataset_memo[key] = self.load_dataset(
                        ref, task=kwargs.get("task")
                    )
                kwargs["dataset"] = self._dataset_memo[key]
            normalized.append(self._service_request(**kwargs))
        return normalized

    def train_many(self, requests, max_workers=None, adaptive=False,
                   adaptive_settings=None, **shared):
        """Serve a batch of train() requests through the service layer.

        Request forms match :meth:`optimize_many`.  Each request
        executes on its own simulated-cluster clone; with
        ``adaptive=True`` every run is monitored, may switch plans
        mid-flight, and feeds the shared calibration store.  Returns one
        :class:`~repro.service.TrainServiceResult` per request.
        """
        return self.service().train_many(
            self._normalize_requests(requests, shared),
            max_workers=max_workers,
            adaptive=adaptive,
            adaptive_settings=adaptive_settings,
        )

    def _service_request(self, dataset, task=None, epsilon=None,
                         max_iter=None, time_budget=None, algorithm=None,
                         batch=None, step=None, convergence=None, l2=0.0,
                         fixed_iterations=None, seed=None, job_id=None,
                         checkpoint_every=None, lease_iterations=None,
                         lease_seconds=None, trace_id=None,
                         _raw_request=None):
        # trace_id is envelope, not workload: it only rides along inside
        # _raw_request (the checkpointed job descriptor), where a fleet
        # worker reads it to join the submitting request's trace.
        del trace_id
        from repro.service import ServiceRequest

        dataset = self.load_dataset(dataset, task=task)
        training = self._training_spec(
            dataset, task, epsilon, max_iter, time_budget, step,
            convergence, l2, seed,
        )
        budget = None
        if lease_iterations is not None or lease_seconds is not None:
            from repro.runtime import JobBudget

            budget = JobBudget(
                max_iterations=lease_iterations, max_seconds=lease_seconds
            )
        return ServiceRequest(
            dataset=dataset,
            training=training,
            fixed_iterations=fixed_iterations,
            algorithms=(algorithm,) if algorithm else None,
            batch_sizes=gd_registry.batch_overrides(batch) or None,
            job_id=job_id,
            checkpoint_every=checkpoint_every,
            budget=budget,
            job_request=_raw_request,
        )

    def train(self, dataset, task=None, epsilon=None, max_iter=None,
              time_budget=None, algorithm=None, sampler=None,
              transform=None, batch=None, step=None, convergence=None,
              l2=0.0, fixed_iterations=None, seed=None, operators=None,
              adaptive=False, adaptive_settings=None, job_id=None,
              checkpoint_every=None, budget=None):
        """Train a model, optimizing the plan unless it is fully pinned.

        When ``algorithm`` (and optionally ``sampler`` / ``transform``)
        pin a single plan, the optimizer is bypassed for that choice --
        this is how the baseline-comparison experiments force a specific
        GD variant while still letting ML4all pick sampling/transform
        (Section 8.4: "we used ML4all just to find the best plan given a
        GD algorithm").

        ``adaptive=True`` trains under the adaptive runtime
        (:mod:`repro.runtime`): execution telemetry, a convergence/cost
        monitor that can re-run plan selection mid-flight and switch
        plans without losing model state, and an execution trace folded
        into this system's calibration store so later optimizations use
        corrected estimates.  The returned model carries ``trace`` and
        ``adaptive``.  With ``adaptive=False`` (the default) the
        behaviour is bit-identical to the one-shot path.

        ``job_id`` turns the request into a **durable, preemptible
        job** through the service layer: progress is checkpointed every
        ``checkpoint_every`` iterations (and at every graceful stop) to
        this system's ``checkpoint_path`` store, ``budget``
        (:class:`~repro.runtime.JobBudget`) bounds this lease, and a
        fresh process with the same store and ``job_id`` resumes the
        run mid-plan, bit-identically.  The returned model carries
        ``job``.
        """
        dataset = self.load_dataset(dataset, task=task)
        training = self._training_spec(
            dataset, task, epsilon, max_iter, time_budget, step,
            convergence, l2, seed,
        )
        trace = None
        adaptive_result = None

        if job_id is not None:
            if sampler is not None or operators is not None:
                raise PlanError(
                    "durable jobs run through the service layer, which "
                    "needs the optimizer in the loop and reconstructible "
                    "operators; drop sampler=/operators= or job_id="
                )
            outcome = self.service().train(
                dataset, training, fixed_iterations=fixed_iterations,
                algorithms=(algorithm,) if algorithm else None,
                batch_sizes=gd_registry.batch_overrides(batch) or None,
                adaptive=adaptive, adaptive_settings=adaptive_settings,
                job_id=job_id, checkpoint_every=checkpoint_every,
                budget=budget,
            )
            return TrainedModel(
                weights=outcome.result.weights,
                task=training.task,
                report=outcome.report,
                result=outcome.result,
                l2=l2,
                trace=outcome.trace,
                adaptive=outcome.adaptive,
                job=outcome.job,
            )

        if algorithm is not None and sampler is not None:
            if adaptive:
                raise PlanError(
                    "adaptive training needs the optimizer in the loop; "
                    "it cannot run with a fully pinned plan "
                    "(algorithm + sampler)"
                )
            plan = GDPlan(
                algorithm,
                transform_mode=transform or "eager",
                sampling=sampler,
                batch_size=batch,
            )
            result = execute_plan(self.engine, dataset, plan, training,
                                  operators)
            report = None
        elif adaptive:
            from repro.runtime import AdaptiveTrainer

            algorithms = (algorithm,) if algorithm else None
            trainer = AdaptiveTrainer(
                self._optimizer(algorithms, batch),
                settings=adaptive_settings,
                calibration=self.calibration,
                learned=self.learned,
            )
            adaptive_result = trainer.train(
                dataset, training, fixed_iterations=fixed_iterations
            )
            report = adaptive_result.report
            result = adaptive_result.result
            trace = adaptive_result.trace
        else:
            algorithms = (algorithm,) if algorithm else None
            optimizer = self._optimizer(algorithms, batch)
            report, result = optimizer.train(
                dataset, training, fixed_iterations=fixed_iterations,
                operators=operators,
            )
        return TrainedModel(
            weights=result.weights,
            task=training.task,
            report=report,
            result=result,
            l2=l2,
            trace=trace,
            adaptive=adaptive_result,
        )

    def execute_plan(self, dataset, plan, task=None, operators=None, **training_kwargs):
        """Execute one explicit GDPlan (no optimization)."""
        dataset = self.load_dataset(dataset, task=task)
        training = self._training_spec(
            dataset,
            task,
            training_kwargs.get("epsilon"),
            training_kwargs.get("max_iter"),
            training_kwargs.get("time_budget"),
            training_kwargs.get("step"),
            training_kwargs.get("convergence"),
            training_kwargs.get("l2", 0.0),
            training_kwargs.get("seed"),
        )
        return execute_plan(self.engine, dataset, plan, training, operators)

    # ------------------------------------------------------------------
    # declarative front-end
    # ------------------------------------------------------------------
    def query(self, text):
        """Execute a declarative query; returns the interpreter session.

        The result of the *last* statement is available as
        ``session.last_result``; named results (``Q1 = run ...``) live in
        ``session.results``.
        """
        from repro.lang.interpreter import Interpreter

        interpreter = Interpreter(self)
        interpreter.execute(text)
        return interpreter


def _canonical_task(task):
    aliases = {
        "classification": "logreg",
        "regression": "linreg",
        "linear_regression": "linreg",
        "logistic_regression": "logreg",
        "logreg": "logreg",
        "linreg": "linreg",
        "svm": "svm",
        # gradient-function names double as task names in the language
        "hinge": "svm",
        "logistic": "logreg",
        "squared": "linreg",
    }
    key = str(task).lower()
    if key not in aliases:
        raise PlanError(
            f"unknown task {task!r}; expected one of {sorted(set(aliases))}"
        )
    return aliases[key]


def _read_file(path, columns=None):
    """Read a dataset file: LIBSVM when it looks sparse, else CSV."""
    with open(path) as handle:
        first = handle.readline()
    if ":" in first.split("#")[0]:
        return libsvm.read_libsvm(path)
    data = np.loadtxt(path, delimiter=",", ndmin=2)
    if columns is not None:
        label_col = columns[0]
        feature_cols = columns[1]
        y = data[:, label_col]
        X = data[:, feature_cols]
    else:
        y = data[:, 0]
        X = data[:, 1:]
    return X, y
