"""The trace recorder: where finished spans go.

One :class:`TraceRecorder` per server.  ``record(span)`` is called by
:func:`repro.obs.spans.span` on every span exit and fans the span out
four ways, each optional:

* an in-memory ring of the most recent ``max_traces`` traces (what the
  ``trace <id>`` wire verb answers from);
* a JSON-lines file ``<trace_dir>/<trace_id>.jsonl`` when a trace
  directory is configured (what ``repro trace`` reads back, and the
  future training data for a learned cost model);
* a ``span.<name>`` histogram in the shared
  :class:`~repro.service.metrics.MetricsRegistry`;
* the ``repro.trace`` DEBUG log, plus -- for root spans over the
  configured threshold -- a ``repro.slow`` WARNING record and a
  ``slow_requests.jsonl`` sidecar file (the slow-request log).

:func:`assemble_tree` / :func:`render_tree` turn a flat span list back
into the request's call tree for humans.
"""

from __future__ import annotations

import json
import os
import re
import threading
from collections import OrderedDict
from contextlib import contextmanager

from repro.obs.context import TraceContext, activate, new_trace_id, restore
from repro.obs.logs import get_logger
from repro.obs.spans import span as _span

#: Traces kept in memory; the oldest falls off when a new one starts.
MAX_TRACES = 256

#: Spans kept per in-memory trace (a runaway loop must not eat the heap).
MAX_SPANS_PER_TRACE = 512

_TRACE_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._:-]{0,63}$")


def valid_trace_id(trace_id) -> bool:
    """True when ``trace_id`` is safe on the wire and as a file name."""
    return isinstance(trace_id, str) and bool(_TRACE_ID_RE.match(trace_id))


def _filename(trace_id) -> str:
    # ':' is legal on the wire but not in filenames everywhere.
    return trace_id.replace(":", "_") + ".jsonl"


class TraceRecorder:
    """Collects finished spans per trace; memory-first, disk-optional."""

    def __init__(self, trace_dir=None, metrics=None, max_traces=MAX_TRACES,
                 max_spans_per_trace=MAX_SPANS_PER_TRACE,
                 slow_threshold_s=None):
        self.trace_dir = trace_dir
        self.metrics = metrics
        self.max_traces = max(1, int(max_traces))
        self.max_spans_per_trace = max(1, int(max_spans_per_trace))
        #: Root spans at least this slow raise a slow-request record;
        #: None disables the slow log.
        self.slow_threshold_s = slow_threshold_s
        self._traces = OrderedDict()
        self._lock = threading.Lock()
        self._logger = get_logger("trace")
        self._slow_logger = get_logger("slow")
        if trace_dir:
            os.makedirs(trace_dir, exist_ok=True)

    # ------------------------------------------------------------------
    @contextmanager
    def trace(self, name, trace_id=None, **attributes):
        """Open a *root* span, minting (or adopting) the trace id.

        The yielded span's ``trace_id`` is the id to hand back to the
        client; everything instrumented inside the block becomes part
        of the same tree.
        """
        resolved = trace_id if valid_trace_id(trace_id) else new_trace_id()
        token = activate(TraceContext(
            trace_id=resolved, span_id=None, recorder=self,
        ))
        try:
            with _span(name, **attributes) as root:
                yield root
        finally:
            restore(token)

    # ------------------------------------------------------------------
    def record(self, span) -> None:
        """Accept one finished span (called from ``span()`` exit)."""
        payload = span.to_dict()
        with self._lock:
            bucket = self._traces.get(span.trace_id)
            if bucket is None:
                bucket = self._traces[span.trace_id] = []
                while len(self._traces) > self.max_traces:
                    self._traces.popitem(last=False)
            else:
                self._traces.move_to_end(span.trace_id)
            if len(bucket) < self.max_spans_per_trace:
                bucket.append(payload)
        if self.metrics is not None:
            self.metrics.histogram(f"span.{span.name}", span.duration_s)
        if self.trace_dir:
            self._append(_filename(span.trace_id), payload)
        if self._logger.isEnabledFor(10):  # DEBUG
            self._logger.debug(
                "span %s %.3fms", span.name, span.duration_s * 1e3,
                extra={"span": payload},
            )
        if (
            span.parent_id is None
            and self.slow_threshold_s is not None
            and span.duration_s >= self.slow_threshold_s
        ):
            self._record_slow(span, payload)

    def _record_slow(self, span, payload) -> None:
        self._slow_logger.warning(
            "slow request: trace %s (%s) took %.3fs (threshold %.3fs)",
            span.trace_id, span.name, span.duration_s,
            self.slow_threshold_s,
            extra={"duration_s": span.duration_s},
        )
        if self.metrics is not None:
            self.metrics.inc("obs.slow_requests")
        if self.trace_dir:
            self._append("slow_requests.jsonl", payload)

    def _append(self, filename, payload) -> None:
        path = os.path.join(self.trace_dir, filename)
        try:
            with open(path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(payload, default=str) + "\n")
        except OSError:
            pass  # tracing must never take the serve path down

    # ------------------------------------------------------------------
    def spans(self, trace_id) -> list | None:
        """Every recorded span dict of ``trace_id`` (memory first, then
        the trace directory); None when the trace is unknown."""
        with self._lock:
            bucket = self._traces.get(trace_id)
            if bucket is not None:
                return list(bucket)
        if self.trace_dir and valid_trace_id(trace_id):
            path = os.path.join(self.trace_dir, _filename(trace_id))
            if os.path.exists(path):
                return load_trace(path)
        return None


# ----------------------------------------------------------------------
def load_trace(path) -> list:
    """Read one JSON-lines trace file back into a span-dict list."""
    spans = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def assemble_tree(spans) -> list:
    """Nest a flat span list into root nodes with ``children`` lists.

    Children sort by start time; spans whose parent is missing (e.g. a
    trace truncated by the per-trace cap) surface as extra roots rather
    than disappearing.
    """
    nodes = {}
    for record in spans:
        node = dict(record)
        node["children"] = []
        nodes[node["span_id"]] = node
    roots = []
    for node in nodes.values():
        parent = nodes.get(node.get("parent_id"))
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            roots.append(node)
    def order(branch):
        branch.sort(key=lambda n: (n.get("start_s", 0.0), n["span_id"]))
        for child in branch:
            order(child["children"])
    order(roots)
    return roots


def _attr_text(attributes) -> str:
    parts = []
    for key, value in attributes.items():
        if isinstance(value, (list, tuple, dict)):
            parts.append(f"{key}=<{len(value)} items>")
        elif isinstance(value, float):
            parts.append(f"{key}={value:.4g}")
        else:
            parts.append(f"{key}={value}")
    return " ".join(parts)


def render_tree(spans) -> list:
    """Pretty-print a span list as indented text lines."""
    lines = []

    def walk(node, depth):
        indent = "  " * depth
        label = f"{indent}{node['name']} {node['duration_s'] * 1e3:.2f}ms"
        if node.get("status") and node["status"] != "ok":
            label += f" [{node['status']}]"
        attrs = _attr_text(node.get("attributes") or {})
        if attrs:
            label += f" {attrs}"
        lines.append(label)
        for child in node["children"]:
            walk(child, depth + 1)

    for root in assemble_tree(spans):
        walk(root, 0)
    return lines
