"""Structured logging for the serving stack.

One call -- :func:`configure_logging` -- installs a handler on the
``repro`` root logger.  Two output shapes:

* **text** (default): ``2026-08-08T12:00:00Z WARNING repro.serve
  request failed kind=bad_request`` -- extras appended as ``key=value``;
* **JSON lines** (``json_lines=True``): one JSON object per record with
  ``ts`` / ``level`` / ``logger`` / ``message``, every ``extra=`` field
  merged in, and -- when a trace is active -- ``trace_id`` / ``span_id``,
  so log lines join the same tree as spans.

The handler resolves ``sys.stderr`` at *emit* time rather than capturing
it at configure time, so stream redirection (pytest's capsys, shell
``2>``) behaves the way CLI users expect.  Reconfiguring replaces the
previously installed handler instead of stacking duplicates.
"""

from __future__ import annotations

import json
import logging
import sys
from datetime import datetime, timezone

from repro.obs.context import current_context

#: LogRecord attributes that are plumbing, not user-supplied extras.
_RESERVED = frozenset(logging.makeLogRecord({}).__dict__) | {
    "message", "asctime", "taskName",
}

ROOT_LOGGER = "repro"


def _extras(record) -> dict:
    return {
        key: value
        for key, value in record.__dict__.items()
        if key not in _RESERVED and not key.startswith("_")
    }


def _timestamp(record) -> str:
    moment = datetime.fromtimestamp(record.created, tz=timezone.utc)
    return moment.isoformat(timespec="milliseconds").replace("+00:00", "Z")


class JsonFormatter(logging.Formatter):
    """One JSON object per record; extras and trace ids merged in."""

    def format(self, record) -> str:
        payload = {
            "ts": _timestamp(record),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        context = current_context()
        if context is not None:
            payload["trace_id"] = context.trace_id
            if context.span_id is not None:
                payload["span_id"] = context.span_id
        payload.update(_extras(record))
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


class TextFormatter(logging.Formatter):
    """Human-readable one-liners, extras appended as ``key=value``."""

    def format(self, record) -> str:
        parts = [
            _timestamp(record),
            record.levelname,
            record.name,
            record.getMessage(),
        ]
        context = current_context()
        if context is not None:
            parts.append(f"trace_id={context.trace_id}")
        for key, value in sorted(_extras(record).items()):
            parts.append(f"{key}={value}")
        line = " ".join(str(part) for part in parts)
        if record.exc_info:
            line += "\n" + self.formatException(record.exc_info)
        return line


class _StderrHandler(logging.StreamHandler):
    """A StreamHandler that looks up ``sys.stderr`` per emit."""

    def __init__(self):
        logging.Handler.__init__(self)

    @property
    def stream(self):
        return sys.stderr

    @stream.setter
    def stream(self, value):  # noqa: ARG002 - stream is always live stderr
        pass


def configure_logging(level="info", json_lines=False, stream=None):
    """Install (or replace) the ``repro`` root logging handler.

    ``level`` is a name (``debug`` / ``info`` / ...) or numeric level;
    ``stream=None`` means live ``sys.stderr``.  Returns the root logger.
    Idempotent: calling again swaps formatter/level/stream instead of
    adding a second handler.
    """
    if isinstance(level, str):
        parsed = logging.getLevelName(level.strip().upper())
        if not isinstance(parsed, int):
            raise ValueError(f"unknown log level: {level!r}")
        level = parsed
    logger = logging.getLogger(ROOT_LOGGER)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_obs", False):
            logger.removeHandler(handler)
            handler.close()
    handler = (
        _StderrHandler() if stream is None else logging.StreamHandler(stream)
    )
    handler._repro_obs = True
    handler.setFormatter(JsonFormatter() if json_lines else TextFormatter())
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger


def get_logger(name=None) -> logging.Logger:
    """A logger under the ``repro`` root (``get_logger("serve")`` ->
    ``repro.serve``)."""
    if not name or name == ROOT_LOGGER:
        return logging.getLogger(ROOT_LOGGER)
    if name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")
