"""The ambient trace context: who is tracing, and under which span.

A :class:`TraceContext` is an immutable triple -- trace id, current span
id, and the :class:`~repro.obs.recorder.TraceRecorder` that owns the
trace -- carried in a :mod:`contextvars` variable.  Instrumentation
points (:func:`repro.obs.spans.span`) read it; when it is unset they do
nothing, which is what keeps tracing free for direct library callers.

Because the context rides a contextvar, it follows the call stack
naturally and crosses thread-pool boundaries only when copied
explicitly (``contextvars.copy_context().run(...)``) -- the speculation
thread pool does exactly that, so per-algorithm trial spans land in the
request's trace even though they run on worker threads.
"""

from __future__ import annotations

import contextvars
import dataclasses
import uuid

_CURRENT: contextvars.ContextVar = contextvars.ContextVar(
    "repro_trace_context", default=None
)


@dataclasses.dataclass(frozen=True)
class TraceContext:
    """The ambient tracing state for the current logical request."""

    #: Correlates every span of one request (16 hex chars, or whatever
    #: the client supplied on the wire).
    trace_id: str
    #: Span id new child spans attach to; None at the trace root.
    span_id: str | None
    #: The recorder finished spans are written to.
    recorder: object


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (64 random bits)."""
    return uuid.uuid4().hex[:16]


def new_span_id() -> str:
    """A fresh 8-hex-char span id (32 random bits)."""
    return uuid.uuid4().hex[:8]


def current_context() -> TraceContext | None:
    """The active :class:`TraceContext`, or None when not tracing."""
    return _CURRENT.get()


def current_trace_id() -> str | None:
    """The active trace id, or None when not tracing."""
    context = _CURRENT.get()
    return context.trace_id if context is not None else None


def current_span_id() -> str | None:
    """The active span id, or None outside any span."""
    context = _CURRENT.get()
    return context.span_id if context is not None else None


def activate(context) -> contextvars.Token:
    """Make ``context`` the ambient trace context; returns a reset token."""
    return _CURRENT.set(context)


def restore(token) -> None:
    """Undo a matching :func:`activate`."""
    _CURRENT.reset(token)
