"""Spans: named, timed, attributed blocks of one traced request.

The one function instrumented code calls is :func:`span`::

    with span("plan_choice", dataset=name) as sp:
        ...
        sp.set("chosen", str(plan))

Outside an active trace it yields a shared no-op span and records
nothing -- the cost is one contextvar read.  Inside a trace it opens a
child of the current span, re-points the ambient context at itself for
the duration of the block (so nested ``span()`` calls become children),
stamps an ``error`` status if the block raises, and hands the finished
span to the trace's recorder.

:func:`emit_span` covers the one case a ``with`` block cannot: a
duration measured *before* the trace context existed (the admission
queue wait -- the request only enters its trace once a worker picks it
up, but the wait itself belongs in the tree).
"""

from __future__ import annotations

import dataclasses
import time
from contextlib import contextmanager

from repro.obs.context import (
    TraceContext,
    activate,
    current_context,
    new_span_id,
    restore,
)


@dataclasses.dataclass
class Span:
    """One finished (or in-flight) unit of traced work."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    #: Wall-clock start (``time.time()``), for cross-process ordering.
    start_s: float
    duration_s: float = 0.0
    status: str = "ok"
    attributes: dict = dataclasses.field(default_factory=dict)

    def set(self, key, value) -> None:
        """Attach one attribute to the span."""
        self.attributes[key] = value

    def to_dict(self) -> dict:
        """The span as a JSON-ready dict (the JSON-lines record shape)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "status": self.status,
            "attributes": self.attributes,
        }


class _NullSpan:
    """The do-nothing span yielded outside any active trace."""

    __slots__ = ()

    def set(self, key, value) -> None:  # noqa: ARG002 - signature parity
        pass


NULL_SPAN = _NullSpan()


@contextmanager
def span(name, **attributes):
    """Open a child span of the current trace around a ``with`` block.

    No-op (yields :data:`NULL_SPAN`) when no trace context is active.
    Exceptions propagate, after stamping ``status="error"`` and an
    ``error`` attribute on the span.
    """
    context = current_context()
    if context is None or context.recorder is None:
        yield NULL_SPAN
        return
    current = Span(
        name=name,
        trace_id=context.trace_id,
        span_id=new_span_id(),
        parent_id=context.span_id,
        start_s=time.time(),
        attributes=dict(attributes),
    )
    token = activate(TraceContext(
        trace_id=context.trace_id,
        span_id=current.span_id,
        recorder=context.recorder,
    ))
    begun = time.perf_counter()
    try:
        yield current
    except BaseException as exc:
        current.status = "error"
        current.attributes.setdefault(
            "error", f"{type(exc).__name__}: {exc}"
        )
        raise
    finally:
        current.duration_s = time.perf_counter() - begun
        restore(token)
        context.recorder.record(current)


def emit_span(name, duration_s, **attributes) -> Span | None:
    """Record an already-measured child span (e.g. the admission queue
    wait, timed before the trace context existed).  Returns the span,
    or None when not tracing."""
    context = current_context()
    if context is None or context.recorder is None:
        return None
    now = time.time()
    duration_s = max(0.0, float(duration_s))
    finished = Span(
        name=name,
        trace_id=context.trace_id,
        span_id=new_span_id(),
        parent_id=context.span_id,
        start_s=now - duration_s,
        duration_s=duration_s,
        attributes=dict(attributes),
    )
    context.recorder.record(finished)
    return finished
