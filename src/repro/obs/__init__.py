"""Dependency-free observability: tracing, structured logs, metrics export.

The subsystem has three cooperating pieces, all standard-library only:

* **Trace context** (:mod:`repro.obs.context`) -- a contextvar-carried
  :class:`TraceContext` naming the current trace and span.  When no
  context is active, every instrumentation point in the hot path is a
  no-op, so library users who never start a trace pay (almost) nothing.
* **Spans** (:mod:`repro.obs.spans`) -- :func:`span` wraps a timed block
  and records a :class:`Span` (name, ids, duration, attributes) into the
  active trace's recorder on exit.
* **Recorder + logs** (:mod:`repro.obs.recorder`,
  :mod:`repro.obs.logs`) -- :class:`TraceRecorder` buffers recent traces
  in memory, optionally persists them as JSON-lines files under a trace
  directory, feeds span durations into a
  :class:`~repro.service.metrics.MetricsRegistry` histogram, and flags
  slow requests; :func:`configure_logging` installs a ``repro``-rooted
  ``logging`` tree with either human-readable text or JSON-lines output.

The :class:`~repro.service.frontend.Dispatcher` mints one trace per
request (or adopts a client-supplied ``trace_id`` from the wire), so a
single id correlates admission, speculation, plan choice, training
segments, checkpoints and leases across every layer.
"""

from repro.obs.context import (
    TraceContext,
    current_context,
    current_span_id,
    current_trace_id,
    new_span_id,
    new_trace_id,
)
from repro.obs.logs import JsonFormatter, configure_logging, get_logger
from repro.obs.recorder import TraceRecorder, assemble_tree, render_tree
from repro.obs.spans import Span, emit_span, span

__all__ = [
    "JsonFormatter",
    "Span",
    "TraceContext",
    "TraceRecorder",
    "assemble_tree",
    "configure_logging",
    "current_context",
    "current_span_id",
    "current_trace_id",
    "emit_span",
    "get_logger",
    "new_span_id",
    "new_trace_id",
    "render_tree",
    "span",
]
