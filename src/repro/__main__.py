"""Command-line entry point: run declarative ML4all queries.

    python -m repro "run classification on adult having epsilon 0.01;"
    python -m repro --file queries.ml4all
    echo "run svm on svm1;" | python -m repro -

Each query's optimizer decision and execution summary are printed; named
results persist across statements within one invocation.
"""

from __future__ import annotations

import argparse
import sys

from repro.api import ML4all
from repro.errors import ReproError


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run ML4all declarative queries on the simulated "
                    "cluster.",
    )
    parser.add_argument(
        "query", nargs="?",
        help="query text, or '-' to read from stdin",
    )
    parser.add_argument("--file", help="read queries from a file")
    parser.add_argument("--seed", type=int, default=7,
                        help="RNG seed (default 7)")
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    if args.file:
        with open(args.file) as handle:
            text = handle.read()
    elif args.query == "-":
        text = sys.stdin.read()
    elif args.query:
        text = args.query
    else:
        build_parser().print_help()
        return 2

    system = ML4all(seed=args.seed)
    try:
        session = system.query(text)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    result = session.last_result
    if hasattr(result, "result"):
        if result.report is not None:
            print(result.report.summary())
        print(result.result.summary())
    elif isinstance(result, dict) and "mse" in result:
        print(f"predictions computed; MSE vs ground truth: "
              f"{result['mse']:.4f}")
    else:
        print(result)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
