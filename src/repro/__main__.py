"""Command-line entry point: queries, batch/serve modes, calibration.

Legacy one-shot queries (unchanged):

    python -m repro "run classification on adult having epsilon 0.01;"
    python -m repro --file queries.ml4all
    echo "run svm on svm1;" | python -m repro -

Batch mode -- many optimize() requests through the plan-cached
:class:`~repro.service.OptimizerService`:

    python -m repro batch requests.txt --workers 8

Serve mode -- a line-oriented request loop on stdin (one response per
request; repeated workloads hit the warm plan cache):

    printf 'adult epsilon=0.01\\nadult epsilon=0.01\\n' | python -m repro serve

Both batch and serve accept ``--train`` (execute each chosen plan on a
per-request engine clone), ``--adaptive`` (train under the adaptive
runtime: telemetry, mid-flight re-optimization, calibration; implies
``--train``), ``--calibration PATH`` (persist learned correction
factors so a restarted server starts calibrated) and ``--cache PATH``
(persist the plan store -- speculation artifacts included -- so a
restarted server answers previously seen workloads without
re-speculating; ``.db``/``.sqlite`` selects the SQLite backend, any
other extension the JSON one).

Calibrate mode -- run one workload repeatedly under the adaptive
runtime and persist what the traces taught the calibration store:

    python -m repro calibrate adult --epsilon 0.01 --runs 3 \\
        --store calibration.json

Train mode -- one durable, preemptible training job: progress is
checkpointed to ``--checkpoint`` on a cadence and at every graceful
stop, ``--max-iterations``/``--max-seconds`` bound this lease, and
re-running the same command resumes the job bit-identically (a finished
job returns its stored outcome):

    python -m repro train adult epsilon=0.01 \\
        --job-id nightly --checkpoint jobs.json --max-iterations 200

Cache mode -- inspect or compact a plan-store / checkpoint-store file:

    python -m repro cache plans.json
    python -m repro cache jobs.json --compact --drop-done-jobs

Trace mode -- pretty-print one stored request trace (a server started
with ``--trace-dir`` writes one ``<trace_id>.jsonl`` per request; the
``trace_id`` rides every response):

    python -m repro trace 4f2e... --trace-dir traces/

Fleet mode -- share state across machines and drain jobs with a
worker pool:

    python -m repro store --path shared.db --port 7700
    python -m repro worker --checkpoint tcp://127.0.0.1:7700/jobs --drain

``repro store`` serves a local store file over a line protocol;
``tcp://host:port/namespace`` then works anywhere ``--cache`` /
``--checkpoint`` / ``--calibration`` take a path.  A ``repro serve``
request line with ``verb=enqueue`` parks a durable job in the shared
store instead of running it, and any ``repro worker`` pointed at the
same store claims it (the ``jobs`` verb reports fleet progress).

Batch and serve also take ``--log-level``/``--log-json`` (structured
logging on stderr), and serve adds ``--trace-dir`` plus
``--slow-request-s`` (slow-request log threshold).

All optimizing modes (one-shot queries, batch, serve) accept
``--algorithms NAME,NAME,...`` to widen (or narrow) the plan space the
cost-based optimizer enumerates to any registered GD algorithms --
e.g. ``--algorithms bgd,mgd,sgd,grad_avg,arc`` adds the two plugin
algorithms to the paper's core three.

Request lines are ``<dataset> [key=value ...]`` with the keys of
:meth:`ML4all.optimize` (``task``, ``epsilon``, ``max_iter``,
``time_budget``, ``algorithm``, ``batch``, ``step``, ``convergence``,
``l2``, ``fixed_iterations``, ``seed``) plus the durable-job keys
(``job_id``, ``checkpoint_every``, ``lease_iterations``,
``lease_seconds`` -- a line naming a ``job_id`` always trains).  Blank
lines and ``#`` comments are skipped.  With ``--checkpoint``, a
restarted ``repro serve`` finishes the store's in-flight jobs on
startup instead of waiting to be asked (and instead of re-speculating
them).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.api import ML4all
from repro.errors import ReproError
from repro.service.checkpoint import JobLeaseError

# Request-line parsing lives with the rest of the protocol code in the
# service front-end; re-exported here because the CLI is its historical
# home (tests and user code import it from repro.__main__).
from repro.service.frontend import (  # noqa: F401  (re-exports)
    _ALL_KEYS,
    _FLOAT_KEYS,
    _INT_KEYS,
    _STR_KEYS,
    Dispatcher,
    SocketFrontend,
    iter_request_lines,
    parse_request_line,
)


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run ML4all declarative queries on the simulated "
                    "cluster.  Subcommands: 'batch FILE' optimizes many "
                    "requests through the plan cache; 'serve' answers "
                    "request lines from stdin.",
    )
    parser.add_argument(
        "query", nargs="?",
        help="query text, or '-' to read from stdin",
    )
    parser.add_argument("--file", help="read queries from a file")
    parser.add_argument("--seed", type=int, default=7,
                        help="RNG seed (default 7)")
    _add_algorithms_flag(parser)
    _add_learned_flag(parser)
    return parser


def _add_algorithms_flag(parser):
    parser.add_argument(
        "--algorithms", metavar="NAMES", default=None,
        help="comma-separated GD algorithms the optimizer enumerates "
             "(any registered name, e.g. bgd,mgd,sgd,grad_avg,arc; "
             "default: the paper's core bgd,mgd,sgd)",
    )


def _add_learned_flag(parser):
    parser.add_argument(
        "--learned", metavar="PATH", default=None,
        help="blend the learned residual cost model at PATH (fitted "
             "with 'repro calibrate --fit-learned') into plan ranking; "
             "algorithms below its training-data gate rank exactly as "
             "without it",
    )


def _parse_algorithms(text):
    """Validate a ``--algorithms`` value against the registry.

    Returns a tuple of names, or None when the flag was not given (the
    caller then keeps :data:`~repro.gd.registry.CORE_ALGORITHMS`).
    """
    if text is None:
        return None
    from repro.gd import registry as gd_registry

    names = tuple(name.strip() for name in text.split(",") if name.strip())
    if not names:
        raise ReproError("--algorithms needs at least one algorithm name")
    for name in names:
        gd_registry.info(name)  # raises PlanError for unknown names
    return names


def _ml4all_kwargs(args) -> dict:
    """ML4all() keyword arguments shared by every subcommand."""
    kwargs = {"seed": args.seed}
    algorithms = _parse_algorithms(getattr(args, "algorithms", None))
    if algorithms is not None:
        kwargs["algorithms"] = algorithms
    if getattr(args, "learned", None):
        kwargs["learned_path"] = args.learned
    return kwargs


def _service_parser(prog, description):
    parser = argparse.ArgumentParser(prog=prog, description=description)
    parser.add_argument("--seed", type=int, default=7,
                        help="RNG seed (default 7)")
    _add_algorithms_flag(parser)
    parser.add_argument("--workers", type=int, default=None,
                        help="max concurrent optimize() computations")
    parser.add_argument("--cache-size", type=int, default=256,
                        help="plan cache capacity (default 256)")
    parser.add_argument("--train", action="store_true",
                        help="execute each chosen plan on a per-request "
                             "engine clone (not just optimize)")
    parser.add_argument("--adaptive", action="store_true",
                        help="train under the adaptive runtime: telemetry, "
                             "mid-flight re-optimization, calibration "
                             "(implies --train)")
    parser.add_argument("--calibration", metavar="PATH", default=None,
                        help="load/persist the calibration store at PATH "
                             "(a restarted server starts calibrated)")
    _add_learned_flag(parser)
    parser.add_argument("--cache", metavar="PATH", default=None,
                        help="persist the plan store at PATH (.db/.sqlite "
                             "-> SQLite, else JSON); a restarted server "
                             "answers previously seen workloads without "
                             "re-speculating")
    parser.add_argument("--checkpoint", metavar="PATH", default=None,
                        help="persist training-job checkpoints at PATH "
                             "(same extension rules as --cache); request "
                             "lines with job_id= become durable jobs, and "
                             "a restarted server finishes the store's "
                             "in-flight jobs on startup")
    parser.add_argument("--log-level", default="info",
                        metavar="LEVEL",
                        help="logging level for the repro logger tree "
                             "(debug/info/warning/error; default info)")
    parser.add_argument("--log-json", action="store_true",
                        help="emit log records as JSON lines on stderr "
                             "instead of human-readable text")
    return parser


def _configure_obs(args):
    """Install the structured-logging setup from shared CLI flags."""
    from repro.obs import configure_logging

    configure_logging(level=args.log_level, json_lines=args.log_json)


def _train_and_report(system, requests, args, max_workers=None):
    """Train-mode request loop shared by batch/serve/train.

    Returns ``(results, lines)`` where ``lines`` holds one *group* of
    output lines per request (the request's summary plus any mid-flight
    switch lines), so callers that mix trained and optimize-only
    requests can interleave output in the original request order.
    """
    results = system.train_many(
        requests,
        max_workers=args.workers if max_workers is None else max_workers,
        adaptive=args.adaptive,
    )
    groups = []
    for request, result in zip(requests, results):
        group = [f"{request['dataset']}: {result.summary()}"]
        if result.trace is not None and result.trace.switches:
            for switch in result.trace.switches:
                group.append(
                    f"  switched {switch.from_plan} -> {switch.to_plan} "
                    f"at iteration {switch.iteration}: {switch.reason}"
                )
        groups.append(group)
    return results, groups


def _save_calibration(system, args):
    if args.calibration:
        system.save_calibration(args.calibration)


def batch_main(argv) -> int:
    parser = _service_parser(
        "python -m repro batch",
        "Run a file of optimize() requests through the OptimizerService.",
    )
    parser.add_argument("requests", help="request file, or '-' for stdin")
    parser.add_argument("--repeat", type=int, default=1,
                        help="serve the request list N times (default 1; "
                             ">1 demonstrates the warm plan cache)")
    args = parser.parse_args(argv)

    _configure_obs(args)
    try:
        if args.requests == "-":
            requests = list(iter_request_lines(sys.stdin))
        else:
            with open(args.requests) as handle:
                requests = list(iter_request_lines(handle))
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not requests:
        print("error: no requests found", file=sys.stderr)
        return 2
    requests = requests * max(1, args.repeat)

    try:
        system = ML4all(calibration_path=args.calibration,
                        cache_path=args.cache,
                        checkpoint_path=args.checkpoint,
                        **_ml4all_kwargs(args))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    system.service(cache_size=args.cache_size)
    # Per line, like serve: --train/--adaptive train everything, and a
    # line naming a durable job always trains -- without dragging the
    # file's optimize-only lines into training with it.
    trains = [args.train or args.adaptive or "job_id" in r
              for r in requests]
    train_requests = [r for r, t in zip(requests, trains) if t]
    plain_requests = [r for r, t in zip(requests, trains) if not t]
    # Repeated leases of one job (--repeat, or duplicate job_id lines)
    # must run in sequence: concurrently they would contend for the
    # job's lease and the loser would abort the batch.
    job_ids = [r["job_id"] for r in train_requests if "job_id" in r]
    train_workers = 1 if len(job_ids) != len(set(job_ids)) else None
    start = time.perf_counter()
    try:
        train_groups = (
            _train_and_report(system, train_requests, args,
                              max_workers=train_workers)[1]
            if train_requests else []
        )
        plain_results = system.optimize_many(
            plain_requests, max_workers=args.workers
        )
        plain_groups = [
            [f"{request['dataset']}: {result.summary()}"]
            for request, result in zip(plain_requests, plain_results)
        ]
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - start

    trained, plain = iter(train_groups), iter(plain_groups)
    for is_train in trains:
        for line in next(trained if is_train else plain):
            print(line)
    rate = len(requests) / elapsed if elapsed > 0 else float("inf")
    verb = ("train" if all(trains) else
            "optimize" if not any(trains) else "request")
    print(f"{len(requests)} requests in {elapsed:.3f}s "
          f"({rate:.1f} {verb}/s)")
    print(system.service().stats_summary())
    _save_calibration(system, args)
    return 0


def _finish_pending_jobs(system, service, args) -> int:
    """Resume the checkpoint store's in-flight jobs at server startup.

    A job whose process died mid-lease sits in the store as
    ``running``/``preempted`` with banked progress and -- when it came
    through the CLI -- the request line that started it.  A restarted
    server re-issues exactly those, stripping the per-lease budget keys
    so the resumed run finishes instead of re-preempting.  Jobs without
    a request descriptor (started programmatically) are reported but
    left for their owners.
    """
    if service.checkpoints is None:
        return 0
    finished = 0
    for job_id, checkpoint in sorted(service.checkpoints.pending().items()):
        request = checkpoint.request
        if not isinstance(request, dict) or "dataset" not in request:
            print(f"# in-flight job {job_id!r} has no request descriptor; "
                  "leaving it for its owner", file=sys.stderr)
            continue
        request = {k: v for k, v in request.items()
                   if k not in ("lease_iterations", "lease_seconds")}
        print(f"# resuming in-flight job {job_id!r} from iteration "
              f"{checkpoint.done_iterations}")
        try:
            _, groups = _train_and_report(system, [request], args)
        except JobLeaseError as exc:
            # Typically our own predecessor's unexpired lease after a
            # hard kill: it expires lease_ttl_s after its last
            # checkpoint write, so say when to try again.
            print(f"# job {job_id!r} is still leased ({exc}); "
                  "restart after the lease expires to resume it",
                  file=sys.stderr)
            continue
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            continue
        for out in groups[0]:
            print(out)
        finished += 1
    return finished


def serve_main(argv) -> int:
    parser = _service_parser(
        "python -m repro serve",
        "Answer optimize() request lines from stdin until EOF, or -- "
        "with --listen -- serve JSON lines over TCP with admission "
        "control (load shedding, per-tenant quotas, deadlines).",
    )
    parser.add_argument("--listen", metavar="PORT", type=int, default=None,
                        help="serve a TCP line protocol on PORT instead of "
                             "stdin (0 picks a free port)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface for --listen (default 127.0.0.1)")
    parser.add_argument("--shed-after", type=int, default=64,
                        help="admission bound: reject new requests with a "
                             "structured 'overloaded' response while this "
                             "many are queued or running (default 64)")
    parser.add_argument("--max-inflight", type=int, default=None,
                        help="per-tenant inflight quota; over-quota "
                             "requests get a structured 'quota_exceeded' "
                             "response (default: no quota)")
    parser.add_argument("--trace-dir", metavar="DIR", default=None,
                        help="persist request traces as JSON-lines files "
                             "under DIR (one <trace_id>.jsonl per trace, "
                             "plus slow_requests.jsonl); read them back "
                             "with 'repro trace'")
    parser.add_argument("--slow-request-s", type=float, default=None,
                        metavar="SECONDS",
                        help="log a WARNING (and count obs.slow_requests) "
                             "for any request slower than SECONDS")
    args = parser.parse_args(argv)

    _configure_obs(args)
    from repro.obs import TraceRecorder, get_logger

    try:
        system = ML4all(calibration_path=args.calibration,
                        cache_path=args.cache,
                        checkpoint_path=args.checkpoint,
                        **_ml4all_kwargs(args))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    service = system.service(cache_size=args.cache_size)
    tracer = TraceRecorder(
        trace_dir=args.trace_dir,
        metrics=service.metrics,
        slow_threshold_s=args.slow_request_s,
    )
    dispatcher = Dispatcher(system, train=args.train, adaptive=args.adaptive,
                            workers=args.workers, tracer=tracer)
    log = get_logger("serve")
    served = failed = 0
    served += _finish_pending_jobs(system, service, args)

    if args.listen is not None:
        frontend = SocketFrontend(
            dispatcher, host=args.host, port=args.listen,
            max_workers=args.workers or 8,
            shed_after=args.shed_after, max_inflight=args.max_inflight,
        )
        port = frontend.start()
        print(f"listening on {args.host}:{port}", flush=True)
        try:
            frontend.wait()
        except KeyboardInterrupt:
            pass
        finally:
            frontend.stop()
            print(service.stats_summary())
            _save_calibration(system, args)
        return 0

    for line in sys.stdin:
        line = line.split("#", 1)[0].strip()
        if not line:
            continue
        if line in ("quit", "exit"):
            break
        response = dispatcher.handle_line(line)
        if response.get("ok"):
            served += 1
            for out in response.get("lines", []):
                print(out)
        else:
            # Structured error on stdout (machine-readable, same shape
            # as the socket protocol) plus a structured log record on
            # stderr; the loop always continues.
            failed += 1
            print(json.dumps(response))
            detail = response.get("detail", response.get("error"))
            log.warning(
                "request error: %s", detail,
                extra={
                    "kind": response.get("error"),
                    **({"trace_id": response["trace_id"]}
                       if response.get("trace_id") else {}),
                },
            )
        sys.stdout.flush()
    print(service.stats_summary())
    _save_calibration(system, args)
    return 0 if failed == 0 or served > 0 else 1


def train_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro train",
        description="Run one durable, preemptible training job.  "
                    "Progress is checkpointed to --checkpoint on a "
                    "cadence and at every graceful stop; re-running the "
                    "same command resumes a killed or preempted job "
                    "bit-identically, and a finished job returns its "
                    "stored outcome without retraining.",
    )
    parser.add_argument("request", nargs="+",
                        help="<dataset> [key=value ...] (same keys as "
                             "batch/serve request lines)")
    parser.add_argument("--job-id", required=True,
                        help="durable job identity within the store")
    parser.add_argument("--checkpoint", metavar="PATH", required=True,
                        help="checkpoint store (.db/.sqlite -> SQLite, "
                             "else JSON)")
    parser.add_argument("--checkpoint-every", type=int, default=25,
                        help="persist every N training iterations "
                             "(default 25)")
    parser.add_argument("--max-iterations", type=int, default=None,
                        help="preemption budget: at most N iterations "
                             "this lease, then stop gracefully")
    parser.add_argument("--max-seconds", type=float, default=None,
                        help="preemption budget: at most S wall seconds "
                             "this lease")
    parser.add_argument("--adaptive", action="store_true",
                        help="train under the adaptive runtime")
    parser.add_argument("--workers", type=int, default=1,
                        help=argparse.SUPPRESS)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--calibration", metavar="PATH", default=None)
    parser.add_argument("--cache", metavar="PATH", default=None)
    args = parser.parse_args(argv)

    try:
        request = parse_request_line(" ".join(args.request))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    request["job_id"] = args.job_id
    request["checkpoint_every"] = args.checkpoint_every
    if args.max_iterations is not None:
        request["lease_iterations"] = args.max_iterations
    if args.max_seconds is not None:
        request["lease_seconds"] = args.max_seconds

    system = ML4all(seed=args.seed, calibration_path=args.calibration,
                    cache_path=args.cache, checkpoint_path=args.checkpoint)
    try:
        _, groups = _train_and_report(system, [request], args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for line in groups[0]:
        print(line)
    progress = system.service().checkpoints.load(args.job_id)
    if progress is not None and progress.status == "preempted":
        print(f"job {args.job_id!r} preempted at iteration "
              f"{progress.done_iterations}; re-run the same command to "
              "resume")
    print(system.service().stats_summary())
    _save_calibration(system, args)
    return 0


def trace_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Pretty-print one stored request trace: reassemble "
                    "the JSON-lines span records a server wrote under "
                    "--trace-dir into the request's span tree.",
    )
    parser.add_argument("trace",
                        help="a trace id (resolved under --trace-dir) or "
                             "a path to a .jsonl trace file")
    parser.add_argument("--trace-dir", metavar="DIR", default=".",
                        help="directory holding <trace_id>.jsonl files "
                             "(default: current directory)")
    parser.add_argument("--json", action="store_true",
                        help="print the nested span tree as JSON instead "
                             "of text lines")
    args = parser.parse_args(argv)

    from repro.obs import assemble_tree, render_tree
    from repro.obs.recorder import load_trace, valid_trace_id

    if os.path.exists(args.trace):
        path = args.trace
    elif valid_trace_id(args.trace):
        path = os.path.join(
            args.trace_dir, args.trace.replace(":", "_") + ".jsonl"
        )
    else:
        print(f"error: {args.trace!r} is neither a trace file nor a "
              "valid trace id", file=sys.stderr)
        return 2
    if not os.path.exists(path):
        print(f"error: no trace at {path!r} (wrong --trace-dir?)",
              file=sys.stderr)
        return 1
    try:
        spans = load_trace(path)
    except (OSError, ValueError) as exc:
        print(f"error: unreadable trace {path!r}: {exc}", file=sys.stderr)
        return 1
    if not spans:
        print(f"error: {path!r} holds no spans", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(assemble_tree(spans), indent=2, default=str))
    else:
        for line in render_tree(spans):
            print(line)
        total = sum(
            s.get("duration_s", 0.0) for s in spans
            if s.get("parent_id") is None
        )
        print(f"{len(spans)} spans, {total * 1e3:.2f}ms across "
              f"{sum(1 for s in spans if s.get('parent_id') is None)} "
              "root span(s)")
    return 0


def cache_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro cache",
        description="Inspect (entry counts, formats, ages, job statuses) "
                    "and optionally compact a plan-store or "
                    "checkpoint-store file.",
    )
    parser.add_argument("path", help="store file (.db/.sqlite -> SQLite, "
                                     "else JSON)")
    parser.add_argument("--compact", action="store_true",
                        help="rewrite the store, dropping undecodable / "
                             "outdated-format entries (and whatever the "
                             "options below select)")
    parser.add_argument("--ttl", type=float, default=None, metavar="SECONDS",
                        help="with --compact: also drop plan entries "
                             "written longer than SECONDS ago")
    parser.add_argument("--drop-done-jobs", action="store_true",
                        help="with --compact: also drop checkpoints of "
                             "finished jobs")
    args = parser.parse_args(argv)

    if not args.path.startswith("tcp://") and not os.path.exists(args.path):
        print(f"error: no store at {args.path!r}", file=sys.stderr)
        return 1
    from repro.service import compact_store, inspect_store

    report = inspect_store(args.path)
    print(f"{report['path']} ({report['backend']} backend): "
          f"{report['entries']} entries")
    for kind, label in (("plans", "plan entries"),
                        ("jobs", "job checkpoints")):
        bucket = report[kind]
        if not bucket["count"]:
            continue
        line = f"  {label}: {bucket['count']}"
        formats = ", ".join(
            f"format {fmt} x{n}"
            for fmt, n in sorted(bucket["formats"].items())
        )
        line += f" ({formats})"
        if bucket["ages_s"]:
            line += (f", age {min(bucket['ages_s']):.0f}s"
                     f"..{max(bucket['ages_s']):.0f}s")
        if kind == "jobs" and bucket["statuses"]:
            line += ", " + ", ".join(
                f"{status}: {n}"
                for status, n in sorted(bucket["statuses"].items())
            )
        print(line)
    if report["unknown"]:
        print(f"  unknown entries: {report['unknown']}")
    if args.compact:
        outcome = compact_store(args.path, ttl_s=args.ttl,
                                drop_done_jobs=args.drop_done_jobs)
        print(f"compacted: kept {outcome['kept']}, "
              f"dropped {outcome['dropped']}")
    return 0


def store_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro store",
        description="Serve a shared key-value store over TCP: the "
                    "fleet's network boundary.  Point --cache/"
                    "--checkpoint/calibration paths of servers and "
                    "workers at tcp://HOST:PORT/NAMESPACE and they "
                    "share state through this process.",
    )
    parser.add_argument("--path", default=None, metavar="PATH",
                        help="backing store file (.db/.sqlite -> SQLite, "
                             "else JSON); default: in-memory (state dies "
                             "with the process)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface to bind (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=0,
                        help="port to bind (default 0: pick a free one)")
    parser.add_argument("--shard", default=None, metavar="I/N",
                        help="serve shard I of an N-way fingerprint-range "
                             "split (0-based); keys owned by a sibling "
                             "shard are refused, clients route via "
                             "tcp://h0:p0,h1:p1,.../ns")
    parser.add_argument("--log-level", default="info", metavar="LEVEL")
    parser.add_argument("--log-json", action="store_true")
    args = parser.parse_args(argv)

    _configure_obs(args)
    shard = None
    if args.shard:
        index, sep, count = args.shard.partition("/")
        try:
            if not sep:
                raise ValueError(args.shard)
            shard = (int(index), int(count))
        except ValueError:
            print(f"error: --shard expects I/N (e.g. 0/3), got "
                  f"{args.shard!r}", file=sys.stderr)
            return 2
    from repro.service.remote import StoreServer

    try:
        server = StoreServer(path=args.path, host=args.host,
                             port=args.port, shard=shard)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    port = server.start()
    shard_note = f" (shard {args.shard})" if shard else ""
    print(f"listening on {args.host}:{port}{shard_note}", flush=True)
    try:
        server.wait()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        print(f"{server.frames_served} frames served")
    return 0


def worker_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro worker",
        description="Drain durable training jobs from a shared "
                    "checkpoint store.  Claims pending/queued jobs "
                    "under the store's leases, steals expired-lease "
                    "jobs from crashed peers, and resumes them "
                    "bit-identically from their checkpoints.  Run N of "
                    "these against one store (tcp://... or a shared "
                    "file) and they coordinate through the leases "
                    "alone.",
    )
    parser.add_argument("--checkpoint", metavar="PATH", required=True,
                        help="the shared checkpoint store: tcp://HOST:"
                             "PORT/NAMESPACE of a 'repro store', or a "
                             "local/shared file path")
    parser.add_argument("--drain", action="store_true",
                        help="exit once no claimable jobs remain "
                             "(default: keep polling for new work)")
    parser.add_argument("--worker-id", default=None,
                        help="stable identity stamped into lease-history "
                             "records and heartbeats (default: random)")
    parser.add_argument("--poll", type=float, default=0.5, metavar="S",
                        help="seconds between store polls when idle "
                             "(default 0.5)")
    parser.add_argument("--lease-ttl", type=float, default=None,
                        metavar="S",
                        help="lease time-to-live override: how long "
                             "after a crashed peer's last checkpoint "
                             "write its jobs become stealable")
    parser.add_argument("--max-seconds", type=float, default=None,
                        metavar="S",
                        help="exit after S seconds even without --drain")
    parser.add_argument("--trace-dir", metavar="DIR", default=None,
                        help="persist job traces as JSON-lines files "
                             "under DIR; jobs enqueued through a traced "
                             "server join their submitting request's "
                             "trace id")
    parser.add_argument("--seed", type=int, default=7,
                        help="RNG seed; must match the submitting "
                             "server's for bit-identical plans "
                             "(default 7)")
    parser.add_argument("--cache", metavar="PATH", default=None)
    parser.add_argument("--calibration", metavar="PATH", default=None)
    parser.add_argument("--log-level", default="info", metavar="LEVEL")
    parser.add_argument("--log-json", action="store_true")
    args = parser.parse_args(argv)

    _configure_obs(args)
    from repro.obs import TraceRecorder
    from repro.service.worker import FleetWorker

    system = ML4all(seed=args.seed, calibration_path=args.calibration,
                    cache_path=args.cache, checkpoint_path=args.checkpoint)
    service = system.service()
    if args.lease_ttl is not None:
        service.checkpoints.lease_ttl_s = float(args.lease_ttl)
    tracer = TraceRecorder(trace_dir=args.trace_dir,
                           metrics=service.metrics)
    try:
        worker = FleetWorker(system, worker_id=args.worker_id,
                             poll_s=args.poll, tracer=tracer)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"worker {worker.worker_id} draining {args.checkpoint}",
          flush=True)
    try:
        totals = worker.run(drain=args.drain,
                            max_seconds=args.max_seconds)
    except KeyboardInterrupt:
        totals = {"done": worker.jobs_done, "failed": worker.jobs_failed,
                  "steals": worker.steals}
    print(f"worker {worker.worker_id}: {totals['done']} job(s) done, "
          f"{totals['steals']} stolen, {totals['failed']} failed")
    _save_calibration(system, args)
    return 0 if totals["failed"] == 0 else 1


def calibrate_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro calibrate",
        description="Run one workload repeatedly under the adaptive "
                    "runtime and persist the learned cost/iteration "
                    "correction factors.",
    )
    parser.add_argument("dataset", help="registry name or dataset file")
    parser.add_argument("--task", default=None)
    parser.add_argument("--epsilon", type=float, default=0.01)
    parser.add_argument("--max-iter", type=int, default=1000)
    parser.add_argument("--runs", type=int, default=3,
                        help="adaptive training runs (default 3)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--store", metavar="PATH", default=None,
                        help="calibration store JSON: loaded when present, "
                             "saved afterwards")
    parser.add_argument("--perturb", action="append", default=[],
                        metavar="ALG=FACTOR",
                        help="deliberately mis-scale the cost model for one "
                             "algorithm (repeatable; shows calibration "
                             "correcting a known fault)")
    parser.add_argument("--fit-learned", metavar="PATH", default=None,
                        help="harvest every run's execution trace into the "
                             "learned residual model at PATH (loaded when "
                             "present, refitted and saved afterwards); "
                             "serve it back with --learned on "
                             "optimize/batch/serve")
    args = parser.parse_args(argv)

    from repro.gd.registry import ALGORITHMS

    factors = {}
    for item in args.perturb:
        alg, sep, value = item.partition("=")
        try:
            if not sep:
                raise ValueError(item)
            factors[alg] = float(value)
        except ValueError:
            print(f"error: --perturb expects ALG=FACTOR, got {item!r}",
                  file=sys.stderr)
            return 2
        if alg not in ALGORITHMS:
            # A typo here would silently calibrate an unperturbed model.
            print(f"error: --perturb names unknown algorithm {alg!r}; "
                  f"expected one of {sorted(ALGORITHMS)}", file=sys.stderr)
            return 2

    from repro.cluster import SimulatedCluster
    from repro.core.iterations import SpeculativeEstimator
    from repro.core.optimizer import GDOptimizer
    from repro.runtime import AdaptiveTrainer, PerturbedCostModel

    system = ML4all(seed=args.seed, calibration_path=args.store)
    try:
        dataset = system.load_dataset(args.dataset, task=args.task)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print("before:", system.calibration.summary())

    learned = None
    if args.fit_learned:
        from repro.learned import ResidualModel

        learned = ResidualModel.open(args.fit_learned)

    for run in range(max(1, args.runs)):
        engine = SimulatedCluster(system.spec, seed=args.seed + run)
        optimizer = GDOptimizer(
            engine,
            estimator=SpeculativeEstimator(
                system.speculation, seed=args.seed
            ),
            cost_model=(
                PerturbedCostModel(system.spec, factors) if factors else None
            ),
            calibration=system.calibration,
        )
        trainer = AdaptiveTrainer(optimizer, calibration=system.calibration)
        training = system._training_spec(
            dataset, args.task, args.epsilon, args.max_iter, None, None,
            None, 0.0, args.seed + run,
        )
        try:
            outcome = trainer.train(dataset, training)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"run {run + 1}: {outcome.trace.summary()}")
        for switch in outcome.trace.switches:
            print(f"  switched {switch.from_plan} -> {switch.to_plan} "
                  f"at iteration {switch.iteration}: {switch.reason}")
        if learned is not None:
            added = learned.observe_trace(
                outcome.trace, dataset.stats, system.spec
            )
            print(f"  learned: {added} example(s) harvested")

    print("after:", system.calibration.summary())
    if learned is not None:
        learned.save(args.fit_learned)
        print("after:", learned.summary())
        print(f"learned model saved to {args.fit_learned}")
    if args.store:
        system.save_calibration(args.store)
        print(f"calibration store saved to {args.store}")
    return 0


def query_main(args) -> int:
    if args.file:
        with open(args.file) as handle:
            text = handle.read()
    elif args.query == "-":
        text = sys.stdin.read()
    elif args.query:
        text = args.query
    else:
        build_parser().print_help()
        return 2

    try:
        system = ML4all(**_ml4all_kwargs(args))
        session = system.query(text)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    result = session.last_result
    if hasattr(result, "result"):
        if result.report is not None:
            print(result.report.summary())
        print(result.result.summary())
    elif isinstance(result, dict) and "mse" in result:
        print(f"predictions computed; MSE vs ground truth: "
              f"{result['mse']:.4f}")
    else:
        print(result)
    return 0


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "batch":
        return batch_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "calibrate":
        return calibrate_main(argv[1:])
    if argv and argv[0] == "train":
        return train_main(argv[1:])
    if argv and argv[0] == "cache":
        return cache_main(argv[1:])
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "store":
        return store_main(argv[1:])
    if argv and argv[0] == "worker":
        return worker_main(argv[1:])
    return query_main(build_parser().parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
