"""Command-line entry point: queries, batch optimization, and serving.

Legacy one-shot queries (unchanged):

    python -m repro "run classification on adult having epsilon 0.01;"
    python -m repro --file queries.ml4all
    echo "run svm on svm1;" | python -m repro -

Batch mode -- many optimize() requests through the plan-cached
:class:`~repro.service.OptimizerService`:

    python -m repro batch requests.txt --workers 8

Serve mode -- a line-oriented request loop on stdin (one response per
request; repeated workloads hit the warm plan cache):

    printf 'adult epsilon=0.01\\nadult epsilon=0.01\\n' | python -m repro serve

Request lines are ``<dataset> [key=value ...]`` with the keys of
:meth:`ML4all.optimize` (``task``, ``epsilon``, ``max_iter``,
``time_budget``, ``algorithm``, ``batch``, ``step``, ``convergence``,
``l2``, ``fixed_iterations``, ``seed``).  Blank lines and ``#`` comments
are skipped.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.api import ML4all
from repro.errors import ReproError

#: Request-line keys coerced to int / float; the rest stay strings.
_INT_KEYS = {"max_iter", "batch", "fixed_iterations", "seed"}
_FLOAT_KEYS = {"epsilon", "time_budget", "step", "l2"}
_STR_KEYS = {"task", "algorithm", "convergence"}
_ALL_KEYS = _INT_KEYS | _FLOAT_KEYS | _STR_KEYS


def parse_request_line(line) -> dict:
    """Parse one ``<dataset> key=value ...`` request line."""
    tokens = line.split()
    if not tokens or "=" in tokens[0]:
        raise ReproError(
            f"request line must start with a dataset reference: {line!r}"
        )
    request = {"dataset": tokens[0]}
    for token in tokens[1:]:
        key, sep, value = token.partition("=")
        if not sep or not key or not value:
            raise ReproError(f"expected key=value, got {token!r}")
        if key not in _ALL_KEYS:
            raise ReproError(
                f"unknown request key {key!r}; expected one of "
                f"{sorted(_ALL_KEYS)}"
            )
        try:
            if key in _INT_KEYS:
                request[key] = int(value)
            elif key in _FLOAT_KEYS:
                request[key] = float(value)
            else:
                request[key] = value
        except ValueError:
            raise ReproError(
                f"invalid value for {key}: {value!r}"
            ) from None
    return request


def iter_request_lines(handle):
    """Yield parsed request dicts from a line stream, skipping comments."""
    for line in handle:
        line = line.split("#", 1)[0].strip()
        if line:
            yield parse_request_line(line)


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run ML4all declarative queries on the simulated "
                    "cluster.  Subcommands: 'batch FILE' optimizes many "
                    "requests through the plan cache; 'serve' answers "
                    "request lines from stdin.",
    )
    parser.add_argument(
        "query", nargs="?",
        help="query text, or '-' to read from stdin",
    )
    parser.add_argument("--file", help="read queries from a file")
    parser.add_argument("--seed", type=int, default=7,
                        help="RNG seed (default 7)")
    return parser


def _service_parser(prog, description):
    parser = argparse.ArgumentParser(prog=prog, description=description)
    parser.add_argument("--seed", type=int, default=7,
                        help="RNG seed (default 7)")
    parser.add_argument("--workers", type=int, default=None,
                        help="max concurrent optimize() computations")
    parser.add_argument("--cache-size", type=int, default=256,
                        help="plan cache capacity (default 256)")
    return parser


def batch_main(argv) -> int:
    parser = _service_parser(
        "python -m repro batch",
        "Run a file of optimize() requests through the OptimizerService.",
    )
    parser.add_argument("requests", help="request file, or '-' for stdin")
    parser.add_argument("--repeat", type=int, default=1,
                        help="serve the request list N times (default 1; "
                             ">1 demonstrates the warm plan cache)")
    args = parser.parse_args(argv)

    try:
        if args.requests == "-":
            requests = list(iter_request_lines(sys.stdin))
        else:
            with open(args.requests) as handle:
                requests = list(iter_request_lines(handle))
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not requests:
        print("error: no requests found", file=sys.stderr)
        return 2
    requests = requests * max(1, args.repeat)

    system = ML4all(seed=args.seed)
    system.service(cache_size=args.cache_size)
    start = time.perf_counter()
    try:
        results = system.optimize_many(requests, max_workers=args.workers)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - start

    for request, result in zip(requests, results):
        print(f"{request['dataset']}: {result.summary()}")
    rate = len(results) / elapsed if elapsed > 0 else float("inf")
    print(f"{len(results)} requests in {elapsed:.3f}s "
          f"({rate:.1f} optimize/s)")
    print(system.service().stats_summary())
    return 0


def serve_main(argv) -> int:
    parser = _service_parser(
        "python -m repro serve",
        "Answer optimize() request lines from stdin until EOF.",
    )
    args = parser.parse_args(argv)

    system = ML4all(seed=args.seed)
    service = system.service(cache_size=args.cache_size)
    served = failed = 0
    for line in sys.stdin:
        line = line.split("#", 1)[0].strip()
        if not line:
            continue
        if line in ("quit", "exit"):
            break
        try:
            request = parse_request_line(line)
            (result,) = system.optimize_many([request])
        except ReproError as exc:
            failed += 1
            print(f"error: {exc}", file=sys.stderr)
            continue
        served += 1
        print(f"{request['dataset']}: {result.summary()}")
        sys.stdout.flush()
    print(service.stats_summary())
    return 0 if failed == 0 or served > 0 else 1


def query_main(args) -> int:
    if args.file:
        with open(args.file) as handle:
            text = handle.read()
    elif args.query == "-":
        text = sys.stdin.read()
    elif args.query:
        text = args.query
    else:
        build_parser().print_help()
        return 2

    system = ML4all(seed=args.seed)
    try:
        session = system.query(text)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    result = session.last_result
    if hasattr(result, "result"):
        if result.report is not None:
            print(result.report.summary())
        print(result.result.summary())
    elif isinstance(result, dict) and "mse" in result:
        print(f"predictions computed; MSE vs ground truth: "
              f"{result['mse']:.4f}")
    else:
        print(result)
    return 0


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "batch":
        return batch_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    return query_main(build_parser().parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
